//! Finite-difference gradient verification.
//!
//! Every op on the tape is validated against central differences in this
//! module's tests; [`grad_check`] is public so downstream crates (the GCN
//! model) can verify their composed programs too.

use crate::tape::{Tape, Var};
use galign_matrix::Dense;

/// Result of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute deviation between analytic and numeric gradients.
    pub max_abs_err: f64,
    /// Largest relative deviation (guarded against tiny denominators).
    pub max_rel_err: f64,
}

impl GradCheckReport {
    /// True when both deviations are below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Verifies the analytic gradient of a scalar-valued tape program against
/// central finite differences.
///
/// `build` receives a fresh tape plus the current parameter values and must
/// return the scalar head node. It is invoked `2 · Σ numel(params) + 1`
/// times, so keep the program small.
pub fn grad_check(
    params: &[Dense],
    build: impl Fn(&mut Tape, &[Dense]) -> (Var, Vec<Var>),
    h: f64,
) -> GradCheckReport {
    // Analytic gradients.
    let mut tape = Tape::new();
    let (head, leaves) = build(&mut tape, params);
    tape.backward(head);
    let analytic: Vec<Dense> = leaves
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            tape.grad(v)
                .cloned()
                .unwrap_or_else(|| Dense::zeros(params[i].rows(), params[i].cols()))
        })
        .collect();

    let eval = |params: &[Dense]| -> f64 {
        let mut tape = Tape::new();
        let (head, _) = build(&mut tape, params);
        tape.value(head).get(0, 0)
    };

    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    for (pi, param) in params.iter().enumerate() {
        for i in 0..param.rows() {
            for j in 0..param.cols() {
                let mut plus = params.to_vec();
                plus[pi].set(i, j, param.get(i, j) + h);
                let mut minus = params.to_vec();
                minus[pi].set(i, j, param.get(i, j) - h);
                let numeric = (eval(&plus) - eval(&minus)) / (2.0 * h);
                let a = analytic[pi].get(i, j);
                let abs = (a - numeric).abs();
                let rel = abs / a.abs().max(numeric.abs()).max(1e-8);
                max_abs = max_abs.max(abs);
                max_rel = max_rel.max(rel);
            }
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::rng::SeededRng;
    use galign_matrix::Coo;

    fn sum_all(tape: &mut Tape, x: Var) -> Var {
        let (r, c) = tape.value(x).shape();
        let l = tape.leaf(Dense::filled(1, r, 1.0), false);
        let rr = tape.leaf(Dense::filled(c, 1, 1.0), false);
        let t = tape.matmul(l, x);
        tape.matmul(t, rr)
    }

    fn random_sym_sparse(rng: &mut SeededRng, n: usize, p: f64) -> galign_matrix::Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.bernoulli(p) {
                    let v = rng.uniform(0.1, 1.0);
                    coo.push(i, j, v).unwrap();
                    coo.push(j, i, v).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matmul_gradcheck() {
        let mut rng = SeededRng::new(1);
        let a = rng.uniform_matrix(3, 4, -1.0, 1.0);
        let w = rng.uniform_matrix(4, 2, -1.0, 1.0);
        let report = grad_check(
            &[a, w],
            |tape, params| {
                let a = tape.leaf(params[0].clone(), true);
                let w = tape.leaf(params[1].clone(), true);
                let p = tape.matmul(a, w);
                let t = tape.tanh(p);
                (sum_all(tape, t), vec![a, w])
            },
            1e-5,
        );
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn add_sub_scale_gradcheck() {
        let mut rng = SeededRng::new(2);
        let a = rng.uniform_matrix(3, 3, -1.0, 1.0);
        let b = rng.uniform_matrix(3, 3, -1.0, 1.0);
        let report = grad_check(
            &[a, b],
            |tape, params| {
                let a = tape.leaf(params[0].clone(), true);
                let b = tape.leaf(params[1].clone(), true);
                let s = tape.add(a, b);
                let d = tape.sub(s, b);
                let sc = tape.scale(d, 2.5);
                let t = tape.tanh(sc);
                (sum_all(tape, t), vec![a, b])
            },
            1e-5,
        );
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn relu_gradcheck() {
        let mut rng = SeededRng::new(7);
        // Offset so no element sits exactly at the ReLU kink.
        let a = rng.uniform_matrix(4, 4, -1.0, 1.0).map(|v| v + 0.013);
        let report = grad_check(
            &[a],
            |tape, params| {
                let a = tape.leaf(params[0].clone(), true);
                let r = tape.relu(a);
                (sum_all(tape, r), vec![a])
            },
            1e-6,
        );
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn spmm_gradcheck() {
        let mut rng = SeededRng::new(3);
        let c = random_sym_sparse(&mut rng, 5, 0.5);
        let x = rng.uniform_matrix(5, 3, -1.0, 1.0);
        let report = grad_check(
            &[x],
            |tape, params| {
                let cid = tape.sparse(c.clone());
                let x = tape.leaf(params[0].clone(), true);
                let y = tape.spmm(cid, x);
                let t = tape.tanh(y);
                (sum_all(tape, t), vec![x])
            },
            1e-5,
        );
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn consistency_loss_gradcheck() {
        let mut rng = SeededRng::new(4);
        let c = random_sym_sparse(&mut rng, 6, 0.4);
        let h = rng.uniform_matrix(6, 3, -1.0, 1.0);
        let report = grad_check(
            &[h],
            |tape, params| {
                let cid = tape.sparse(c.clone());
                let h = tape.leaf(params[0].clone(), true);
                let j = tape.consistency_loss(h, cid);
                (j, vec![h])
            },
            1e-6,
        );
        assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn adaptivity_loss_gradcheck() {
        let mut rng = SeededRng::new(5);
        let a = rng.uniform_matrix(6, 4, -1.0, 1.0);
        // b is offset so no row distance sits exactly at 0 or the threshold.
        let b = a.map(|v| v + 0.3);
        let report = grad_check(
            &[a, b],
            |tape, params| {
                let a = tape.leaf(params[0].clone(), true);
                let b = tape.leaf(params[1].clone(), true);
                let j = tape.adaptivity_loss(a, b, 10.0);
                (j, vec![a, b])
            },
            1e-6,
        );
        assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn gcn_layer_composition_gradcheck() {
        // A realistic 2-layer GCN program with weight sharing across two
        // graphs and the combined Eq. 10 loss.
        let mut rng = SeededRng::new(6);
        let c1 = random_sym_sparse(&mut rng, 5, 0.5);
        let c2 = random_sym_sparse(&mut rng, 5, 0.5);
        let f1 = rng.uniform_matrix(5, 3, 0.0, 1.0);
        let f2 = rng.uniform_matrix(5, 3, 0.0, 1.0);
        let w1 = rng.uniform_matrix(3, 4, -0.5, 0.5);
        let w2 = rng.uniform_matrix(4, 4, -0.5, 0.5);
        let report = grad_check(
            &[w1, w2],
            |tape, params| {
                let w1 = tape.leaf(params[0].clone(), true);
                let w2 = tape.leaf(params[1].clone(), true);
                let mut heads = Vec::new();
                let mut firsts = Vec::new();
                for (csr, f) in [(&c1, &f1), (&c2, &f2)] {
                    let cid = tape.sparse(csr.clone());
                    let h0 = tape.leaf(f.clone(), false);
                    let p1 = tape.spmm(cid, h0);
                    let p1 = tape.matmul(p1, w1);
                    let h1 = tape.tanh(p1);
                    let p2 = tape.spmm(cid, h1);
                    let p2 = tape.matmul(p2, w2);
                    let h2 = tape.tanh(p2);
                    let jc1 = tape.consistency_loss(h1, cid);
                    let jc2 = tape.consistency_loss(h2, cid);
                    heads.push((jc1, 0.4));
                    heads.push((jc2, 0.4));
                    firsts.push(h1);
                }
                // Adaptivity between the two graphs' layer-1 embeddings.
                let ja = tape.adaptivity_loss(firsts[0], firsts[1], 100.0);
                heads.push((ja, 0.2));
                let head = tape.weighted_sum(&heads);
                (head, vec![w1, w2])
            },
            1e-6,
        );
        assert!(report.passes(1e-4), "{report:?}");
    }
}
