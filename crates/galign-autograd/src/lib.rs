//! Tape-based reverse-mode automatic differentiation over dense matrices.
//!
//! Replaces the PyTorch autograd + Adam stack the paper trains GAlign with.
//! The [`tape::Tape`] records a computation graph of matrix ops; calling
//! [`tape::Tape::backward`] accumulates gradients in reverse topological
//! order. Two fused ops implement the paper's loss functions with the
//! memory-frugal formulations of DESIGN.md §4.1:
//!
//! * consistency loss `‖C − H Hᵀ‖_F` (Eq. 7) without materialising `H Hᵀ`;
//! * adaptivity loss `Σ_v σ_<(‖H(v) − H*(v)‖)` (Eq. 9) with its threshold
//!   mask.
//!
//! [`optim::Adam`] implements the Adam optimiser; [`check::grad_check`]
//! verifies analytic gradients against central finite differences (used
//! extensively in this crate's tests).

pub mod check;
pub mod optim;
pub mod tape;

pub use optim::Adam;
pub use tape::{Tape, Var};
