//! The Adam optimiser (Kingma & Ba, 2015) — the gradient optimiser the
//! paper uses (§VII-A "Reproducibility environment").

use galign_matrix::Dense;

/// Adam state over a fixed set of parameter tensors.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    step: u64,
    m: Vec<Dense>,
    v: Vec<Dense>,
}

impl Adam {
    /// Creates an optimiser for parameters with the given shapes, using the
    /// canonical hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f64, shapes: &[(usize, usize)]) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: shapes.iter().map(|&(r, c)| Dense::zeros(r, c)).collect(),
            v: shapes.iter().map(|&(r, c)| Dense::zeros(r, c)).collect(),
        }
    }

    /// Overrides β₁/β₂ (builder style).
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Sets the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one Adam update. `grads[i]` may be `None` when a parameter
    /// received no gradient this step (it is then left untouched, like
    /// PyTorch's sparse behaviour).
    ///
    /// # Panics
    /// Panics when the number or shapes of parameters/gradients disagree
    /// with the construction shapes.
    pub fn step(&mut self, params: &mut [Dense], grads: &[Option<&Dense>]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.step += 1;
        if galign_telemetry::metrics_enabled() {
            galign_telemetry::counter_add("adam.steps", 1);
            galign_telemetry::gauge_set("adam.lr", self.lr);
        }
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for ((param, grad), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let Some(grad) = grad else { continue };
            assert_eq!(param.shape(), grad.shape(), "gradient shape mismatch");
            let p = param.as_mut_slice();
            let g = grad.as_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            for i in 0..p.len() {
                ms[i] = self.beta1 * ms[i] + (1.0 - self.beta1) * g[i];
                vs[i] = self.beta2 * vs[i] + (1.0 - self.beta2) * g[i] * g[i];
                let m_hat = ms[i] / bc1;
                let v_hat = vs[i] / bc2;
                p[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimising f(x) = (x - 3)² must converge to 3.
    #[test]
    fn converges_on_quadratic() {
        let mut params = vec![Dense::filled(1, 1, 0.0)];
        let mut adam = Adam::new(0.1, &[(1, 1)]);
        for _ in 0..500 {
            let x = params[0].get(0, 0);
            let grad = Dense::filled(1, 1, 2.0 * (x - 3.0));
            adam.step(&mut params, &[Some(&grad)]);
        }
        assert!((params[0].get(0, 0) - 3.0).abs() < 1e-3);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn first_step_size_is_lr() {
        // With bias correction, the very first Adam step has magnitude ≈ lr.
        let mut params = vec![Dense::filled(1, 1, 0.0)];
        let mut adam = Adam::new(0.05, &[(1, 1)]);
        let grad = Dense::filled(1, 1, 123.0);
        adam.step(&mut params, &[Some(&grad)]);
        assert!((params[0].get(0, 0).abs() - 0.05).abs() < 1e-6);
    }

    #[test]
    fn none_gradient_skips_param() {
        let mut params = vec![Dense::filled(1, 1, 1.0), Dense::filled(1, 1, 1.0)];
        let mut adam = Adam::new(0.1, &[(1, 1), (1, 1)]);
        let g = Dense::filled(1, 1, 1.0);
        adam.step(&mut params, &[Some(&g), None]);
        assert!(params[0].get(0, 0) < 1.0);
        assert_eq!(params[1].get(0, 0), 1.0);
    }

    #[test]
    fn multi_dim_quadratic_bowl() {
        // Minimise ‖X - T‖² over a 2x3 matrix.
        let target = Dense::from_rows(&[vec![1.0, -2.0, 0.5], vec![0.0, 3.0, -1.0]]).unwrap();
        let mut params = vec![Dense::zeros(2, 3)];
        let mut adam = Adam::new(0.05, &[(2, 3)]).with_betas(0.9, 0.999);
        for _ in 0..2000 {
            let grad = params[0].sub(&target).unwrap().scale(2.0);
            adam.step(&mut params, &[Some(&grad)]);
        }
        assert!(params[0].approx_eq(&target, 1e-2));
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn rejects_wrong_param_count() {
        let mut adam = Adam::new(0.1, &[(1, 1)]);
        adam.step(&mut [], &[]);
        let mut p = vec![Dense::zeros(1, 1), Dense::zeros(1, 1)];
        let mut adam2 = Adam::new(0.1, &[(1, 1)]);
        adam2.step(&mut p, &[None, None]);
    }
}
