//! The autodiff tape: a linear record of matrix operations whose reverse
//! traversal accumulates gradients.
//!
//! A [`Tape`] is built fresh for every training step: leaves are created
//! from the current parameter values, the forward computation is recorded,
//! and [`Tape::backward`] fills in `∂loss/∂leaf` for every leaf marked as
//! requiring gradients. This build-per-step design (the "define-by-run"
//! model of PyTorch) keeps op bookkeeping trivial and makes weight sharing
//! automatic: pushing the *same leaf* into several forward passes
//! accumulates all their gradient contributions.

use galign_matrix::{Csr, Dense};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Handle to a constant sparse matrix registered on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseId(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(usize, usize),
    /// `sparse × dense`; the transpose of the sparse operand is cached for
    /// the backward pass.
    SpMM(usize, usize),
    Tanh(usize),
    Relu(usize),
    Add(usize, usize),
    Sub(usize, usize),
    Scale(usize, f64),
    /// Weighted sum of scalar (1×1) nodes.
    WeightedSum(Vec<(usize, f64)>),
    /// Fused consistency loss `‖C − H Hᵀ‖_F` (Eq. 7); stores
    /// `(h, sparse, cached_norm_sq_of_c, cached_loss_value)`.
    ConsistencyLoss {
        h: usize,
        c: usize,
        value: f64,
    },
    /// Fused adaptivity loss (Eq. 9): per-row distance with threshold mask.
    AdaptivityLoss {
        a: usize,
        b: usize,
        threshold: f64,
        /// Row distances cached from the forward pass.
        row_dists: Vec<f64>,
    },
}

#[derive(Debug)]
struct Node {
    value: Dense,
    grad: Option<Dense>,
    op: Op,
    requires_grad: bool,
}

/// A reverse-mode autodiff tape over [`Dense`] matrices.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    sparses: Vec<(Csr, Csr)>, // (matrix, transpose)
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Dense, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Registers a leaf. `requires_grad = true` for trainable parameters,
    /// `false` for constants (e.g. the attribute matrix `H⁽⁰⁾ = F`).
    pub fn leaf(&mut self, value: Dense, requires_grad: bool) -> Var {
        self.push(value, Op::Leaf, requires_grad)
    }

    /// Registers a constant sparse matrix (a propagation operator `C`).
    pub fn sparse(&mut self, c: Csr) -> SparseId {
        let t = c.transpose();
        self.sparses.push((c, t));
        SparseId(self.sparses.len() - 1)
    }

    /// The registered sparse matrix behind `id`.
    pub fn sparse_matrix(&self, id: SparseId) -> &Csr {
        &self.sparses[id.0].0
    }

    /// Forward value of `v`.
    pub fn value(&self, v: Var) -> &Dense {
        &self.nodes[v.0].value
    }

    /// Gradient of the last `backward` root w.r.t. `v`, if any was
    /// accumulated.
    pub fn grad(&self, v: Var) -> Option<&Dense> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Matrix product node.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .matmul(&self.nodes[b.0].value)
            .expect("matmul shape mismatch on tape");
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::MatMul(a.0, b.0), rg)
    }

    /// Sparse × dense product node (`C H`, the GCN propagation).
    pub fn spmm(&mut self, c: SparseId, b: Var) -> Var {
        let value = self.sparses[c.0]
            .0
            .spmm(&self.nodes[b.0].value)
            .expect("spmm shape mismatch on tape");
        let rg = self.rg(b);
        self.push(value, Op::SpMM(c.0, b.0), rg)
    }

    /// Elementwise `tanh` node — the paper's activation (§IV-A argues a
    /// bijective activation is required; ReLU collapses signs).
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(f64::tanh);
        let rg = self.rg(a);
        self.push(value, Op::Tanh(a.0), rg)
    }

    /// Elementwise ReLU node. The paper argues ReLU is unsuitable for
    /// alignment (§IV-A); it exists here so that claim can be tested
    /// empirically (see the design-ablation experiment).
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| x.max(0.0));
        let rg = self.rg(a);
        self.push(value, Op::Relu(a.0), rg)
    }

    /// Elementwise sum node.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .add(&self.nodes[b.0].value)
            .expect("add shape mismatch on tape");
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Add(a.0, b.0), rg)
    }

    /// Elementwise difference node.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .sub(&self.nodes[b.0].value)
            .expect("sub shape mismatch on tape");
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Sub(a.0, b.0), rg)
    }

    /// Scalar multiple node.
    pub fn scale(&mut self, a: Var, alpha: f64) -> Var {
        let value = self.nodes[a.0].value.scale(alpha);
        let rg = self.rg(a);
        self.push(value, Op::Scale(a.0, alpha), rg)
    }

    /// Weighted sum of scalar (1×1) nodes; the head of combined losses
    /// such as Eq. 10's `γ J_c + (1−γ) Σ J_a`.
    ///
    /// # Panics
    /// Panics when any term is not 1×1.
    pub fn weighted_sum(&mut self, terms: &[(Var, f64)]) -> Var {
        let mut total = 0.0;
        for &(v, w) in terms {
            assert_eq!(
                self.nodes[v.0].value.shape(),
                (1, 1),
                "weighted_sum terms must be scalars"
            );
            total += w * self.nodes[v.0].value.get(0, 0);
        }
        let rg = terms.iter().any(|&(v, _)| self.rg(v));
        let op = Op::WeightedSum(terms.iter().map(|&(v, w)| (v.0, w)).collect());
        self.push(Dense::from_vec(1, 1, vec![total]).expect("1x1"), op, rg)
    }

    /// Fused consistency loss node (Eq. 7): `‖C − H Hᵀ‖_F`, evaluated as
    /// `sqrt(‖C‖² − 2⟨C, H Hᵀ⟩ + ‖HᵀH‖²)` in `O(ed + nd²)`.
    ///
    /// # Panics
    /// Panics on shape mismatch between `h` and `c`.
    pub fn consistency_loss(&mut self, h: Var, c: SparseId) -> Var {
        let hval = &self.nodes[h.0].value;
        let csr = &self.sparses[c.0].0;
        let cross = csr
            .weighted_gram_dot(hval)
            .expect("consistency_loss shape mismatch");
        let gram = hval.gram();
        let q = (csr.frobenius_norm_sq() - 2.0 * cross + gram.frobenius_norm_sq()).max(0.0);
        let value = q.sqrt();
        let rg = self.rg(h);
        self.push(
            Dense::from_vec(1, 1, vec![value]).expect("1x1"),
            Op::ConsistencyLoss {
                h: h.0,
                c: c.0,
                value,
            },
            rg,
        )
    }

    /// Fused adaptivity loss node (Eq. 9):
    /// `Σ_v σ_<(‖a_v − b_v‖₂)` where `σ_<(x) = x·1[x < threshold]`.
    ///
    /// # Panics
    /// Panics when `a` and `b` have different shapes.
    pub fn adaptivity_loss(&mut self, a: Var, b: Var, threshold: f64) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.shape(), bv.shape(), "adaptivity_loss shape mismatch");
        let mut row_dists = Vec::with_capacity(av.rows());
        let mut total = 0.0;
        for i in 0..av.rows() {
            let d = galign_matrix::dense::sq_dist(av.row(i), bv.row(i)).sqrt();
            row_dists.push(d);
            if d < threshold {
                total += d;
            }
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(
            Dense::from_vec(1, 1, vec![total]).expect("1x1"),
            Op::AdaptivityLoss {
                a: a.0,
                b: b.0,
                threshold,
                row_dists,
            },
            rg,
        )
    }

    fn accumulate(&mut self, idx: usize, delta: &Dense) {
        if !self.nodes[idx].requires_grad {
            return;
        }
        match &mut self.nodes[idx].grad {
            Some(g) => g.axpy(1.0, delta).expect("gradient shape mismatch"),
            slot @ None => *slot = Some(delta.clone()),
        }
    }

    /// Runs reverse-mode accumulation from the scalar node `root`,
    /// populating leaf gradients. Returns the forward value of `root`.
    ///
    /// # Panics
    /// Panics when `root` is not 1×1.
    pub fn backward(&mut self, root: Var) -> f64 {
        assert_eq!(
            self.nodes[root.0].value.shape(),
            (1, 1),
            "backward root must be a scalar node"
        );
        for node in &mut self.nodes {
            node.grad = None;
        }
        self.nodes[root.0].grad = Some(Dense::from_vec(1, 1, vec![1.0]).expect("1x1"));

        for idx in (0..=root.0).rev() {
            if !self.nodes[idx].requires_grad {
                continue;
            }
            let Some(grad) = self.nodes[idx].grad.take() else {
                continue;
            };
            // Put the gradient back for callers who inspect interior nodes.
            let op = self.nodes[idx].op.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    // d/dA (A B) = G Bᵀ ; d/dB = Aᵀ G.
                    if self.nodes[a].requires_grad {
                        let da = grad
                            .matmul_bt(&self.nodes[b].value)
                            .expect("backward matmul dA");
                        self.accumulate(a, &da);
                    }
                    if self.nodes[b].requires_grad {
                        let db = self.nodes[a]
                            .value
                            .transpose()
                            .matmul(&grad)
                            .expect("backward matmul dB");
                        self.accumulate(b, &db);
                    }
                }
                Op::SpMM(c, b) => {
                    if self.nodes[b].requires_grad {
                        let db = self.sparses[c].1.spmm(&grad).expect("backward spmm dB");
                        self.accumulate(b, &db);
                    }
                }
                Op::Tanh(a) => {
                    if self.nodes[a].requires_grad {
                        // d tanh = 1 − tanh², with tanh cached in the value.
                        let y = &self.nodes[idx].value;
                        let da = Dense::from_fn(y.rows(), y.cols(), |i, j| {
                            let t = y.get(i, j);
                            grad.get(i, j) * (1.0 - t * t)
                        });
                        self.accumulate(a, &da);
                    }
                }
                Op::Relu(a) => {
                    if self.nodes[a].requires_grad {
                        let y = &self.nodes[idx].value;
                        let da = Dense::from_fn(y.rows(), y.cols(), |i, j| {
                            if y.get(i, j) > 0.0 {
                                grad.get(i, j)
                            } else {
                                0.0
                            }
                        });
                        self.accumulate(a, &da);
                    }
                }
                Op::Add(a, b) => {
                    self.accumulate(a, &grad);
                    self.accumulate(b, &grad);
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, &grad);
                    let neg = grad.scale(-1.0);
                    self.accumulate(b, &neg);
                }
                Op::Scale(a, alpha) => {
                    let da = grad.scale(alpha);
                    self.accumulate(a, &da);
                }
                Op::WeightedSum(terms) => {
                    let g = grad.get(0, 0);
                    for (t, w) in terms {
                        let dt = Dense::from_vec(1, 1, vec![g * w]).expect("1x1");
                        self.accumulate(t, &dt);
                    }
                }
                Op::ConsistencyLoss { h, c, value } => {
                    if self.nodes[h].requires_grad && value > 1e-12 {
                        let g = grad.get(0, 0);
                        let hval = &self.nodes[h].value;
                        // dQ/dH = −4 C H + 4 H (HᵀH); dJ/dH = dQ/dH / (2J).
                        let ch = self.sparses[c].0.spmm(hval).expect("CH");
                        let hg = hval.matmul(&hval.gram()).expect("H HᵀH");
                        let mut dh = hg;
                        dh.axpy(-1.0, &ch).expect("same shape");
                        dh.scale_inplace(4.0 * g / (2.0 * value));
                        self.accumulate(h, &dh);
                    }
                }
                Op::AdaptivityLoss {
                    a,
                    b,
                    threshold,
                    row_dists,
                } => {
                    let g = grad.get(0, 0);
                    let (rows, cols) = self.nodes[a].value.shape();
                    let mut da = Dense::zeros(rows, cols);
                    for i in 0..rows {
                        let d = row_dists[i];
                        if d > 1e-12 && d < threshold {
                            let av = self.nodes[a].value.row(i);
                            let bv = self.nodes[b].value.row(i);
                            let out = da.row_mut(i);
                            for ((o, &x), &y) in out.iter_mut().zip(av).zip(bv) {
                                *o = g * (x - y) / d;
                            }
                        }
                    }
                    if self.nodes[a].requires_grad {
                        self.accumulate(a, &da);
                    }
                    if self.nodes[b].requires_grad {
                        da.scale_inplace(-1.0);
                        self.accumulate(b, &da);
                    }
                }
            }
            self.nodes[idx].grad = Some(grad);
        }
        self.nodes[root.0].value.get(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::rng::SeededRng;
    use galign_matrix::Coo;

    fn scalar(tape: &Tape, v: Var) -> f64 {
        tape.value(v).get(0, 0)
    }

    /// Frobenius-norm-squared as a tape program: ‖X‖² = sum(X ⊙ X) via
    /// matmul with ones. Used to get a scalar head for generic op tests.
    fn sum_all(tape: &mut Tape, x: Var) -> Var {
        let (r, c) = tape.value(x).shape();
        let ones_left = tape.leaf(Dense::filled(1, r, 1.0), false);
        let ones_right = tape.leaf(Dense::filled(c, 1, 1.0), false);
        let t = tape.matmul(ones_left, x);
        tape.matmul(t, ones_right)
    }

    #[test]
    fn forward_values() {
        let mut tape = Tape::new();
        let a = tape.leaf(Dense::filled(2, 2, 2.0), true);
        let b = tape.leaf(Dense::identity(2), false);
        let c = tape.matmul(a, b);
        assert!(tape.value(c).approx_eq(&Dense::filled(2, 2, 2.0), 0.0));
        let s = tape.scale(c, 0.5);
        assert!(tape.value(s).approx_eq(&Dense::filled(2, 2, 1.0), 0.0));
        let t = tape.tanh(s);
        assert!((tape.value(t).get(0, 0) - 1.0f64.tanh()).abs() < 1e-12);
        assert_eq!(tape.len(), 5);
        assert!(!tape.is_empty());
    }

    #[test]
    fn backward_through_matmul_chain() {
        // f(W) = sum(A W), df/dW = Aᵀ 1.
        let mut tape = Tape::new();
        let a_val = Dense::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let a = tape.leaf(a_val.clone(), false);
        let w = tape.leaf(Dense::identity(2), true);
        let prod = tape.matmul(a, w);
        let head = sum_all(&mut tape, prod);
        tape.backward(head);
        let grad = tape.grad(w).unwrap();
        // dW = Aᵀ · ones(2x2) -> column sums of A replicated.
        let expected = Dense::from_rows(&[vec![4.0, 4.0], vec![6.0, 6.0]]).unwrap();
        assert!(grad.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn weight_sharing_accumulates() {
        // Same leaf used twice: gradients must sum.
        let mut tape = Tape::new();
        let x = tape.leaf(Dense::filled(1, 1, 3.0), true);
        let y1 = tape.scale(x, 2.0);
        let y2 = tape.scale(x, 5.0);
        let head = tape.weighted_sum(&[(y1, 1.0), (y2, 1.0)]);
        let val = tape.backward(head);
        assert_eq!(val, 21.0);
        assert_eq!(tape.grad(x).unwrap().get(0, 0), 7.0);
    }

    #[test]
    fn constants_get_no_grad() {
        let mut tape = Tape::new();
        let c = tape.leaf(Dense::filled(1, 1, 1.0), false);
        let p = tape.leaf(Dense::filled(1, 1, 1.0), true);
        let s = tape.add(c, p);
        tape.backward(s);
        assert!(tape.grad(c).is_none());
        assert_eq!(tape.grad(p).unwrap().get(0, 0), 1.0);
    }

    #[test]
    fn spmm_forward_and_backward() {
        let mut tape = Tape::new();
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 2.0).unwrap();
        let c = tape.sparse(coo.to_csr());
        let x = tape.leaf(Dense::from_rows(&[vec![1.0], vec![3.0]]).unwrap(), true);
        let y = tape.spmm(c, x);
        assert_eq!(tape.value(y).get(0, 0), 6.0);
        let head = sum_all(&mut tape, y);
        tape.backward(head);
        // dX = Cᵀ · ones = [[0],[2]].
        let g = tape.grad(x).unwrap();
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.get(1, 0), 2.0);
    }

    #[test]
    fn consistency_loss_matches_definition() {
        let mut rng = SeededRng::new(1);
        let h_val = rng.uniform_matrix(6, 3, -1.0, 1.0);
        let mut coo = Coo::new(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                if i != j && rng.bernoulli(0.3) {
                    coo.push(i, j, 0.5).unwrap();
                }
            }
        }
        let csr = coo.to_csr();
        let mut tape = Tape::new();
        let c = tape.sparse(csr.clone());
        let h = tape.leaf(h_val.clone(), true);
        let j = tape.consistency_loss(h, c);
        // Direct dense evaluation of Eq. 7.
        let hht = h_val.matmul_bt(&h_val).unwrap();
        let expected = csr.to_dense().sub(&hht).unwrap().frobenius_norm();
        assert!((scalar(&tape, j) - expected).abs() < 1e-10);
    }

    #[test]
    fn adaptivity_loss_thresholding() {
        let a_val = Dense::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0]]).unwrap();
        let b_val = Dense::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]).unwrap();
        let mut tape = Tape::new();
        let a = tape.leaf(a_val, true);
        let b = tape.leaf(b_val, false);
        // Row 0 distance 5 (counted), row 1 distance 10 (masked by σ_<).
        let j = tape.adaptivity_loss(a, b, 6.0);
        assert_eq!(scalar(&tape, j), 5.0);
        tape.backward(j);
        let g = tape.grad(a).unwrap();
        // Row 0: (a-b)/d = (-3/5, -4/5); row 1 masked to zero.
        assert!((g.get(0, 0) + 0.6).abs() < 1e-12);
        assert!((g.get(0, 1) + 0.8).abs() < 1e-12);
        assert_eq!(g.get(1, 0), 0.0);
    }

    #[test]
    fn weighted_sum_combines() {
        let mut tape = Tape::new();
        let a = tape.leaf(Dense::filled(1, 1, 2.0), true);
        let b = tape.leaf(Dense::filled(1, 1, 10.0), true);
        let s = tape.weighted_sum(&[(a, 0.8), (b, 0.2)]);
        assert!((scalar(&tape, s) - 3.6).abs() < 1e-12);
        tape.backward(s);
        assert!((tape.grad(a).unwrap().get(0, 0) - 0.8).abs() < 1e-12);
        assert!((tape.grad(b).unwrap().get(0, 0) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be a scalar")]
    fn backward_requires_scalar_root() {
        let mut tape = Tape::new();
        let a = tape.leaf(Dense::zeros(2, 2), true);
        tape.backward(a);
    }

    #[test]
    fn backward_resets_between_calls() {
        let mut tape = Tape::new();
        let a = tape.leaf(Dense::filled(1, 1, 1.0), true);
        let s = tape.scale(a, 3.0);
        tape.backward(s);
        tape.backward(s);
        // Second call must not double-accumulate.
        assert_eq!(tape.grad(a).unwrap().get(0, 0), 3.0);
    }
}
