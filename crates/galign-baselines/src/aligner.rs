//! The common interface all baseline aligners implement.

use galign_graph::AttributedGraph;
use galign_matrix::Dense;
use galign_metrics::DenseScores;

/// One alignment problem instance as seen by a baseline.
#[derive(Debug, Clone, Copy)]
pub struct AlignInput<'a> {
    /// Source network `G_s`.
    pub source: &'a AttributedGraph,
    /// Target network `G_t`.
    pub target: &'a AttributedGraph,
    /// Anchor seeds available as supervision. The paper grants supervised
    /// baselines 10 % of the ground truth (§VII-A); unsupervised methods
    /// (REGAL) ignore this field.
    pub seeds: &'a [(usize, usize)],
    /// RNG seed for any stochastic component.
    pub seed: u64,
}

/// A network aligner producing an `n₁×n₂` alignment-score matrix.
pub trait Aligner {
    /// Method name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Computes the alignment matrix `S` (higher = better match).
    fn align(&self, input: &AlignInput<'_>) -> Dense;

    /// Convenience: wraps the score matrix for metric evaluation.
    fn align_scores(&self, input: &AlignInput<'_>) -> DenseScores {
        DenseScores::new(self.align(input))
    }
}

/// Cosine-similarity matrix between the attribute rows of two networks —
/// the attribute prior shared by FINAL and IsoRank.
pub fn attribute_similarity(source: &AttributedGraph, target: &AttributedGraph) -> Dense {
    let fs = source.attributes().normalize_rows();
    let ft = target.attributes().normalize_rows();
    fs.matmul_bt(&ft).expect("attribute dims match")
}

/// The degree+attribute+seed prior matrix `H` used by FINAL and IsoRank
/// when no explicit prior alignment is available (§VII-A): attribute cosine
/// similarity blended with degree similarity, with provided seed pairs
/// pinned to the maximum.
pub fn prior_matrix(input: &AlignInput<'_>) -> Dense {
    let mut h = if input.source.attr_dim() == input.target.attr_dim() {
        attribute_similarity(input.source, input.target)
    } else {
        Dense::filled(input.source.node_count(), input.target.node_count(), 0.5)
    };
    let ds = input.source.degrees();
    let dt = input.target.degrees();
    for i in 0..h.rows() {
        for j in 0..h.cols() {
            let (a, b) = (ds[i] as f64 + 1.0, dt[j] as f64 + 1.0);
            let deg_sim = a.min(b) / a.max(b);
            let v = 0.5 * h.get(i, j).max(0.0) + 0.5 * deg_sim;
            h.set(i, j, v);
        }
    }
    for &(s, t) in input.seeds {
        h.set(s, t, 1.0);
    }
    // Normalise to a distribution-like scale (sum 1), the convention of
    // IsoRank's prior.
    let total = h.sum();
    if total > 0.0 {
        h.scale_inplace(1.0 / total);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::rng::SeededRng;

    fn graphs() -> (AttributedGraph, AttributedGraph) {
        let mut rng = SeededRng::new(1);
        let e1 = galign_graph::generators::erdos_renyi_gnm(&mut rng, 10, 20);
        let a1 = galign_graph::generators::binary_attributes(&mut rng, 10, 5, 2);
        let e2 = galign_graph::generators::erdos_renyi_gnm(&mut rng, 8, 15);
        let a2 = galign_graph::generators::binary_attributes(&mut rng, 8, 5, 2);
        (
            AttributedGraph::from_edges(10, &e1, a1),
            AttributedGraph::from_edges(8, &e2, a2),
        )
    }

    #[test]
    fn attribute_similarity_bounds() {
        let (s, t) = graphs();
        let m = attribute_similarity(&s, &t);
        assert_eq!(m.shape(), (10, 8));
        assert!(m
            .as_slice()
            .iter()
            .all(|&v| (-1.0..=1.0 + 1e-12).contains(&v)));
    }

    #[test]
    fn prior_is_distribution_with_seed_boost() {
        let (s, t) = graphs();
        let seeds = [(0usize, 0usize)];
        let input = AlignInput {
            source: &s,
            target: &t,
            seeds: &seeds,
            seed: 1,
        };
        let h = prior_matrix(&input);
        assert!((h.sum() - 1.0).abs() < 1e-9);
        // The seeded pair gets the largest prior mass in its row.
        let (arg, _) = h.row_argmax(0).unwrap();
        assert_eq!(arg, 0);
    }
}
