//! CENALP (Du et al., IJCAI 2019): joint network alignment and link
//! prediction via cross-graph embedding.
//!
//! Reproduced core (see DESIGN.md §3 for simplifications): the two networks
//! are joined through the current anchor set; degree-biased random walks
//! cross between the networks at anchor nodes, a skip-gram model embeds all
//! nodes in one space, and the anchor set is iteratively expanded with
//! mutually-best high-confidence pairs. The link-prediction side objective
//! of the original (which densifies the graphs between rounds) is omitted;
//! the walk/embed/expand loop — the part responsible for its alignment
//! quality and its large runtime — is faithful.

use crate::aligner::{AlignInput, Aligner};
use crate::skipgram::{train_sgns, walks_to_pairs, SkipGramConfig};
use galign_graph::AttributedGraph;
use galign_matrix::rng::SeededRng;
use galign_matrix::Dense;
use std::collections::HashMap;

/// CENALP hyper-parameters.
#[derive(Debug, Clone)]
pub struct CenalpConfig {
    /// Walk/embed/expand rounds.
    pub rounds: usize,
    /// Random walks started per node per round.
    pub walks_per_node: usize,
    /// Walk length.
    pub walk_length: usize,
    /// Skip-gram window over walks.
    pub window: usize,
    /// Probability of switching network at an anchor node.
    pub switch_prob: f64,
    /// New anchor pairs accepted per expansion round.
    pub expand_per_round: usize,
    /// Minimum cosine similarity for an expanded anchor.
    pub expand_threshold: f64,
    /// Embedding settings.
    pub embedding: SkipGramConfig,
}

impl Default for CenalpConfig {
    fn default() -> Self {
        CenalpConfig {
            rounds: 3,
            walks_per_node: 5,
            walk_length: 10,
            window: 2,
            switch_prob: 0.5,
            expand_per_round: 16,
            expand_threshold: 0.7,
            embedding: SkipGramConfig {
                dim: 64,
                epochs: 3,
                ..SkipGramConfig::default()
            },
        }
    }
}

/// The CENALP aligner.
#[derive(Debug, Clone, Default)]
pub struct Cenalp {
    /// Hyper-parameters.
    pub config: CenalpConfig,
}

impl Cenalp {
    /// Creates a CENALP aligner.
    pub fn new(config: CenalpConfig) -> Self {
        Cenalp { config }
    }
}

/// Combined-graph walker: source nodes are `0..n1`, target nodes are
/// `n1..n1+n2`; anchors teleport between the sides.
struct Walker<'a> {
    gs: &'a AttributedGraph,
    gt: &'a AttributedGraph,
    n1: usize,
    s2t: HashMap<usize, usize>,
    t2s: HashMap<usize, usize>,
    switch_prob: f64,
}

impl Walker<'_> {
    fn step(&self, node: usize, rng: &mut SeededRng) -> Option<usize> {
        // Cross to the counterpart network at anchor nodes.
        if node < self.n1 {
            if let Some(&t) = self.s2t.get(&node) {
                if rng.bernoulli(self.switch_prob) {
                    return Some(self.n1 + t);
                }
            }
            let nbrs = self.gs.neighbors(node);
            (!nbrs.is_empty()).then(|| nbrs[rng.index(nbrs.len())])
        } else {
            let t = node - self.n1;
            if let Some(&s) = self.t2s.get(&t) {
                if rng.bernoulli(self.switch_prob) {
                    return Some(s);
                }
            }
            let nbrs = self.gt.neighbors(t);
            (!nbrs.is_empty()).then(|| self.n1 + nbrs[rng.index(nbrs.len())])
        }
    }

    fn walk(&self, start: usize, length: usize, rng: &mut SeededRng) -> Vec<usize> {
        let mut walk = Vec::with_capacity(length);
        walk.push(start);
        let mut cur = start;
        for _ in 1..length {
            match self.step(cur, rng) {
                Some(next) => {
                    walk.push(next);
                    cur = next;
                }
                None => break,
            }
        }
        walk
    }
}

impl Aligner for Cenalp {
    fn name(&self) -> &'static str {
        "CENALP"
    }

    fn align(&self, input: &AlignInput<'_>) -> Dense {
        let cfg = &self.config;
        let (n1, n2) = (input.source.node_count(), input.target.node_count());
        let vocab = n1 + n2;
        if vocab == 0 {
            return Dense::zeros(0, 0);
        }
        let mut rng = SeededRng::new(input.seed);
        let mut anchors: Vec<(usize, usize)> = input.seeds.to_vec();
        let mut emb = Dense::zeros(vocab, cfg.embedding.dim);

        for round in 0..cfg.rounds {
            let walker = Walker {
                gs: input.source,
                gt: input.target,
                n1,
                s2t: anchors.iter().copied().collect(),
                t2s: anchors.iter().map(|&(s, t)| (t, s)).collect(),
                switch_prob: cfg.switch_prob,
            };
            let mut walks = Vec::with_capacity(vocab * cfg.walks_per_node);
            for start in 0..vocab {
                for _ in 0..cfg.walks_per_node {
                    walks.push(walker.walk(start, cfg.walk_length, &mut rng));
                }
            }
            let pairs = walks_to_pairs(&walks, cfg.window);
            emb = train_sgns(&pairs, vocab, &cfg.embedding, &mut rng).normalize_rows();

            // Expand the anchor set with mutually-best confident pairs.
            let es = emb.select_rows(&(0..n1).collect::<Vec<_>>());
            let et = emb.select_rows(&(n1..vocab).collect::<Vec<_>>());
            let sim = es.matmul_bt(&et).expect("same dim");
            let known_s: HashMap<usize, usize> = anchors.iter().copied().collect();
            let known_t: HashMap<usize, usize> = anchors.iter().map(|&(s, t)| (t, s)).collect();
            let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
            for v in 0..n1 {
                if known_s.contains_key(&v) {
                    continue;
                }
                if let Some((u, score)) = sim.row_argmax(v) {
                    if score < cfg.expand_threshold || known_t.contains_key(&u) {
                        continue;
                    }
                    // Mutual-best check: v must also be u's best source.
                    let col_best = (0..n1)
                        .map(|i| (i, sim.get(i, u)))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
                        .map(|(i, _)| i);
                    if col_best == Some(v) {
                        candidates.push((score, v, u));
                    }
                }
            }
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
            let mut used_t: HashMap<usize, ()> = HashMap::new();
            for (_, v, u) in candidates.into_iter().take(cfg.expand_per_round) {
                if used_t.insert(u, ()).is_none() {
                    anchors.push((v, u));
                }
            }
            galign_telemetry::debug!(
                "cenalp",
                "round {round}: anchors={} of {n1} source nodes",
                anchors.len()
            );
        }

        // Final scores: cosine similarity in the joint space, with the
        // accumulated anchor set pinned to the maximum.
        let es = emb.select_rows(&(0..n1).collect::<Vec<_>>());
        let et = emb.select_rows(&(n1..vocab).collect::<Vec<_>>());
        let mut sim = es.matmul_bt(&et).expect("same dim");
        for &(s, t) in &anchors {
            sim.set(s, t, 1.0 + sim.get(s, t).max(0.0));
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_datasets::synth::noisy_pair;
    use galign_graph::generators;
    use galign_metrics::evaluate;

    fn task(seed: u64, n: usize) -> galign_datasets::AlignmentTask {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, n, 3);
        let attrs = generators::binary_attributes(&mut rng, n, 8, 2);
        let g = AttributedGraph::from_edges(n, &edges, attrs);
        noisy_pair("t", &g, 0.0, 0.0, &mut rng)
    }

    fn fast_cfg() -> CenalpConfig {
        CenalpConfig {
            rounds: 3,
            walks_per_node: 5,
            walk_length: 10,
            embedding: SkipGramConfig {
                dim: 32,
                epochs: 3,
                ..SkipGramConfig::default()
            },
            ..CenalpConfig::default()
        }
    }

    #[test]
    fn beats_random_with_seeds() {
        let t = task(1, 30);
        let seeds: Vec<(usize, usize)> = t.truth.pairs().iter().step_by(4).copied().collect(); // 25 %
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &seeds,
            seed: 3,
        };
        let scores = Cenalp::new(fast_cfg()).align_scores(&input);
        let report = evaluate(&scores, t.truth.pairs(), &[1, 10]);
        // Random Success@10 = 1/3; must beat it clearly.
        assert!(
            report.success(10).unwrap() > 0.45,
            "Success@10 = {:?}",
            report.success(10)
        );
    }

    #[test]
    fn walker_crosses_at_anchors() {
        let t = task(2, 10);
        let walker = Walker {
            gs: &t.source,
            gt: &t.target,
            n1: 10,
            s2t: [(0usize, 3usize)].into_iter().collect(),
            t2s: [(3usize, 0usize)].into_iter().collect(),
            switch_prob: 1.0,
        };
        let mut rng = SeededRng::new(1);
        // From anchor source node 0, the first step always teleports to
        // target node 3 (combined id 13).
        assert_eq!(walker.step(0, &mut rng), Some(13));
        assert_eq!(walker.step(13, &mut rng), Some(0));
    }

    #[test]
    fn seed_scores_are_pinned() {
        let t = task(3, 15);
        let seeds = vec![(0usize, 5usize)];
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &seeds,
            seed: 7,
        };
        let s = Cenalp::new(fast_cfg()).align(&input);
        let (arg, _) = s.row_argmax(0).unwrap();
        assert_eq!(arg, 5);
    }

    #[test]
    fn empty_graphs() {
        let g = AttributedGraph::from_edges_featureless(0, &[]);
        let input = AlignInput {
            source: &g,
            target: &g,
            seeds: &[],
            seed: 1,
        };
        let s = Cenalp::new(fast_cfg()).align(&input);
        assert_eq!(s.shape(), (0, 0));
    }
}
