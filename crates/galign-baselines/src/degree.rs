//! A deliberately naive sanity baseline: score pairs by degree similarity
//! blended with attribute cosine. Any learning-based aligner should beat
//! it; experiments use it to calibrate how informative a dataset's raw
//! features are.

use crate::aligner::{attribute_similarity, AlignInput, Aligner};
use galign_matrix::Dense;

/// Blend weight between attribute cosine and degree similarity.
#[derive(Debug, Clone)]
pub struct DegreeMatchConfig {
    /// Weight of the attribute-cosine term in `[0, 1]`.
    pub attr_weight: f64,
}

impl Default for DegreeMatchConfig {
    fn default() -> Self {
        DegreeMatchConfig { attr_weight: 0.5 }
    }
}

/// The naive degree/attribute matcher.
#[derive(Debug, Clone, Default)]
pub struct DegreeMatch {
    /// Hyper-parameters.
    pub config: DegreeMatchConfig,
}

impl Aligner for DegreeMatch {
    fn name(&self) -> &'static str {
        "DegreeMatch"
    }

    fn align(&self, input: &AlignInput<'_>) -> Dense {
        let w = self.config.attr_weight.clamp(0.0, 1.0);
        let attrs = if input.source.attr_dim() == input.target.attr_dim() {
            attribute_similarity(input.source, input.target)
        } else {
            Dense::zeros(input.source.node_count(), input.target.node_count())
        };
        let ds = input.source.degrees();
        let dt = input.target.degrees();
        Dense::from_fn(
            input.source.node_count(),
            input.target.node_count(),
            |i, j| {
                let (a, b) = (ds[i] as f64 + 1.0, dt[j] as f64 + 1.0);
                let deg_sim = a.min(b) / a.max(b);
                w * attrs.get(i, j) + (1.0 - w) * deg_sim
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_graph::AttributedGraph;
    use galign_matrix::rng::SeededRng;

    #[test]
    fn prefers_matching_degree_and_attributes() {
        let mut rng = SeededRng::new(1);
        let attrs = galign_graph::generators::binary_attributes(&mut rng, 4, 6, 2);
        // Star: node 0 is a hub.
        let g = AttributedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)], attrs.clone());
        let input = AlignInput {
            source: &g,
            target: &g,
            seeds: &[],
            seed: 1,
        };
        let s = DegreeMatch::default().align(&input);
        // Hub matches hub best.
        assert_eq!(s.row_argmax(0).unwrap().0, 0);
        assert!(s
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
    }

    #[test]
    fn attr_weight_extremes() {
        let mut rng = SeededRng::new(2);
        let attrs = galign_graph::generators::binary_attributes(&mut rng, 3, 4, 1);
        let g = AttributedGraph::from_edges(3, &[(0, 1)], attrs);
        let input = AlignInput {
            source: &g,
            target: &g,
            seeds: &[],
            seed: 1,
        };
        let deg_only = DegreeMatch {
            config: DegreeMatchConfig { attr_weight: 0.0 },
        }
        .align(&input);
        // Pure degree similarity: diagonal of identical graphs is 1.
        for i in 0..3 {
            assert!((deg_only.get(i, i) - 1.0).abs() < 1e-12);
        }
        let attr_only = DegreeMatch {
            config: DegreeMatchConfig { attr_weight: 1.0 },
        }
        .align(&input);
        for i in 0..3 {
            assert!((attr_only.get(i, i) - 1.0).abs() < 1e-12);
        }
    }
}
