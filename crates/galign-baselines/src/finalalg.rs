//! FINAL (Zhang & Tong, KDD 2016): fast attributed network alignment.
//!
//! We implement the node-attributed fixed point (FINAL-N):
//! `S ← α · N ∘ (Ā_s (N ∘ S) Ā_t) + (1−α) · H`,
//! where `N` is the node-attribute agreement matrix and `Ā` are
//! symmetrically degree-normalised adjacencies. Relative to the reference
//! implementation we omit the edge-attribute tensor (the evaluation
//! datasets carry node attributes only) and solve by damped fixed-point
//! iteration instead of conjugate gradients — both noted in DESIGN.md §3.

use crate::aligner::{attribute_similarity, prior_matrix, AlignInput, Aligner};
use galign_matrix::{Csr, Dense};

/// FINAL hyper-parameters.
#[derive(Debug, Clone)]
pub struct FinalConfig {
    /// Structure-vs-prior balance α.
    pub alpha: f64,
    /// Fixed-point iterations.
    pub max_iters: usize,
    /// Early-exit tolerance.
    pub tolerance: f64,
}

impl Default for FinalConfig {
    fn default() -> Self {
        FinalConfig {
            alpha: 0.82,
            max_iters: 30,
            tolerance: 1e-6,
        }
    }
}

/// The FINAL aligner.
#[derive(Debug, Clone, Default)]
pub struct Final {
    /// Hyper-parameters.
    pub config: FinalConfig,
}

impl Final {
    /// Creates a FINAL aligner.
    pub fn new(config: FinalConfig) -> Self {
        Final { config }
    }
}

fn sym_normalized(g: &galign_graph::AttributedGraph) -> Csr {
    let inv_sqrt: Vec<f64> = g
        .degrees()
        .iter()
        .map(|&d| if d > 0 { 1.0 / (d as f64).sqrt() } else { 0.0 })
        .collect();
    g.adjacency()
        .diag_scale(&inv_sqrt, &inv_sqrt)
        .expect("lengths match")
}

impl Aligner for Final {
    fn name(&self) -> &'static str {
        "FINAL"
    }

    fn align(&self, input: &AlignInput<'_>) -> Dense {
        let h = prior_matrix(input);
        // Node-attribute agreement N, clamped to non-negative cosine.
        let n = if input.source.attr_dim() == input.target.attr_dim() {
            attribute_similarity(input.source, input.target).map(|v| v.max(0.0))
        } else {
            Dense::filled(input.source.node_count(), input.target.node_count(), 1.0)
        };
        let a_s = sym_normalized(input.source);
        let a_t = sym_normalized(input.target);
        let mut s = h.clone();
        for iter in 0..self.config.max_iters {
            let masked = n.hadamard(&s).expect("same shape");
            let left = a_s.spmm(&masked).expect("shapes chain");
            let right = a_t
                .transpose()
                .spmm(&left.transpose())
                .expect("shapes chain")
                .transpose();
            let propagated = n.hadamard(&right).expect("same shape");
            let mut next = propagated.scale(self.config.alpha);
            next.axpy(1.0 - self.config.alpha, &h).expect("same shape");
            let delta = next.sub(&s).expect("same shape").frobenius_norm();
            s = next;
            galign_telemetry::trace_event!("final", "iter {iter}: delta={delta:.3e}");
            if delta < self.config.tolerance {
                galign_telemetry::debug!("final", "converged after {} iterations", iter + 1);
                break;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_datasets::synth::noisy_pair;
    use galign_graph::{generators, AttributedGraph};
    use galign_matrix::rng::SeededRng;
    use galign_metrics::evaluate;

    fn task(seed: u64, n: usize, p_s: f64, p_a: f64) -> galign_datasets::AlignmentTask {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, n, 3);
        let attrs = generators::binary_attributes(&mut rng, n, 12, 3);
        let g = AttributedGraph::from_edges(n, &edges, attrs);
        noisy_pair("t", &g, p_s, p_a, &mut rng)
    }

    #[test]
    fn strong_on_clean_attributed_pair() {
        let t = task(1, 40, 0.0, 0.0);
        let seeds: Vec<(usize, usize)> = t.truth.pairs().iter().take(4).copied().collect();
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &seeds,
            seed: 1,
        };
        let scores = Final::default().align_scores(&input);
        let report = evaluate(&scores, t.truth.pairs(), &[1, 10]);
        assert!(
            report.success(10).unwrap() > 0.5,
            "Success@10 = {:?}",
            report.success(10)
        );
    }

    #[test]
    fn attribute_noise_hurts() {
        // FINAL leans on attribute agreement; heavy attribute noise must
        // reduce Success@1 relative to the clean pair (Fig. 4's trend).
        let run = |p_a: f64| {
            let t = task(2, 40, 0.0, p_a);
            let seeds: Vec<(usize, usize)> = t.truth.pairs().iter().take(4).copied().collect();
            let input = AlignInput {
                source: &t.source,
                target: &t.target,
                seeds: &seeds,
                seed: 1,
            };
            let scores = Final::default().align_scores(&input);
            evaluate(&scores, t.truth.pairs(), &[1]).success(1).unwrap()
        };
        let clean = run(0.0);
        let noisy = run(0.9);
        assert!(clean >= noisy, "clean {clean} vs noisy {noisy}");
    }

    #[test]
    fn handles_mismatched_attribute_dims() {
        let t = task(3, 15, 0.1, 0.0);
        let other = AttributedGraph::from_edges_featureless(12, &[(0, 1), (1, 2)]);
        let input = AlignInput {
            source: &t.source,
            target: &other,
            seeds: &[],
            seed: 1,
        };
        let s = Final::default().align(&input);
        assert_eq!(s.shape(), (15, 12));
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }
}
