//! IONE (Liu et al., IJCAI 2016): aligning users across social networks by
//! *sharing the representation* of known anchor users.
//!
//! Where PALE embeds the networks separately and learns a mapping, IONE
//! embeds a merged vocabulary: each seed anchor pair is collapsed into one
//! token, so the skip-gram objective itself pulls the two networks into a
//! common space through second-order proximity with the shared anchors.
//! This is the mechanism of the original paper; we realise it on the shared
//! SGNS engine (edge-endpoint pairs from both networks over the merged
//! vocabulary) rather than LINE's edge-sampling trainer.

use crate::aligner::{AlignInput, Aligner};
use crate::skipgram::{train_sgns, SkipGramConfig};
use galign_matrix::rng::SeededRng;
use galign_matrix::Dense;
use std::collections::HashMap;

/// IONE hyper-parameters.
#[derive(Debug, Clone)]
pub struct IoneConfig {
    /// Embedding settings.
    pub embedding: SkipGramConfig,
}

impl Default for IoneConfig {
    fn default() -> Self {
        IoneConfig {
            embedding: SkipGramConfig {
                dim: 64,
                epochs: 10,
                ..SkipGramConfig::default()
            },
        }
    }
}

/// The IONE aligner.
#[derive(Debug, Clone, Default)]
pub struct Ione {
    /// Hyper-parameters.
    pub config: IoneConfig,
}

impl Ione {
    /// Creates an IONE aligner.
    pub fn new(config: IoneConfig) -> Self {
        Ione { config }
    }
}

impl Aligner for Ione {
    fn name(&self) -> &'static str {
        "IONE"
    }

    fn align(&self, input: &AlignInput<'_>) -> Dense {
        let (n1, n2) = (input.source.node_count(), input.target.node_count());
        // Merged vocabulary: source nodes keep their ids; target node t maps
        // to its anchored source id when seeded, else to `n1 + t`.
        let anchor_of: HashMap<usize, usize> = input.seeds.iter().map(|&(s, t)| (t, s)).collect();
        let target_token = |t: usize| anchor_of.get(&t).copied().unwrap_or(n1 + t);

        let mut pairs: Vec<(usize, usize)> =
            Vec::with_capacity(2 * (input.source.edge_count() + input.target.edge_count()));
        for (u, v) in input.source.edges() {
            pairs.push((u, v));
            pairs.push((v, u));
        }
        for (u, v) in input.target.edges() {
            let (a, b) = (target_token(u), target_token(v));
            pairs.push((a, b));
            pairs.push((b, a));
        }

        let mut rng = SeededRng::new(input.seed);
        galign_telemetry::debug!(
            "ione",
            "merged vocabulary of {} tokens ({} anchors shared), {} pairs",
            n1 + n2,
            input.seeds.len(),
            pairs.len()
        );
        let emb = train_sgns(&pairs, n1 + n2, &self.config.embedding, &mut rng).normalize_rows();

        let es = emb.select_rows(&(0..n1).collect::<Vec<_>>());
        let et = emb.select_rows(&(0..n2).map(target_token).collect::<Vec<_>>());
        let mut sim = es.matmul_bt(&et).expect("same dim");
        // Seed anchors are known; pin them so the supervision is respected
        // in the output ranking (their merged token makes them cos = 1
        // already, but pinning keeps them maximal after ties).
        for &(s, t) in input.seeds {
            sim.set(s, t, 1.0 + sim.get(s, t).max(0.0));
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_datasets::synth::noisy_pair;
    use galign_graph::{generators, AttributedGraph};
    use galign_metrics::evaluate;

    fn task(seed: u64, n: usize) -> galign_datasets::AlignmentTask {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, n, 3);
        let attrs = generators::binary_attributes(&mut rng, n, 8, 2);
        let g = AttributedGraph::from_edges(n, &edges, attrs);
        noisy_pair("t", &g, 0.0, 0.0, &mut rng)
    }

    #[test]
    fn shared_representation_aligns_anchors() {
        let t = task(1, 40);
        let seeds: Vec<(usize, usize)> = t.truth.pairs().iter().step_by(4).copied().collect();
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &seeds,
            seed: 3,
        };
        let scores = Ione::default().align_scores(&input);
        let report = evaluate(&scores, t.truth.pairs(), &[10]);
        assert!(
            report.success(10).unwrap() > 0.4,
            "Success@10 = {:?}",
            report.success(10)
        );
    }

    #[test]
    fn seeded_pairs_are_pinned() {
        let t = task(2, 20);
        let seeds = vec![(3usize, 7usize)];
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &seeds,
            seed: 5,
        };
        let s = Ione::default().align(&input);
        assert_eq!(s.row_argmax(3).unwrap().0, 7);
    }

    #[test]
    fn without_seeds_spaces_stay_separate_but_finite() {
        let t = task(3, 15);
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &[],
            seed: 1,
        };
        let s = Ione::default().align(&input);
        assert_eq!(s.shape(), (15, 15));
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }
}
