//! IsoRank (Singh et al., PNAS 2008): pairwise similarity propagation under
//! the homophily assumption.
//!
//! The fixed point solved is
//! `R = α · W_sᵀ R W_t + (1−α) · H`,
//! where `W` are column-normalised adjacency matrices and `H` is the prior
//! alignment matrix. This is the standard power-iteration formulation of
//! IsoRank's eigenproblem; per the paper's protocol (§VII-A) the prior is
//! built from degree/attribute similarity plus 10 % seed anchors.

use crate::aligner::{prior_matrix, AlignInput, Aligner};
use galign_matrix::{Csr, Dense};

/// IsoRank hyper-parameters.
#[derive(Debug, Clone)]
pub struct IsoRankConfig {
    /// Propagation weight α (0 = prior only, 1 = structure only).
    pub alpha: f64,
    /// Maximum power iterations.
    pub max_iters: usize,
    /// Early-exit tolerance on `‖R_{t+1} − R_t‖_F`.
    pub tolerance: f64,
}

impl Default for IsoRankConfig {
    fn default() -> Self {
        IsoRankConfig {
            alpha: 0.82,
            max_iters: 30,
            tolerance: 1e-6,
        }
    }
}

/// The IsoRank aligner.
#[derive(Debug, Clone, Default)]
pub struct IsoRank {
    /// Hyper-parameters.
    pub config: IsoRankConfig,
}

impl IsoRank {
    /// Creates an IsoRank aligner.
    pub fn new(config: IsoRankConfig) -> Self {
        IsoRank { config }
    }
}

/// Column-normalised adjacency `A D^{-1}` stored as CSR (rows sum to the
/// inverse-degree mass of their targets).
fn column_normalized(g: &galign_graph::AttributedGraph) -> Csr {
    let inv_deg: Vec<f64> = g
        .degrees()
        .iter()
        .map(|&d| if d > 0 { 1.0 / d as f64 } else { 0.0 })
        .collect();
    let ones = vec![1.0; g.node_count()];
    g.adjacency()
        .diag_scale(&ones, &inv_deg)
        .expect("lengths match")
}

impl Aligner for IsoRank {
    fn name(&self) -> &'static str {
        "IsoRank"
    }

    fn align(&self, input: &AlignInput<'_>) -> Dense {
        let h = prior_matrix(input);
        let ws = column_normalized(input.source); // n1×n1, W_s = A_s D_s^{-1}
        let wt = column_normalized(input.target);
        let wst = ws.transpose();
        let mut r = h.clone();
        for iter in 0..self.config.max_iters {
            // R' = α Wsᵀ R Wt + (1-α) H;   (R Wt) = (Wtᵀ Rᵀ)ᵀ.
            let left = wst.spmm(&r).expect("shapes chain");
            let right = wt
                .transpose()
                .spmm(&left.transpose())
                .expect("shapes chain")
                .transpose();
            let mut next = right.scale(self.config.alpha);
            next.axpy(1.0 - self.config.alpha, &h).expect("same shape");
            let delta = next.sub(&r).expect("same shape").frobenius_norm();
            r = next;
            galign_telemetry::trace_event!("isorank", "iter {iter}: delta={delta:.3e}");
            if delta < self.config.tolerance {
                galign_telemetry::debug!("isorank", "converged after {} iterations", iter + 1);
                break;
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_datasets::synth::noisy_pair;
    use galign_graph::{generators, AttributedGraph};
    use galign_matrix::rng::SeededRng;
    use galign_metrics::evaluate;

    fn task(seed: u64, n: usize) -> galign_datasets::AlignmentTask {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, n, 3);
        let attrs = generators::binary_attributes(&mut rng, n, 10, 3);
        let g = AttributedGraph::from_edges(n, &edges, attrs);
        noisy_pair("t", &g, 0.0, 0.0, &mut rng)
    }

    #[test]
    fn beats_random_on_clean_pair() {
        let t = task(1, 40);
        let seeds: Vec<(usize, usize)> = t.truth.pairs().iter().take(4).copied().collect();
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &seeds,
            seed: 1,
        };
        let scores = IsoRank::default().align_scores(&input);
        let report = evaluate(&scores, t.truth.pairs(), &[1, 10]);
        // Random Success@10 ≈ 10/40 = 0.25; IsoRank must do clearly better.
        assert!(
            report.success(10).unwrap() > 0.4,
            "Success@10 = {:?}",
            report.success(10)
        );
    }

    #[test]
    fn alpha_zero_returns_prior() {
        let t = task(2, 15);
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &[],
            seed: 1,
        };
        let cfg = IsoRankConfig {
            alpha: 0.0,
            ..IsoRankConfig::default()
        };
        let r = IsoRank::new(cfg).align(&input);
        let h = crate::aligner::prior_matrix(&input);
        assert!(r.approx_eq(&h, 1e-9));
    }

    #[test]
    fn column_normalization_sums() {
        let t = task(3, 20);
        let w = column_normalized(&t.source);
        // Column j of A D^{-1} sums to 1 for nodes with degree > 0:
        // transpose and check row sums.
        let sums = w.transpose().row_sums();
        for (v, s) in sums.iter().enumerate() {
            if t.source.degree(v) > 0 {
                assert!((s - 1.0).abs() < 1e-9, "node {v}: {s}");
            }
        }
    }

    #[test]
    fn converges_early_on_fixed_point() {
        // With α = 0 the first iteration already converges.
        let t = task(4, 10);
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &[],
            seed: 1,
        };
        let cfg = IsoRankConfig {
            alpha: 0.0,
            max_iters: 1000,
            tolerance: 1e-12,
        };
        // Should return quickly (no hang) and produce finite scores.
        let r = IsoRank::new(cfg).align(&input);
        assert!(r.as_slice().iter().all(|v| v.is_finite()));
    }
}
