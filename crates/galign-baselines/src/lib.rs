//! From-scratch implementations of the five baselines GAlign is evaluated
//! against (§VII-A): REGAL, IsoRank, FINAL, PALE and CENALP — plus two
//! extras: IONE (the shared-representation method the related-work section
//! discusses) and a naive degree/attribute matcher for sanity calibration.
//!
//! Each baseline follows its original paper's algorithm; simplifications
//! relative to the reference implementations are documented per module.
//! All aligners implement the common [`Aligner`] trait and produce a dense
//! alignment-score matrix compatible with `galign-metrics`.
//!
//! Supervision: FINAL and IsoRank consume a *prior alignment matrix* built
//! from the degree/attribute prior plus any provided anchor seeds; PALE and
//! CENALP consume anchor seeds directly (the paper grants all four 10 % of
//! the ground truth, §VII-A).

pub mod aligner;
pub mod cenalp;
pub mod degree;
pub mod finalalg;
pub mod ione;
pub mod isorank;
pub mod pale;
pub mod regal;
pub mod skipgram;

pub use aligner::{AlignInput, Aligner};
pub use cenalp::{Cenalp, CenalpConfig};
pub use degree::{DegreeMatch, DegreeMatchConfig};
pub use finalalg::{Final, FinalConfig};
pub use ione::{Ione, IoneConfig};
pub use isorank::{IsoRank, IsoRankConfig};
pub use pale::{Pale, PaleConfig};
pub use regal::{Regal, RegalConfig};
