//! PALE (Man et al., IJCAI 2016): predict anchor links via embedding.
//!
//! Phase 1 — **embedding**: each network is embedded independently by
//! maximising the co-occurrence likelihood of edge endpoints (first-order
//! SGNS over the edge list, as in the original paper).
//!
//! Phase 2 — **mapping**: a linear map `M` from source space to target
//! space is fit on the supervision anchors (the paper's linear variant;
//! we solve the ridge least-squares problem in closed form instead of SGD,
//! which is exact for this objective).
//!
//! Alignment scores are cosine similarities between mapped source
//! embeddings and target embeddings.

use crate::aligner::{AlignInput, Aligner};
use crate::skipgram::{train_sgns, SkipGramConfig};
use galign_graph::AttributedGraph;
use galign_matrix::rng::SeededRng;
use galign_matrix::solve::least_squares;
use galign_matrix::Dense;

/// PALE hyper-parameters.
#[derive(Debug, Clone)]
pub struct PaleConfig {
    /// Embedding settings (dimension, epochs, negatives).
    pub embedding: SkipGramConfig,
    /// Ridge regularisation of the mapping solve.
    pub ridge: f64,
}

impl Default for PaleConfig {
    fn default() -> Self {
        PaleConfig {
            embedding: SkipGramConfig {
                dim: 64,
                epochs: 10,
                ..SkipGramConfig::default()
            },
            ridge: 1e-3,
        }
    }
}

/// The PALE aligner.
#[derive(Debug, Clone, Default)]
pub struct Pale {
    /// Hyper-parameters.
    pub config: PaleConfig,
}

impl Pale {
    /// Creates a PALE aligner.
    pub fn new(config: PaleConfig) -> Self {
        Pale { config }
    }
}

/// Edge-endpoint co-occurrence pairs (both directions), PALE's training
/// signal.
fn edge_pairs(g: &AttributedGraph) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(g.edge_count() * 2);
    for (u, v) in g.edges() {
        pairs.push((u, v));
        pairs.push((v, u));
    }
    pairs
}

impl Aligner for Pale {
    fn name(&self) -> &'static str {
        "PALE"
    }

    fn align(&self, input: &AlignInput<'_>) -> Dense {
        let mut rng = SeededRng::new(input.seed);
        let mut rng_t = rng.fork(1);
        galign_telemetry::debug!(
            "pale",
            "embedding both networks (dim={}, epochs={})",
            self.config.embedding.dim,
            self.config.embedding.epochs
        );
        let es = train_sgns(
            &edge_pairs(input.source),
            input.source.node_count(),
            &self.config.embedding,
            &mut rng,
        )
        .normalize_rows();
        let et = train_sgns(
            &edge_pairs(input.target),
            input.target.node_count(),
            &self.config.embedding,
            &mut rng_t,
        )
        .normalize_rows();

        // Fit the linear mapping on the anchor seeds. Without supervision
        // the spaces stay unreconciled (PALE requires anchors; the paper
        // grants it 10 % of the truth, §VII-A).
        let mapped = if input.seeds.is_empty() {
            galign_telemetry::debug!("pale", "no anchor seeds: skipping the mapping solve");
            es.clone()
        } else {
            galign_telemetry::debug!(
                "pale",
                "fitting linear map on {} anchors",
                input.seeds.len()
            );
            let src_rows: Vec<usize> = input.seeds.iter().map(|&(s, _)| s).collect();
            let tgt_rows: Vec<usize> = input.seeds.iter().map(|&(_, t)| t).collect();
            let a = es.select_rows(&src_rows);
            let b = et.select_rows(&tgt_rows);
            match least_squares(&a, &b, self.config.ridge) {
                Ok(m) => es.matmul(&m).expect("dims chain"),
                Err(_) => es.clone(),
            }
        };
        mapped.normalize_rows().matmul_bt(&et).expect("same dim")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_datasets::synth::noisy_pair;
    use galign_graph::generators;
    use galign_metrics::evaluate;

    fn task(seed: u64, n: usize) -> galign_datasets::AlignmentTask {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, n, 3);
        let attrs = generators::binary_attributes(&mut rng, n, 8, 2);
        let g = AttributedGraph::from_edges(n, &edges, attrs);
        noisy_pair("t", &g, 0.0, 0.0, &mut rng)
    }

    #[test]
    fn edge_pairs_bidirectional() {
        let g = AttributedGraph::from_edges_featureless(3, &[(0, 1), (1, 2)]);
        let p = edge_pairs(&g);
        assert_eq!(p.len(), 4);
        assert!(p.contains(&(0, 1)) && p.contains(&(1, 0)));
    }

    #[test]
    fn supervision_improves_alignment() {
        let t = task(1, 40);
        let seeds: Vec<(usize, usize)> = t.truth.pairs().iter().step_by(4).copied().collect(); // 25 %
        let with = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &seeds,
            seed: 3,
        };
        let without = AlignInput { seeds: &[], ..with };
        let pale = Pale::default();
        let r_with = evaluate(&pale.align_scores(&with), t.truth.pairs(), &[10]);
        let r_without = evaluate(&pale.align_scores(&without), t.truth.pairs(), &[10]);
        assert!(
            r_with.success(10).unwrap() >= r_without.success(10).unwrap(),
            "with {:?} vs without {:?}",
            r_with.success(10),
            r_without.success(10)
        );
        // With mapping, must beat random (Success@10 random = 0.25).
        assert!(r_with.success(10).unwrap() > 0.3);
    }

    #[test]
    fn scores_shape_and_finiteness() {
        let t = task(2, 20);
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &[],
            seed: 1,
        };
        let s = Pale::default().align(&input);
        assert_eq!(s.shape(), (20, 20));
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }
}
