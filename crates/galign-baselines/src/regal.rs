//! REGAL (Heimann et al., CIKM 2018): representation-learning-based graph
//! alignment via the xNetMF embedding.
//!
//! Pipeline, per the original paper:
//! 1. **Structural identity**: per node, log-binned degree histograms of
//!    its k-hop neighbourhoods, hop-discounted by δ.
//! 2. **Similarity**: `exp(−γ_s‖x_u − x_v‖² − γ_a·attr_dist(u, v))`.
//! 3. **Nyström low-rank factorisation**: similarities to `p ≈ 10·log₂ n`
//!    landmarks, embedding `Y = C · (C_landmark)^{+1/2}`.
//! 4. Alignment scores = cosine similarity of the joint embeddings.
//!
//! REGAL is fully unsupervised — seeds are ignored.

use crate::aligner::{AlignInput, Aligner};
use galign_graph::{components, AttributedGraph};
use galign_matrix::eigen::sqrt_pinv;
use galign_matrix::rng::SeededRng;
use galign_matrix::Dense;

/// REGAL hyper-parameters (defaults follow the original paper).
#[derive(Debug, Clone)]
pub struct RegalConfig {
    /// Neighbourhood radius K.
    pub max_hops: usize,
    /// Hop discount δ.
    pub discount: f64,
    /// Structural similarity bandwidth γ_s.
    pub gamma_struct: f64,
    /// Attribute similarity weight γ_a.
    pub gamma_attr: f64,
    /// Landmark count override (`None` = `10·log₂(n) + 1`).
    pub num_landmarks: Option<usize>,
}

impl Default for RegalConfig {
    fn default() -> Self {
        RegalConfig {
            max_hops: 2,
            discount: 0.5,
            gamma_struct: 1.0,
            gamma_attr: 1.0,
            num_landmarks: None,
        }
    }
}

/// The REGAL aligner.
#[derive(Debug, Clone, Default)]
pub struct Regal {
    /// Hyper-parameters.
    pub config: RegalConfig,
}

impl Regal {
    /// Creates a REGAL aligner.
    pub fn new(config: RegalConfig) -> Self {
        Regal { config }
    }
}

/// Log-binned k-hop degree histograms (`buckets` log₂ bins), rows aligned
/// with node ids.
fn structural_features(
    g: &AttributedGraph,
    buckets: usize,
    max_hops: usize,
    discount: f64,
) -> Dense {
    let mut x = Dense::zeros(g.node_count(), buckets);
    for v in 0..g.node_count() {
        let layers = components::khop_layers(g, v, max_hops);
        for (hop, nodes) in layers.iter().enumerate().skip(1) {
            let w = discount.powi(hop as i32 - 1);
            for &u in nodes {
                let b = ((g.degree(u) + 1) as f64).log2().floor() as usize;
                let b = b.min(buckets - 1);
                x.set(v, b, x.get(v, b) + w);
            }
        }
    }
    x
}

/// Squared attribute distance between two attribute rows.
fn attr_dist(a: &[f64], b: &[f64]) -> f64 {
    galign_matrix::dense::sq_dist(a, b)
}

impl Aligner for Regal {
    fn name(&self) -> &'static str {
        "REGAL"
    }

    fn align(&self, input: &AlignInput<'_>) -> Dense {
        let cfg = &self.config;
        let (gs, gt) = (input.source, input.target);
        let (n1, n2) = (gs.node_count(), gt.node_count());
        let n = n1 + n2;
        if n == 0 {
            return Dense::zeros(0, 0);
        }
        let max_deg = gs
            .degrees()
            .into_iter()
            .chain(gt.degrees())
            .max()
            .unwrap_or(0);
        let buckets = (((max_deg + 1) as f64).log2().floor() as usize + 1).max(1);
        let xs = structural_features(gs, buckets, cfg.max_hops, cfg.discount);
        let xt = structural_features(gt, buckets, cfg.max_hops, cfg.discount);
        let x = xs.vstack(&xt).expect("same bucket count");
        let attrs_comparable = gs.attr_dim() == gt.attr_dim();
        let attr_row = |i: usize| -> &[f64] {
            if i < n1 {
                gs.attributes().row(i)
            } else {
                gt.attributes().row(i - n1)
            }
        };

        // Landmark selection (uniform over the joint node set).
        let p = cfg
            .num_landmarks
            .unwrap_or(((n as f64).log2() * 10.0) as usize + 1)
            .clamp(1, n);
        galign_telemetry::debug!(
            "regal",
            "xNetMF: {n} joint nodes, {buckets} degree buckets, {p} landmarks"
        );
        let mut rng = SeededRng::new(input.seed);
        let landmarks = rng.sample_indices(n, p);

        // C: similarities of every node to each landmark.
        let mut c = Dense::zeros(n, p);
        for i in 0..n {
            let xi = x.row(i);
            for (j, &l) in landmarks.iter().enumerate() {
                let mut d = cfg.gamma_struct * galign_matrix::dense::sq_dist(xi, x.row(l));
                if attrs_comparable {
                    d += cfg.gamma_attr * attr_dist(attr_row(i), attr_row(l));
                }
                c.set(i, j, (-d).exp());
            }
        }
        // Nyström: Y = C · (C[landmarks])^{+1/2}.
        let w = c.select_rows(&landmarks);
        // Symmetrise to guard against tiny asymmetries before eigensolving.
        let w = w.add(&w.transpose()).expect("square").scale(0.5);
        let w_pinv_sqrt = sqrt_pinv(&w, 1e-10).expect("landmark matrix eigensolve");
        let y = c
            .matmul(&w_pinv_sqrt)
            .expect("shapes chain")
            .normalize_rows();

        // Split back and score.
        let ys = y.select_rows(&(0..n1).collect::<Vec<_>>());
        let yt = y.select_rows(&(n1..n).collect::<Vec<_>>());
        ys.matmul_bt(&yt).expect("same embedding dim")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_datasets::synth::noisy_pair;
    use galign_graph::generators;
    use galign_matrix::rng::SeededRng;
    use galign_metrics::evaluate;

    fn task(seed: u64, n: usize, p_s: f64) -> galign_datasets::AlignmentTask {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, n, 3);
        let attrs = generators::binary_attributes(&mut rng, n, 10, 3);
        let g = AttributedGraph::from_edges(n, &edges, attrs);
        noisy_pair("t", &g, p_s, 0.0, &mut rng)
    }

    #[test]
    fn structural_features_reflect_degrees() {
        let g = AttributedGraph::from_edges_featureless(4, &[(0, 1), (0, 2), (0, 3)]);
        // Node 0 has three degree-1 neighbours: bucket log2(2)=1.
        let x = structural_features(&g, 3, 1, 0.5);
        assert_eq!(x.get(0, 1), 3.0);
        // Leaves see one degree-3 neighbour: bucket log2(4)=2.
        assert_eq!(x.get(1, 2), 1.0);
    }

    #[test]
    fn beats_random_on_structure() {
        let t = task(1, 50, 0.0);
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &[],
            seed: 3,
        };
        let scores = Regal::default().align_scores(&input);
        let report = evaluate(&scores, t.truth.pairs(), &[1, 10]);
        // Random Success@10 = 0.2; REGAL should do much better on a clean copy.
        assert!(
            report.success(10).unwrap() > 0.4,
            "Success@10 = {:?}",
            report.success(10)
        );
    }

    #[test]
    fn unsupervised_ignores_seeds() {
        let t = task(2, 25, 0.1);
        let seeds: Vec<(usize, usize)> = t.truth.pairs().iter().take(3).copied().collect();
        let with = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &seeds,
            seed: 5,
        };
        let without = AlignInput { seeds: &[], ..with };
        let a = Regal::default().align(&with);
        let b = Regal::default().align(&without);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn scores_are_cosines() {
        let t = task(3, 20, 0.2);
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &[],
            seed: 7,
        };
        let s = Regal::default().align(&input);
        assert!(s
            .as_slice()
            .iter()
            .all(|&v| v.is_finite() && v > -1.0 - 1e-9 && v < 1.0 + 1e-9));
    }

    #[test]
    fn landmark_override() {
        let t = task(4, 15, 0.0);
        let input = AlignInput {
            source: &t.source,
            target: &t.target,
            seeds: &[],
            seed: 9,
        };
        let cfg = RegalConfig {
            num_landmarks: Some(5),
            ..RegalConfig::default()
        };
        let s = Regal::new(cfg).align(&input);
        assert_eq!(s.shape(), (15, 15));
    }
}
