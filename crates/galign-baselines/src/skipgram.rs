//! Skip-gram with negative sampling (SGNS) — the embedding engine behind
//! the PALE and CENALP baselines (both papers train word2vec-style node
//! embeddings on co-occurrence pairs).

use galign_matrix::rng::SeededRng;
use galign_matrix::Dense;

/// SGNS hyper-parameters.
#[derive(Debug, Clone)]
pub struct SkipGramConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Passes over the training pairs.
    pub epochs: usize,
    /// SGD learning rate (linearly decayed to 10 % over training).
    pub learning_rate: f64,
    /// Negative samples per positive pair.
    pub negatives: usize,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig {
            dim: 64,
            epochs: 5,
            learning_rate: 0.025,
            negatives: 5,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Trains SGNS embeddings over `(center, context)` co-occurrence pairs.
///
/// Negative contexts are drawn from the unigram distribution of contexts
/// raised to the 3/4 power (the word2vec convention). Returns the `center`
/// (input) embedding matrix, `vocab × dim`.
pub fn train_sgns(
    pairs: &[(usize, usize)],
    vocab: usize,
    cfg: &SkipGramConfig,
    rng: &mut SeededRng,
) -> Dense {
    let dim = cfg.dim.max(1);
    let mut input = rng.uniform_matrix(vocab, dim, -0.5 / dim as f64, 0.5 / dim as f64);
    let mut output = Dense::zeros(vocab, dim);
    if pairs.is_empty() || vocab == 0 {
        return input;
    }
    // Unigram^{3/4} negative table.
    let mut counts = vec![0.0f64; vocab];
    for &(_, ctx) in pairs {
        counts[ctx] += 1.0;
    }
    let weights: Vec<f64> = counts.iter().map(|c| c.powf(0.75)).collect();

    let total_steps = (cfg.epochs * pairs.len()).max(1) as f64;
    let mut step = 0usize;
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    let mut grad = vec![0.0f64; dim];
    for epoch in 0..cfg.epochs {
        galign_telemetry::trace_event!(
            "skipgram",
            "epoch {epoch}/{}: {} pairs",
            cfg.epochs,
            pairs.len()
        );
        rng.shuffle(&mut order);
        for &idx in &order {
            let (center, context) = pairs[idx];
            let lr = cfg.learning_rate * (1.0 - 0.9 * step as f64 / total_steps);
            step += 1;
            grad.fill(0.0);
            // Positive update followed by `negatives` negative updates.
            for k in 0..=cfg.negatives {
                let (sample, label) = if k == 0 {
                    (context, 1.0)
                } else {
                    (rng.weighted_index(&weights), 0.0)
                };
                if k > 0 && sample == context {
                    continue;
                }
                let vin = input.row(center);
                let vout = output.row(sample);
                let score = sigmoid(galign_matrix::dense::dot(vin, vout));
                let g = (label - score) * lr;
                for d in 0..dim {
                    grad[d] += g * vout[d];
                }
                let vin_copy: Vec<f64> = vin.to_vec();
                let vout_mut = output.row_mut(sample);
                for d in 0..dim {
                    vout_mut[d] += g * vin_copy[d];
                }
            }
            let vin_mut = input.row_mut(center);
            for d in 0..dim {
                vin_mut[d] += grad[d];
            }
        }
    }
    input
}

/// Expands random walks into skip-gram training pairs with the given
/// window size (both directions, excluding self-pairs).
pub fn walks_to_pairs(walks: &[Vec<usize>], window: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for walk in walks {
        for (i, &center) in walk.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(walk.len());
            for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                if i != j && center != context {
                    pairs.push((center, context));
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint cliques of co-occurring tokens: embeddings within a
    /// clique must end up more similar than across cliques.
    #[test]
    fn separates_two_clusters() {
        let mut pairs = Vec::new();
        for a in 0..4usize {
            for b in 0..4usize {
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
        for a in 4..8usize {
            for b in 4..8usize {
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
        let mut rng = SeededRng::new(1);
        let cfg = SkipGramConfig {
            dim: 8,
            epochs: 120,
            ..SkipGramConfig::default()
        };
        let emb = train_sgns(&pairs, 8, &cfg, &mut rng).normalize_rows();
        let sim = |a: usize, b: usize| galign_matrix::dense::dot(emb.row(a), emb.row(b));
        let within = (sim(0, 1) + sim(1, 2) + sim(4, 5) + sim(5, 6)) / 4.0;
        let across = (sim(0, 4) + sim(1, 5) + sim(2, 6) + sim(3, 7)) / 4.0;
        assert!(
            within > across + 0.05,
            "within {within} should exceed across {across}"
        );
    }

    #[test]
    fn empty_input_returns_random_init() {
        let mut rng = SeededRng::new(2);
        let emb = train_sgns(&[], 5, &SkipGramConfig::default(), &mut rng);
        assert_eq!(emb.shape(), (5, 64));
    }

    #[test]
    fn walks_to_pairs_window() {
        let walks = vec![vec![0, 1, 2, 3]];
        let pairs = walks_to_pairs(&walks, 1);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 0)));
        assert!(pairs.contains(&(2, 3)));
        assert!(!pairs.contains(&(0, 2)));
        // Window 2 reaches two hops.
        let pairs2 = walks_to_pairs(&walks, 2);
        assert!(pairs2.contains(&(0, 2)));
        assert!(!pairs2.contains(&(0, 3)));
    }

    #[test]
    fn walks_to_pairs_skips_self_pairs() {
        let walks = vec![vec![5, 5, 6]];
        let pairs = walks_to_pairs(&walks, 2);
        assert!(pairs.iter().all(|&(a, b)| a != b));
    }

    #[test]
    fn deterministic_given_seed() {
        let pairs = vec![(0, 1), (1, 2), (2, 0)];
        let cfg = SkipGramConfig {
            dim: 4,
            epochs: 3,
            ..SkipGramConfig::default()
        };
        let a = train_sgns(&pairs, 3, &cfg, &mut SeededRng::new(9));
        let b = train_sgns(&pairs, 3, &cfg, &mut SeededRng::new(9));
        assert!(a.approx_eq(&b, 0.0));
    }
}
