//! Stage- and method-level benchmarks: one GCN training epoch, the
//! refinement sweep, and each aligner end-to-end on a fixed small task —
//! the data behind Table III's Time(s) column at micro scale.

use criterion::{criterion_group, criterion_main, Criterion};
use galign::alignment::{AlignmentMatrix, LayerSelection};
use galign::embedding::{embed_pair, EmbeddingConfig};
use galign::refine::{refine, RefineConfig};
use galign::{GAlign, GAlignConfig};
use galign_baselines::{AlignInput, Aligner, Final, IsoRank, Pale, Regal};
use galign_datasets::synth::noisy_pair;
use galign_datasets::AlignmentTask;
use galign_graph::generators;
use galign_matrix::rng::SeededRng;

fn task() -> AlignmentTask {
    let mut rng = SeededRng::new(7);
    let n = 150;
    let edges = generators::barabasi_albert(&mut rng, n, 3);
    let attrs = generators::binary_attributes(&mut rng, n, 16, 3);
    let g = galign_graph::AttributedGraph::from_edges(n, &edges, attrs);
    noisy_pair("bench", &g, 0.05, 0.05, &mut rng)
}

fn bench_stages(c: &mut Criterion) {
    let t = task();
    let mut group = c.benchmark_group("galign_stages");
    group.sample_size(10);

    group.bench_function("embedding_20_epochs_d64", |b| {
        b.iter(|| {
            let cfg = EmbeddingConfig {
                layer_dims: vec![64, 64],
                epochs: 20,
                num_augments: 1,
                ..EmbeddingConfig::default()
            };
            let mut rng = SeededRng::new(1);
            embed_pair(&t.source, &t.target, &cfg, &mut rng)
        });
    });

    // Refinement over fixed embeddings.
    let cfg = EmbeddingConfig {
        layer_dims: vec![64, 64],
        epochs: 10,
        num_augments: 1,
        ..EmbeddingConfig::default()
    };
    let mut rng = SeededRng::new(2);
    let pair = embed_pair(&t.source, &t.target, &cfg, &mut rng);
    group.bench_function("refinement_5_iters", |b| {
        b.iter(|| {
            refine(
                &pair.model,
                &t.source,
                &t.target,
                &pair.source,
                &pair.target,
                &LayerSelection::uniform(3),
                &RefineConfig {
                    iterations: 5,
                    ..RefineConfig::default()
                },
            )
        });
    });

    group.bench_function("alignment_greedy_score", |b| {
        let am = AlignmentMatrix::new(&pair.source, &pair.target, LayerSelection::uniform(3))
            .expect("embeddings share layer counts");
        b.iter(|| am.greedy_score());
    });
    group.finish();
}

fn bench_methods(c: &mut Criterion) {
    let t = task();
    let seeds: Vec<(usize, usize)> = t.truth.pairs().iter().step_by(10).copied().collect();
    let input = AlignInput {
        source: &t.source,
        target: &t.target,
        seeds: &seeds,
        seed: 3,
    };
    let mut group = c.benchmark_group("methods_end_to_end");
    group.sample_size(10);
    group.bench_function("galign_fast", |b| {
        b.iter(|| {
            GAlign::new(GAlignConfig::fast())
                .align(&t.source, &t.target, 5)
                .expect("bench task shapes are consistent")
        });
    });
    group.bench_function("regal", |b| {
        b.iter(|| Regal::default().align(&input));
    });
    group.bench_function("isorank", |b| {
        b.iter(|| IsoRank::default().align(&input));
    });
    group.bench_function("final", |b| {
        b.iter(|| Final::default().align(&input));
    });
    group.bench_function("pale", |b| {
        b.iter(|| Pale::default().align(&input));
    });
    group.finish();
}

criterion_group!(benches, bench_stages, bench_methods);
criterion_main!(benches);
