//! Micro-benchmarks of the numerical kernels behind every experiment:
//! dense GEMM, sparse×dense propagation, the fused consistency loss, and
//! the Gram product — the operations the §VI-C complexity analysis is
//! about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use galign_autograd::Tape;
use galign_graph::{generators, AttributedGraph};
use galign_matrix::rng::SeededRng;

fn graph(n: usize) -> AttributedGraph {
    let mut rng = SeededRng::new(42);
    let edges = generators::barabasi_albert(&mut rng, n, 4);
    let attrs = generators::binary_attributes(&mut rng, n, 32, 4);
    AttributedGraph::from_edges(n, &edges, attrs)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_matmul");
    group.sample_size(20);
    let mut rng = SeededRng::new(1);
    for &n in &[128usize, 512] {
        let a = rng.uniform_matrix(n, 100, -1.0, 1.0);
        let b = rng.uniform_matrix(100, 100, -1.0, 1.0);
        group.bench_with_input(BenchmarkId::new("n_x100_x100", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b).unwrap());
        });
        let t = rng.uniform_matrix(n, 100, -1.0, 1.0);
        group.bench_with_input(BenchmarkId::new("similarity_a_bt", n), &n, |bench, _| {
            bench.iter(|| a.matmul_bt(&t).unwrap());
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_propagation");
    group.sample_size(20);
    let mut rng = SeededRng::new(2);
    for &n in &[512usize, 2048] {
        let g = graph(n);
        let lap = g.normalized_laplacian();
        let h = rng.uniform_matrix(n, 100, -1.0, 1.0);
        group.bench_with_input(
            BenchmarkId::new("laplacian_spmm_d100", n),
            &n,
            |bench, _| {
                bench.iter(|| lap.spmm(&h).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_consistency_loss(c: &mut Criterion) {
    // The fused Eq. 7 loss: forward + backward on the tape, which is the
    // per-epoch hot path of Algorithm 1.
    let mut group = c.benchmark_group("consistency_loss");
    group.sample_size(20);
    let mut rng = SeededRng::new(3);
    for &n in &[256usize, 1024] {
        let g = graph(n);
        let lap = g.normalized_laplacian();
        let h = rng.uniform_matrix(n, 100, -0.5, 0.5);
        group.bench_with_input(BenchmarkId::new("fwd_bwd_d100", n), &n, |bench, _| {
            bench.iter(|| {
                let mut tape = Tape::new();
                let c_id = tape.sparse(lap.clone());
                let hv = tape.leaf(h.clone(), true);
                let j = tape.consistency_loss(hv, c_id);
                tape.backward(j)
            });
        });
    }
    group.finish();
}

fn bench_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram");
    group.sample_size(20);
    let mut rng = SeededRng::new(4);
    let a = rng.uniform_matrix(2048, 100, -1.0, 1.0);
    group.bench_function("2048x100", |bench| {
        bench.iter(|| a.gram());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_spmm,
    bench_consistency_loss,
    bench_gram
);
criterion_main!(benches);
