//! Blocked streaming-similarity benchmarks: the `simblock` engine's fused
//! top-1/top-k reductions against the materialise-then-scan baseline, plus
//! a block-size sweep. Sizes are kept small enough that `--test` (CI smoke
//! mode) finishes in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use galign_matrix::rng::SeededRng;
use galign_matrix::simblock::{self, SimPanel};
use galign_matrix::Dense;

struct Panels {
    source: Vec<Dense>,
    target: Vec<Dense>,
    theta: Vec<f64>,
}

/// Row-normalised multi-layer embeddings for both sides, mimicking the
/// alignment pipeline's inputs (k = 2 GCN layers + input layer).
fn panels(n: usize) -> Panels {
    let mut rng = SeededRng::new(42);
    let dims = [32usize, 64, 64];
    let make = |rng: &mut SeededRng| {
        dims.iter()
            .map(|&d| rng.uniform_matrix(n, d, -1.0, 1.0).normalize_rows())
            .collect::<Vec<_>>()
    };
    Panels {
        source: make(&mut rng),
        target: make(&mut rng),
        theta: vec![0.2, 0.3, 0.5],
    }
}

fn bench_top1(c: &mut Criterion) {
    let mut group = c.benchmark_group("simblock_top1");
    group.sample_size(10);
    for n in [256usize, 512] {
        let p = panels(n);
        let panel = SimPanel::new(&p.source, &p.target, &p.theta).unwrap();
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |b, _| {
            b.iter(|| simblock::top1(&panel));
        });
        group.bench_with_input(BenchmarkId::new("materialized", n), &n, |b, _| {
            b.iter(|| {
                let dense = simblock::materialize(&panel);
                (0..dense.rows())
                    .filter_map(|v| dense.row_argmax(v).map(|(u, _)| (v, u)))
                    .collect::<Vec<_>>()
            });
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("simblock_topk10");
    group.sample_size(10);
    for n in [256usize, 512] {
        let p = panels(n);
        let panel = SimPanel::new(&p.source, &p.target, &p.theta).unwrap();
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |b, _| {
            b.iter(|| simblock::topk(&panel, 10));
        });
    }
    group.finish();
}

fn bench_block_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("simblock_block_sweep");
    group.sample_size(10);
    let n = 512;
    let p = panels(n);
    for block in [32usize, 128, 512] {
        let panel = SimPanel::new(&p.source, &p.target, &p.theta)
            .unwrap()
            .with_block_rows(block);
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, _| {
            b.iter(|| simblock::top1(&panel));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_top1, bench_topk, bench_block_sweep);
criterion_main!(benches);
