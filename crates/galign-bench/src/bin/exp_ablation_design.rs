//! Design-choice ablations beyond the paper's Table IV — the decisions
//! DESIGN.md §4 calls out, tested empirically:
//!
//! * **Activation**: tanh (the paper's §IV-A argument) vs ReLU vs identity.
//! * **Refinement operator**: `C_q = QCQ` (Eq. 14's amplification, our
//!   resolution) vs the literal Eq. 15 reading `Q^{-1/2} C Q^{-1/2}`.
//! * **Adaptivity threshold** σ_< of Eq. 9: tight masking vs none.
//!
//! Each variant runs on a noisy email-network copy task where these choices
//! matter (10 % structural + 10 % attribute noise).
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_ablation_design`.

use galign::refine::RefineOperator;
use galign::{GAlign, GAlignConfig};
use galign_bench::harness::{fmt4, mean, render_table, CommonArgs, ExperimentOutput};
use galign_bench::runner::galign_config;
use galign_datasets::catalog::{email, noisy_task};
use galign_gcn::model::Activation;
use galign_metrics::evaluate;

fn run_variant(cfg: &GAlignConfig, args: &CommonArgs) -> (f64, f64) {
    let mut s1s = Vec::new();
    let mut maps = Vec::new();
    for r in 0..args.runs {
        let base = email(args.scale, args.seed + r as u64);
        let task = noisy_task(&base, "email", 0.1, 0.1, args.seed + 7 + r as u64);
        let result = GAlign::new(cfg.clone())
            .align(&task.source, &task.target, args.seed + 100 * r as u64)
            .expect("ablation tasks have consistent shapes");
        let report = evaluate(&result.alignment, task.truth.pairs(), &[1]);
        s1s.push(report.success(1).unwrap_or(0.0));
        maps.push(report.map);
    }
    (mean(&s1s), mean(&maps))
}

fn main() {
    let args = CommonArgs::parse();
    let base = galign_config(Default::default());

    let variants: Vec<(&str, GAlignConfig)> = vec![
        ("default (tanh, QCQ, thr=10)", base.clone()),
        ("activation = ReLU", {
            let mut c = base.clone();
            c.embedding.activation = Activation::Relu;
            c
        }),
        ("activation = identity", {
            let mut c = base.clone();
            c.embedding.activation = Activation::Identity;
            c
        }),
        ("refine op = literal Eq.15", {
            let mut c = base.clone();
            c.refine.operator = RefineOperator::DampenLiteral;
            c
        }),
        ("adaptivity thr = 0.1 (mask almost all)", {
            let mut c = base.clone();
            c.embedding.adaptivity_threshold = 0.1;
            c
        }),
        ("adaptivity thr = 1e9 (mask nothing)", {
            let mut c = base.clone();
            c.embedding.adaptivity_threshold = 1e9;
            c
        }),
    ];

    let mut output = ExperimentOutput::new("ablation_design", &args);
    let mut rows = Vec::new();
    println!(
        "\n=== Design ablations on noisy email copy (scale {}, p_s=p_a=0.1) ===",
        args.scale
    );
    for (name, cfg) in &variants {
        let (s1, map) = run_variant(cfg, &args);
        rows.push(vec![name.to_string(), fmt4(s1), fmt4(map)]);
        output.push(serde_json::json!({
            "variant": name,
            "success1": s1,
            "map": map,
        }));
    }
    println!("{}", render_table(&["Variant", "Success@1", "MAP"], &rows));
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
