//! Fig. 4 — robustness against attribute noise: Success@1 of the
//! attribute-aware methods (GAlign, REGAL, FINAL, CENALP) on bn/econ/email
//! noisy-copy tasks while the attribute-noise ratio sweeps 10 %–50 %.
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_fig4`.

use galign_bench::harness::{fmt4, render_table, CommonArgs, ExperimentOutput};
use galign_bench::runner::{average_runs, run_method, Method};
use galign_datasets::catalog::{bn, econ, email, noisy_task};
use galign_graph::AttributedGraph;

type BaseFn = fn(f64, u64) -> AttributedGraph;

fn main() {
    let args = CommonArgs::parse();
    let datasets: [(&str, BaseFn); 3] = [("bn", bn), ("econ", econ), ("email", email)];
    let ratios = [0.1, 0.2, 0.3, 0.4, 0.5];

    let mut output = ExperimentOutput::new("fig4", &args);
    for (name, base_fn) in &datasets {
        println!(
            "\n=== Fig 4: attribute noise on {name} (scale {}) ===",
            args.scale
        );
        let mut rows = Vec::new();
        for method in Method::attribute_aware() {
            let mut cells = vec![method.name().to_string()];
            for &ratio in &ratios {
                let runs: Vec<_> = (0..args.runs)
                    .map(|r| {
                        let base = base_fn(args.scale, args.seed + r as u64);
                        // Attribute noise only, per the paper's Fig. 4 protocol.
                        let task = noisy_task(&base, name, 0.0, ratio, args.seed + 7 + r as u64);
                        run_method(method, &task, args.seed + 100 * r as u64)
                    })
                    .collect();
                let (_, _, s1, _, _) = average_runs(&runs);
                cells.push(fmt4(s1));
                output.push(serde_json::json!({
                    "dataset": name,
                    "method": method.name(),
                    "attribute_noise_ratio": ratio,
                    "success1": s1,
                }));
            }
            rows.push(cells);
        }
        println!(
            "{}",
            render_table(&["Method", "10%", "20%", "30%", "40%", "50%"], &rows)
        );
    }
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
