//! Fig. 5 — robustness against the isomorphic level: Success@1 while the
//! node-overlap ratio between source and target sweeps from 0.5 to 1.0
//! (smaller overlap = less isomorphic networks).
//!
//! Evaluated on bn/econ/email parents with all six methods, like the
//! paper's Fig. 5 panels.
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_fig5`.

use galign_bench::harness::{fmt4, render_table, CommonArgs, ExperimentOutput};
use galign_bench::runner::{average_runs, run_method, Method};
use galign_datasets::catalog::{bn, econ, email};
use galign_datasets::synth::overlap_pair;
use galign_graph::AttributedGraph;
use galign_matrix::rng::SeededRng;

type BaseFn = fn(f64, u64) -> AttributedGraph;

fn main() {
    let args = CommonArgs::parse();
    let datasets: [(&str, BaseFn); 3] = [("bn", bn), ("econ", econ), ("email", email)];
    let overlaps = [0.5, 0.625, 0.75, 0.875, 1.0];

    let mut output = ExperimentOutput::new("fig5", &args);
    for (name, base_fn) in &datasets {
        println!(
            "\n=== Fig 5: isomorphic level on {name} (scale {}) ===",
            args.scale
        );
        let mut rows = Vec::new();
        for method in Method::table3() {
            let mut cells = vec![method.name().to_string()];
            for &overlap in &overlaps {
                let runs: Vec<_> = (0..args.runs)
                    .map(|r| {
                        let base = base_fn(args.scale, args.seed + r as u64);
                        let mut rng = SeededRng::new(args.seed + 7 + r as u64);
                        let task = overlap_pair(name, &base, overlap, 0.05, 0.05, &mut rng);
                        run_method(method, &task, args.seed + 100 * r as u64)
                    })
                    .collect();
                let (_, _, s1, _, _) = average_runs(&runs);
                cells.push(fmt4(s1));
                output.push(serde_json::json!({
                    "dataset": name,
                    "method": method.name(),
                    "overlap_ratio": overlap,
                    "success1": s1,
                }));
            }
            rows.push(cells);
        }
        println!(
            "{}",
            render_table(&["Method", "0.50", "0.625", "0.75", "0.875", "1.00"], &rows)
        );
    }
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
