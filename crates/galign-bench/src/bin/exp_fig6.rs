//! Fig. 6 — effect of the number of GCN layers: Success@1 on Allmovie-Imdb
//! for k = 1..5, evaluating each single layer `H⁽ˡ⁾` alone and the
//! multi-order combination `{H⁽ˡ⁾}` (the paper's matrix of Fig. 6).
//!
//! The model is trained once per k and the layer selections are evaluated
//! on the same embeddings (refinement is layer-selection-agnostic and is
//! skipped here so columns are comparable; EXPERIMENTS.md notes this).
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_fig6`.

use galign::alignment::{AlignmentMatrix, LayerSelection};
use galign::embedding::{embed_pair, EmbeddingConfig};
use galign_bench::harness::{fmt4, mean, render_table, CommonArgs, ExperimentOutput};
use galign_datasets::allmovie_imdb;
use galign_matrix::rng::SeededRng;
use galign_metrics::evaluate;

fn main() {
    let args = CommonArgs::parse();
    let max_k = 5usize;

    let mut output = ExperimentOutput::new("fig6", &args);
    let mut rows = Vec::new();
    println!(
        "\n=== Fig 6: #GCN layers vs Success@1 on Allmovie-Imdb (scale {}) ===",
        args.scale
    );
    for k in 1..=max_k {
        // cells[l] = Success@1 using layer l only (l = 0..k); last = multi-order.
        let mut per_run: Vec<Vec<f64>> = Vec::new();
        for r in 0..args.runs {
            let task = allmovie_imdb(args.scale, args.seed + r as u64);
            let cfg = EmbeddingConfig {
                layer_dims: vec![100; k],
                epochs: 20,
                num_augments: 1,
                ..EmbeddingConfig::default()
            };
            let mut rng = SeededRng::new(args.seed + 100 * r as u64);
            let pair = embed_pair(&task.source, &task.target, &cfg, &mut rng);
            let mut cells = Vec::with_capacity(k + 2);
            for l in 0..=k {
                let sel = LayerSelection::single(l, k + 1);
                let am = AlignmentMatrix::new(&pair.source, &pair.target, sel)
                    .expect("embedded pair shares layer counts");
                let rep = evaluate(&am, task.truth.pairs(), &[1]);
                cells.push(rep.success(1).unwrap_or(0.0));
            }
            let am =
                AlignmentMatrix::new(&pair.source, &pair.target, LayerSelection::uniform(k + 1))
                    .expect("embedded pair shares layer counts");
            cells.push(
                evaluate(&am, task.truth.pairs(), &[1])
                    .success(1)
                    .unwrap_or(0.0),
            );
            per_run.push(cells);
        }
        // Average across runs.
        let cols = per_run[0].len();
        let avg: Vec<f64> = (0..cols)
            .map(|c| mean(&per_run.iter().map(|r| r[c]).collect::<Vec<_>>()))
            .collect();

        let mut row = vec![format!("k={k}")];
        for l in 0..=max_k {
            row.push(if l <= k {
                fmt4(avg[l])
            } else {
                "N/A".to_string()
            });
        }
        row.push(fmt4(*avg.last().expect("multi-order cell")));
        output.push(serde_json::json!({
            "k": k,
            "per_layer_success1": avg[..=k],
            "multi_order_success1": avg.last(),
        }));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "",
                "H(0)",
                "H(1)",
                "H(2)",
                "H(3)",
                "H(4)",
                "H(5)",
                "multi-order"
            ],
            &rows
        )
    );
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
