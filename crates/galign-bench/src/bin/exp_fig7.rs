//! Fig. 7 — embedding-dimension sensitivity: Success@1 and run time of
//! GAlign on Allmovie-Imdb as the GCN layer dimension sweeps 25..300.
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_fig7`.

use galign_bench::harness::{fmt4, mean, render_table, CommonArgs, ExperimentOutput};
use galign_bench::runner::run_galign_with_selection;
use galign_datasets::allmovie_imdb;

fn main() {
    let args = CommonArgs::parse();
    let dims = [25usize, 50, 100, 150, 200, 250, 300];

    let mut output = ExperimentOutput::new("fig7", &args);
    let mut rows = Vec::new();
    println!(
        "\n=== Fig 7: embedding dimension vs Success@1 on Allmovie-Imdb (scale {}) ===",
        args.scale
    );
    for &d in &dims {
        let mut s1s = Vec::new();
        let mut secs = Vec::new();
        for r in 0..args.runs {
            let task = allmovie_imdb(args.scale, args.seed + r as u64);
            let run =
                run_galign_with_selection(&task, vec![d, d], None, args.seed + 100 * r as u64);
            s1s.push(run.report.success(1).unwrap_or(0.0));
            secs.push(run.secs);
        }
        rows.push(vec![
            d.to_string(),
            fmt4(mean(&s1s)),
            format!("{:.1}", mean(&secs)),
        ]);
        output.push(serde_json::json!({
            "dimension": d,
            "success1": mean(&s1s),
            "time_secs": mean(&secs),
        }));
    }
    println!(
        "{}",
        render_table(&["Dimension", "Success@1", "Time(s)"], &rows)
    );
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
