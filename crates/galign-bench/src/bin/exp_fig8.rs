//! Fig. 8 — qualitative study on the 10-movie toy dataset: t-SNE layouts of
//! (a) the traditional final-layer embeddings, (b) the multi-order
//! embeddings, and (c) the multi-order embeddings after refinement.
//!
//! Prints an ASCII scatter per panel (source movies as letters, target
//! movies as the matching lowercase) and writes all coordinates to JSON for
//! external plotting.
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_fig8`.

use galign::alignment::LayerSelection;
use galign::embedding::{embed_pair, EmbeddingConfig};
use galign::refine::{refine, RefineConfig};
use galign_bench::harness::{CommonArgs, ExperimentOutput};
use galign_datasets::toy::{toy_movies, MOVIE_NAMES};
use galign_gcn::MultiOrderEmbedding;
use galign_matrix::rng::SeededRng;
use galign_matrix::Dense;
use galign_viz::{paired_points, scatter_svg, tsne, TsneConfig};

/// Stacks source+target embeddings and projects them to 2-D.
fn layout(source: &Dense, target: &Dense, seed: u64) -> Dense {
    let stacked = source.vstack(target).expect("same width");
    tsne(
        &stacked,
        &TsneConfig {
            perplexity: 4.0,
            iterations: 400,
            seed,
            ..TsneConfig::default()
        },
    )
}

/// Renders a crude ASCII scatter: source movie i = uppercase letter,
/// target movie i = lowercase letter.
fn ascii_scatter(coords: &Dense) -> String {
    let (w, h) = (64usize, 20usize);
    let n = coords.rows() / 2;
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in 0..coords.rows() {
        min_x = min_x.min(coords.get(i, 0));
        max_x = max_x.max(coords.get(i, 0));
        min_y = min_y.min(coords.get(i, 1));
        max_y = max_y.max(coords.get(i, 1));
    }
    let sx = (max_x - min_x).max(1e-9);
    let sy = (max_y - min_y).max(1e-9);
    let mut grid = vec![vec![' '; w]; h];
    for i in 0..coords.rows() {
        let x = (((coords.get(i, 0) - min_x) / sx) * (w - 1) as f64) as usize;
        let y = (((coords.get(i, 1) - min_y) / sy) * (h - 1) as f64) as usize;
        let ch = if i < n {
            (b'A' + (i % 26) as u8) as char
        } else {
            (b'a' + ((i - n) % 26) as u8) as char
        };
        grid[h - 1 - y][x] = ch;
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

fn panel_json(coords: &Dense) -> serde_json::Value {
    let n = coords.rows() / 2;
    let points: Vec<serde_json::Value> = (0..coords.rows())
        .map(|i| {
            serde_json::json!({
                "movie": MOVIE_NAMES[i % n],
                "side": if i < n { "source" } else { "target" },
                "x": coords.get(i, 0),
                "y": coords.get(i, 1),
            })
        })
        .collect();
    serde_json::Value::Array(points)
}

fn main() {
    let args = CommonArgs::parse();
    let task = toy_movies();
    let cfg = EmbeddingConfig {
        layer_dims: vec![16, 16],
        epochs: 60,
        num_augments: 1,
        p_structure: 0.1,
        p_attribute: 0.1,
        ..EmbeddingConfig::default()
    };
    let mut rng = SeededRng::new(args.seed);
    let pair = embed_pair(&task.source, &task.target, &cfg, &mut rng);

    // (a) Traditional: final layer only.
    let k = cfg.layer_dims.len();
    let final_s = pair.source.normalized().layer(k).clone();
    let final_t = pair.target.normalized().layer(k).clone();
    let a = layout(&final_s, &final_t, args.seed);

    // (b) Multi-order: concatenation of all layers.
    let multi = |e: &MultiOrderEmbedding| e.normalized().concatenated();
    let b = layout(&multi(&pair.source), &multi(&pair.target), args.seed);

    // (c) Multi-order after refinement.
    let outcome = refine(
        &pair.model,
        &task.source,
        &task.target,
        &pair.source,
        &pair.target,
        &LayerSelection::uniform(k + 1),
        &RefineConfig {
            iterations: 10,
            ..RefineConfig::default()
        },
    );
    let c = layout(&multi(&outcome.source), &multi(&outcome.target), args.seed);

    for (title, coords) in [
        ("(a) traditional final-layer embeddings", &a),
        ("(b) multi-order embeddings", &b),
        ("(c) multi-order embeddings after refinement", &c),
    ] {
        println!("\n=== Fig 8{title} ===");
        println!("{}", ascii_scatter(coords));
    }
    println!("\nlegend: A..J = source movies, a..j = matching target movies");
    for (i, name) in MOVIE_NAMES.iter().enumerate() {
        println!(
            "  {} / {} = {name}",
            (b'A' + i as u8) as char,
            (b'a' + i as u8) as char
        );
    }

    // SVG panels alongside the JSON coordinates.
    std::fs::create_dir_all(&args.out_dir).expect("results dir");
    for (stem, title, coords) in [
        ("fig8a", "(a) traditional final-layer embeddings", &a),
        ("fig8b", "(b) multi-order embeddings", &b),
        ("fig8c", "(c) multi-order embeddings after refinement", &c),
    ] {
        let pts = paired_points(coords, &MOVIE_NAMES);
        let svg = scatter_svg(&pts, title, 640, 480);
        let path = args.out_dir.join(format!("{stem}.svg"));
        std::fs::write(&path, svg).expect("write svg");
        println!("svg panel -> {}", path.display());
    }

    let mut output = ExperimentOutput::new("fig8", &args);
    output.push(serde_json::json!({
        "panel": "a_final_layer", "points": panel_json(&a),
    }));
    output.push(serde_json::json!({
        "panel": "b_multi_order", "points": panel_json(&b),
    }));
    output.push(serde_json::json!({
        "panel": "c_multi_order_refined", "points": panel_json(&c),
    }));
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
