//! ANN index evaluation: recall and cost of the `galign-index` engines
//! (HNSW, IVF) against the exact blocked scan, on clustered multi-order
//! embeddings (2 layers x 32 dims = 64 concatenated dims) at n in
//! {1k, 10k, 50k}. Reports recall@1 / recall@10, build time, per-query
//! latency of both engines and the mean distance-evaluation count — the
//! sublinearity evidence: at n = 10k the contract is < 0.2·n evals per
//! query, recorded in EXPERIMENTS.md.
//!
//! ANN hits are re-ranked through the exact kernel, so a returned score
//! is always the exact score; recall (how much of the exact top-k the
//! candidate set covers) is the only quality axis.
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_index`.
//! `--smoke` shrinks the sweep to a seconds-long CI check.

use galign_bench::harness::{fmt4, mean, render_table, CommonArgs, ExperimentOutput};
use galign_serve::artifact::{Artifact, Mat};
use galign_serve::topk::{Backend, EngineMode, TopkIndex};
use std::time::Instant;

const DIMS: [usize; 2] = [32, 32];
const K: usize = 10;

/// xorshift64* — deterministic fixtures without pulling `rand` into the
/// hot path.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [-1, 1).
    fn signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

/// Clustered multi-order embedding fixture: per-layer cluster centers
/// plus bounded noise, cluster assignment shared across layers — the
/// neighborhood structure trained GCN embeddings exhibit. (Uniform
/// random d = 64 points concentrate distances and defeat every ANN
/// method; measuring on them would say nothing about the workload.)
fn clustered_artifact(n: usize, seed: u64) -> Artifact {
    let clusters = (n / 50).max(4);
    let noise = 0.25;
    let mut rng = Rng::new(seed);
    let centers: Vec<Vec<Vec<f64>>> = DIMS
        .iter()
        .map(|&d| {
            (0..clusters)
                .map(|_| (0..d).map(|_| rng.signed_unit()).collect())
                .collect()
        })
        .collect();
    let layer = |l: usize, jitter: f64, rng: &mut Rng| {
        let d = DIMS[l];
        let mut data = Vec::with_capacity(n * d);
        for node in 0..n {
            let c = &centers[l][node % clusters];
            data.extend(c.iter().map(|&v| v + (noise + jitter) * rng.signed_unit()));
        }
        Mat::new(n, d, data).expect("shape by construction")
    };
    let target: Vec<Mat> = (0..DIMS.len()).map(|l| layer(l, 0.0, &mut rng)).collect();
    let source: Vec<Mat> = (0..DIMS.len()).map(|l| layer(l, 0.05, &mut rng)).collect();
    Artifact::new(vec![1.0; DIMS.len()], source, target, false).expect("valid artifact")
}

struct Cell {
    build_ms: f64,
    recall1: f64,
    recall10: f64,
    exact_us: f64,
    ann_us: f64,
    evals_mean: f64,
}

/// Builds `backend` over the fixture and measures one sweep cell.
fn run_cell(artifact: &Artifact, backend: Backend, queries: usize) -> Cell {
    let mut index = TopkIndex::from_artifact(artifact.clone());
    let t0 = Instant::now();
    index.build_ann(backend).expect("fixture is well-formed");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let n = index.target_nodes();
    let nodes: Vec<usize> = (0..queries).map(|q| q * (n / queries).max(1) % n).collect();

    let t0 = Instant::now();
    let exact: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&v| {
            index
                .topk(v, K, None)
                .expect("valid query")
                .iter()
                .map(|h| h.target)
                .collect()
        })
        .collect();
    let exact_us = t0.elapsed().as_secs_f64() * 1e6 / queries as f64;

    let evals_before = galign_telemetry::counter_value("index.search.distance_evals");
    let t0 = Instant::now();
    let ann: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&v| {
            index
                .topk_with_mode(v, K, None, EngineMode::Ann)
                .expect("valid query")
                .0
                .iter()
                .map(|h| h.target)
                .collect()
        })
        .collect();
    let ann_us = t0.elapsed().as_secs_f64() * 1e6 / queries as f64;
    let evals = galign_telemetry::counter_value("index.search.distance_evals") - evals_before;

    let mut r1 = Vec::new();
    let mut r10 = Vec::new();
    for (truth, got) in exact.iter().zip(&ann) {
        if let Some(top) = truth.first() {
            r1.push(f64::from(u8::from(got.contains(top))));
        }
        let hit = truth.iter().filter(|t| got.contains(t)).count();
        r10.push(hit as f64 / truth.len().max(1) as f64);
    }
    Cell {
        build_ms,
        recall1: mean(&r1),
        recall10: mean(&r10),
        exact_us,
        ann_us,
        evals_mean: evals as f64 / queries as f64,
    }
}

fn main() {
    // --smoke (a CI-only flag) is stripped before the shared parser,
    // which aborts on flags it does not know.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    raw.retain(|a| a != "--smoke");
    let args = CommonArgs::parse_from(raw.into_iter());
    args.configure_telemetry();

    let (ns, queries): (&[usize], usize) = if smoke {
        (&[2_000], 50)
    } else {
        (&[1_000, 10_000, 50_000], 200)
    };

    let mut output = ExperimentOutput::new("index", &args);
    println!("\n=== ANN index recall/cost vs exact scan (d = 64, k = {K}) ===");

    let mut rows = Vec::new();
    for &n in ns {
        let artifact = clustered_artifact(n, args.seed);
        for backend in [Backend::Hnsw, Backend::Ivf] {
            let cell = run_cell(&artifact, backend, queries);
            let frac = cell.evals_mean / n as f64;
            rows.push(vec![
                format!("{n}"),
                backend.to_string(),
                format!("{:.0}", cell.build_ms),
                fmt4(cell.recall1),
                fmt4(cell.recall10),
                format!("{:.0}", cell.exact_us),
                format!("{:.0}", cell.ann_us),
                format!("{:.0} ({:.3}n)", cell.evals_mean, frac),
            ]);
            output.push(serde_json::json!({
                "n": n,
                "backend": backend.to_string(),
                "build_ms": cell.build_ms,
                "recall_at_1": cell.recall1,
                "recall_at_10": cell.recall10,
                "exact_us_per_query": cell.exact_us,
                "ann_us_per_query": cell.ann_us,
                "distance_evals_per_query": cell.evals_mean,
                "distance_evals_fraction_of_n": frac,
            }));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "n",
                "Backend",
                "Build ms",
                "R@1",
                "R@10",
                "Exact us",
                "ANN us",
                "Dist evals",
            ],
            &rows
        )
    );
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
