//! Quantized artifact evaluation: size, scan cost and fidelity of the
//! `galign-quant` int8/f16 panels against the f64 blocked scan, on the
//! same clustered multi-order fixture as `exp_index` (2 layers × 32 dims
//! = 64 concatenated dims) at n in {1k, 10k, 50k}.
//!
//! Per cell the harness reports the written artifact size of the
//! quant-primary v4 file against the f64-only baseline (the ≥3.5×
//! contract for int8), the exact-scan latency at both precisions, the
//! certified-shortlist survival fraction (how much of n the margin test
//! forwards to the exact re-rank), and recall@10 of ANN traversal over
//! quantized rows. Responses are asserted bit-identical between
//! `quant: off` and quantized requests — the harness aborts on any
//! mismatch, so a passing run *is* the fidelity evidence.
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_quant`.
//! `--smoke` shrinks the sweep to a seconds-long CI check.

use galign_bench::harness::{fmt4, render_table, CommonArgs, ExperimentOutput};
use galign_serve::artifact::{Artifact, Mat};
use galign_serve::topk::{Backend, EngineMode, QuantMode, TopkIndex};
use std::time::Instant;

const DIMS: [usize; 2] = [32, 32];
const K: usize = 10;

/// xorshift64* — deterministic fixtures without pulling `rand` into the
/// hot path.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [-1, 1).
    fn signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

/// Clustered multi-order embedding fixture, identical in shape to the
/// `exp_index` one: per-layer cluster centers plus bounded noise, cluster
/// assignment shared across layers.
fn clustered_artifact(n: usize, seed: u64) -> Artifact {
    let clusters = (n / 50).max(4);
    let noise = 0.25;
    let mut rng = Rng::new(seed);
    let centers: Vec<Vec<Vec<f64>>> = DIMS
        .iter()
        .map(|&d| {
            (0..clusters)
                .map(|_| (0..d).map(|_| rng.signed_unit()).collect())
                .collect()
        })
        .collect();
    let layer = |l: usize, jitter: f64, rng: &mut Rng| {
        let d = DIMS[l];
        let mut data = Vec::with_capacity(n * d);
        for node in 0..n {
            let c = &centers[l][node % clusters];
            data.extend(c.iter().map(|&v| v + (noise + jitter) * rng.signed_unit()));
        }
        Mat::new(n, d, data).expect("shape by construction")
    };
    let target: Vec<Mat> = (0..DIMS.len()).map(|l| layer(l, 0.0, &mut rng)).collect();
    let source: Vec<Mat> = (0..DIMS.len()).map(|l| layer(l, 0.05, &mut rng)).collect();
    Artifact::new(vec![1.0; DIMS.len()], source, target, false).expect("valid artifact")
}

fn written_bytes(artifact: &Artifact, name: &str) -> u64 {
    let dir = std::env::temp_dir().join("galign-exp-quant");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    artifact.write(&path).expect("write artifact");
    std::fs::metadata(&path).expect("written file").len()
}

struct Cell {
    bytes: u64,
    ratio: f64,
    f64_us: f64,
    quant_us: f64,
    shortlist_frac: f64,
    recall10: f64,
}

/// Measures one (fixture, encoding) cell on a quant-primary artifact:
/// written size, both exact-scan latencies (asserting bit-identity per
/// query), shortlist survival, and quantized-traversal ANN recall.
fn run_cell(artifact: &Artifact, quant: QuantMode, f64_bytes: u64, queries: usize) -> Cell {
    let encoding = quant.panel_mode().expect("int8/f16 cell");
    let quantized = artifact
        .clone()
        .with_quant(encoding, false)
        .expect("fixture quantizes");
    let bytes = written_bytes(
        &quantized,
        &format!("{}-{}.bin", quant, quantized.target_nodes()),
    );

    let mut index = TopkIndex::from_artifact(quantized);
    index
        .build_ann(Backend::Hnsw)
        .expect("fixture is well-formed");
    let n = index.target_nodes();
    let nodes: Vec<usize> = (0..queries).map(|q| q * (n / queries).max(1) % n).collect();

    let t0 = Instant::now();
    let plain: Vec<Vec<(usize, u64)>> = nodes
        .iter()
        .map(|&v| {
            index
                .topk_with_opts(v, K, None, EngineMode::Exact, QuantMode::Off)
                .expect("valid query")
                .0
                .iter()
                .map(|h| (h.target, h.score.to_bits()))
                .collect()
        })
        .collect();
    let f64_us = t0.elapsed().as_secs_f64() * 1e6 / queries as f64;

    let evals_before = galign_telemetry::counter_value("quant.scan.first_pass_evals");
    let short_before = galign_telemetry::counter_value("quant.scan.shortlisted");
    let t0 = Instant::now();
    let shortlisted: Vec<Vec<(usize, u64)>> = nodes
        .iter()
        .map(|&v| {
            index
                .topk_with_opts(v, K, None, EngineMode::Exact, quant)
                .expect("valid query")
                .0
                .iter()
                .map(|h| (h.target, h.score.to_bits()))
                .collect()
        })
        .collect();
    let quant_us = t0.elapsed().as_secs_f64() * 1e6 / queries as f64;
    let evals = galign_telemetry::counter_value("quant.scan.first_pass_evals") - evals_before;
    let short = galign_telemetry::counter_value("quant.scan.shortlisted") - short_before;
    // The fidelity contract is asserted, not reported: any drift aborts.
    assert_eq!(
        plain, shortlisted,
        "{quant}: quantized exact scan diverged from f64 (n = {n})"
    );

    let mut r10 = Vec::new();
    for &v in &nodes {
        let truth: Vec<usize> = index
            .topk(v, K, None)
            .expect("valid query")
            .iter()
            .map(|h| h.target)
            .collect();
        let got = index
            .topk_with_opts(v, K, None, EngineMode::Ann, quant)
            .expect("valid query")
            .0;
        let hit = truth
            .iter()
            .filter(|t| got.iter().any(|h| h.target == **t))
            .count();
        r10.push(hit as f64 / truth.len().max(1) as f64);
    }

    Cell {
        bytes,
        ratio: f64_bytes as f64 / bytes as f64,
        f64_us,
        quant_us,
        shortlist_frac: if evals == 0 {
            0.0
        } else {
            short as f64 / evals as f64
        },
        recall10: r10.iter().sum::<f64>() / r10.len().max(1) as f64,
    }
}

fn main() {
    // --smoke (a CI-only flag) is stripped before the shared parser,
    // which aborts on flags it does not know.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    raw.retain(|a| a != "--smoke");
    let args = CommonArgs::parse_from(raw.into_iter());
    args.configure_telemetry();

    let (ns, queries): (&[usize], usize) = if smoke {
        (&[2_000], 50)
    } else {
        (&[1_000, 10_000, 50_000], 200)
    };

    let mut output = ExperimentOutput::new("quant", &args);
    println!("\n=== Quantized artifacts vs f64 scan (d = 64, k = {K}) ===");

    let mut rows = Vec::new();
    for &n in ns {
        let artifact = clustered_artifact(n, args.seed);
        let f64_bytes = written_bytes(&artifact, &format!("f64-{n}.bin"));
        for quant in [QuantMode::Int8, QuantMode::F16] {
            let cell = run_cell(&artifact, quant, f64_bytes, queries);
            if quant == QuantMode::Int8 {
                // The headline acceptance contract: int8-primary files are
                // at least 3.5x smaller than the f64-only baseline.
                assert!(
                    cell.ratio >= 3.5,
                    "int8 artifact only {:.2}x smaller than f64 at n = {n}",
                    cell.ratio
                );
            }
            rows.push(vec![
                format!("{n}"),
                quant.to_string(),
                format!("{f64_bytes}"),
                format!("{}", cell.bytes),
                format!("{:.2}x", cell.ratio),
                format!("{:.0}", cell.f64_us),
                format!("{:.0}", cell.quant_us),
                format!("{:.3}n", cell.shortlist_frac),
                fmt4(cell.recall10),
            ]);
            output.push(serde_json::json!({
                "n": n,
                "quant": quant.to_string(),
                "f64_artifact_bytes": f64_bytes,
                "quant_artifact_bytes": cell.bytes,
                "size_ratio": cell.ratio,
                "f64_scan_us_per_query": cell.f64_us,
                "quant_scan_us_per_query": cell.quant_us,
                "shortlist_fraction_of_n": cell.shortlist_frac,
                "quant_ann_recall_at_10": cell.recall10,
                "bit_identical": true,
            }));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "n",
                "Quant",
                "f64 B",
                "Quant B",
                "Smaller",
                "f64 us",
                "Quant us",
                "Shortlist",
                "R@10 (q-ANN)",
            ],
            &rows
        )
    );
    println!("every quantized exact scan was bit-identical to its f64 counterpart");
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
