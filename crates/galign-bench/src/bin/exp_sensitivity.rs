//! Hyper-parameter sensitivity beyond Figs. 6–7 — the knobs §VII-E says it
//! omits for space: the loss balance γ (Eq. 10), the stability threshold λ
//! (Eq. 13), and the accumulation constant β (Eq. 14), swept one-at-a-time
//! around the paper's defaults (γ = 0.8, λ = 0.94, β = 1.1) on a noisy
//! email-copy task.
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_sensitivity`.

use galign::GAlignConfig;
use galign_bench::harness::{fmt4, mean, render_table, CommonArgs, ExperimentOutput};
use galign_bench::runner::galign_config;
use galign_datasets::catalog::{email, noisy_task};
use galign_metrics::evaluate;

fn run(cfg: &GAlignConfig, args: &CommonArgs) -> f64 {
    let s1s: Vec<f64> = (0..args.runs)
        .map(|r| {
            let base = email(args.scale, args.seed + r as u64);
            let task = noisy_task(&base, "email", 0.1, 0.1, args.seed + 7 + r as u64);
            let result = galign::GAlign::new(cfg.clone())
                .align(&task.source, &task.target, args.seed + 100 * r as u64)
                .expect("sweep tasks have consistent shapes");
            evaluate(&result.alignment, task.truth.pairs(), &[1])
                .success(1)
                .unwrap_or(0.0)
        })
        .collect();
    mean(&s1s)
}

fn main() {
    let args = CommonArgs::parse();
    let base = galign_config(Default::default());
    let mut output = ExperimentOutput::new("sensitivity", &args);

    println!(
        "\n=== Hyper-parameter sensitivity on noisy email copy (scale {}) ===",
        args.scale
    );

    let mut rows = Vec::new();
    for gamma in [0.0, 0.2, 0.5, 0.8, 1.0] {
        let mut cfg = base.clone();
        cfg.embedding.gamma = gamma;
        let s1 = run(&cfg, &args);
        rows.push(vec![format!("gamma = {gamma}"), fmt4(s1)]);
        output.push(serde_json::json!({"param": "gamma", "value": gamma, "success1": s1}));
    }
    for lambda in [0.5, 0.8, 0.94, 0.99] {
        let mut cfg = base.clone();
        cfg.refine.lambda = lambda;
        let s1 = run(&cfg, &args);
        rows.push(vec![format!("lambda = {lambda}"), fmt4(s1)]);
        output.push(serde_json::json!({"param": "lambda", "value": lambda, "success1": s1}));
    }
    for beta in [1.05, 1.1, 1.5, 2.0] {
        let mut cfg = base.clone();
        cfg.refine.beta = beta;
        let s1 = run(&cfg, &args);
        rows.push(vec![format!("beta = {beta}"), fmt4(s1)]);
        output.push(serde_json::json!({"param": "beta", "value": beta, "success1": s1}));
    }
    println!("{}", render_table(&["Setting", "Success@1"], &rows));
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
