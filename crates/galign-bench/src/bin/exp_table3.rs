//! Table III — end-to-end comparison of GAlign against the five baselines
//! on the three real-dataset stand-ins (MAP, AUC, Success@1, Success@10,
//! wall-clock time).
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_table3`.
//! Paper values are recorded side-by-side in EXPERIMENTS.md.

use galign_bench::harness::{fmt4, render_table, CommonArgs, ExperimentOutput};
use galign_bench::runner::{average_runs, run_method, Method};
use galign_datasets::{allmovie_imdb, douban, flickr_myspace, AlignmentTask};

type TaskFn = fn(f64, u64) -> AlignmentTask;

fn main() {
    let args = CommonArgs::parse();
    let datasets: [(&str, TaskFn); 3] = [
        ("Douban Online-Offline", douban),
        ("Flickr-Myspace", flickr_myspace),
        ("Allmovie-Imdb", allmovie_imdb),
    ];

    let mut output = ExperimentOutput::new("table3", &args);
    for (dataset_name, make_task) in &datasets {
        println!("\n=== {dataset_name} (scale {}) ===", args.scale);
        let mut rows = Vec::new();
        for method in Method::table3() {
            let runs: Vec<_> = (0..args.runs)
                .map(|r| {
                    let task = make_task(args.scale, args.seed + r as u64);
                    run_method(method, &task, args.seed + 100 * r as u64)
                })
                .collect();
            let (map, auc, s1, s10, secs) = average_runs(&runs);
            rows.push(vec![
                method.name().to_string(),
                fmt4(map),
                fmt4(auc),
                fmt4(s1),
                fmt4(s10),
                format!("{secs:.1}"),
            ]);
            output.push(serde_json::json!({
                "dataset": dataset_name,
                "method": method.name(),
                "map": map,
                "auc": auc,
                "success1": s1,
                "success10": s10,
                "time_secs": secs,
            }));
        }
        println!(
            "{}",
            render_table(
                &["Method", "MAP", "AUC", "Success@1", "Success@10", "Time(s)"],
                &rows
            )
        );
    }
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
