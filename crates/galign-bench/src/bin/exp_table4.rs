//! Table IV — ablation study: GAlign vs GAlign-1 (no augmentation),
//! GAlign-2 (no refinement) and GAlign-3 (last layer only), on the Douban
//! and Allmovie-Imdb stand-ins (MAP, Success@1).
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_table4`.

use galign::AblationVariant;
use galign_bench::harness::{fmt4, render_table, CommonArgs, ExperimentOutput};
use galign_bench::runner::{average_runs, run_method, Method};
use galign_datasets::{allmovie_imdb, douban, AlignmentTask};

type TaskFn = fn(f64, u64) -> AlignmentTask;

fn main() {
    let args = CommonArgs::parse();
    let datasets: [(&str, TaskFn); 2] = [("Douban", douban), ("Allmovie-Imdb", allmovie_imdb)];
    let variants = [
        Method::GAlign,
        Method::GAlignVariant(AblationVariant::NoAugmentation),
        Method::GAlignVariant(AblationVariant::NoRefinement),
        Method::GAlignVariant(AblationVariant::LastLayerOnly),
    ];

    let mut output = ExperimentOutput::new("table4", &args);
    for (dataset_name, make_task) in &datasets {
        println!("\n=== {dataset_name} (scale {}) ===", args.scale);
        let mut rows = Vec::new();
        for method in variants {
            let runs: Vec<_> = (0..args.runs)
                .map(|r| {
                    let task = make_task(args.scale, args.seed + r as u64);
                    run_method(method, &task, args.seed + 100 * r as u64)
                })
                .collect();
            let (map, _auc, s1, _s10, _secs) = average_runs(&runs);
            rows.push(vec![method.name().to_string(), fmt4(map), fmt4(s1)]);
            output.push(serde_json::json!({
                "dataset": dataset_name,
                "method": method.name(),
                "map": map,
                "success1": s1,
            }));
        }
        println!("{}", render_table(&["Variant", "MAP", "Success@1"], &rows));
    }
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
