//! Table V — layer-importance-weight sweep: Success@1 of GAlign on
//! Allmovie-Imdb for the paper's nine θ = (θ⁰, θ¹, θ²) combinations.
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_table5`.

use galign_bench::harness::{fmt4, mean, render_table, CommonArgs, ExperimentOutput};
use galign_bench::runner::run_galign_with_selection;
use galign_datasets::allmovie_imdb;

fn main() {
    let args = CommonArgs::parse();
    // The nine weight rows of Table V (θ⁰, θ¹, θ²).
    let thetas: [[f64; 3]; 9] = [
        [0.33, 0.33, 0.33],
        [0.33, 0.50, 0.17],
        [0.33, 0.17, 0.50],
        [0.00, 0.67, 0.33],
        [0.67, 0.00, 0.33],
        [0.33, 0.67, 0.00],
        [0.00, 1.00, 0.00],
        [0.00, 0.00, 1.00],
        [1.00, 0.00, 0.00],
    ];

    let mut output = ExperimentOutput::new("table5", &args);
    let mut rows = Vec::new();
    println!(
        "\n=== Table V: layer weights on Allmovie-Imdb (scale {}) ===",
        args.scale
    );
    for theta in thetas {
        let s1s: Vec<f64> = (0..args.runs)
            .map(|r| {
                let task = allmovie_imdb(args.scale, args.seed + r as u64);
                let run = run_galign_with_selection(
                    &task,
                    vec![100, 100],
                    Some(theta.to_vec()),
                    args.seed + 100 * r as u64,
                );
                run.report.success(1).unwrap_or(0.0)
            })
            .collect();
        let s1 = mean(&s1s);
        rows.push(vec![
            format!("{:.2}", theta[0]),
            format!("{:.2}", theta[1]),
            format!("{:.2}", theta[2]),
            fmt4(s1),
        ]);
        output.push(serde_json::json!({
            "theta0": theta[0],
            "theta1": theta[1],
            "theta2": theta[2],
            "success1": s1,
        }));
    }
    println!(
        "{}",
        render_table(&["theta0", "theta1", "theta2", "Success@1"], &rows)
    );
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
