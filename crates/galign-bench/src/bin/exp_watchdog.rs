//! Checkpoint overhead of the training watchdog — what the robustness
//! insurance costs when nothing goes wrong. Compares watchdog-off against
//! watchdog-on at several `checkpoint_every` settings on a noisy
//! email-copy task, reporting Success@1 (must be unchanged: checkpoints
//! are passive on healthy runs) and wall-clock per alignment.
//!
//! Regenerate with `cargo run --release -p galign-bench --bin exp_watchdog`.

use galign::GAlignConfig;
use galign_bench::harness::{fmt4, mean, render_table, CommonArgs, ExperimentOutput};
use galign_bench::runner::galign_config;
use galign_datasets::catalog::{email, noisy_task};
use galign_gcn::WatchdogConfig;
use galign_metrics::evaluate;
use std::time::Instant;

/// Mean Success@1 and mean wall-clock seconds over `args.runs` alignments.
fn run(cfg: &GAlignConfig, args: &CommonArgs) -> (f64, f64) {
    let mut s1s = Vec::new();
    let mut secs = Vec::new();
    for r in 0..args.runs {
        let base = email(args.scale, args.seed + r as u64);
        let task = noisy_task(&base, "email", 0.1, 0.1, args.seed + 7 + r as u64);
        let start = Instant::now();
        let result = galign::GAlign::new(cfg.clone())
            .align(&task.source, &task.target, args.seed + 100 * r as u64)
            .expect("sweep tasks have consistent shapes");
        secs.push(start.elapsed().as_secs_f64());
        s1s.push(
            evaluate(&result.alignment, task.truth.pairs(), &[1])
                .success(1)
                .unwrap_or(0.0),
        );
    }
    (mean(&s1s), mean(&secs))
}

fn main() {
    let args = CommonArgs::parse();
    let base = galign_config(Default::default());
    let mut output = ExperimentOutput::new("watchdog", &args);

    println!(
        "\n=== Watchdog checkpoint overhead on noisy email copy (scale {}) ===",
        args.scale
    );

    let mut settings: Vec<(String, GAlignConfig)> = Vec::new();
    let mut off = base.clone();
    off.embedding.watchdog = None;
    settings.push(("watchdog off".to_string(), off));
    for every in [1usize, 5, 10] {
        let mut cfg = base.clone();
        cfg.embedding.watchdog = Some(WatchdogConfig {
            checkpoint_every: every,
            ..Default::default()
        });
        settings.push((format!("checkpoint_every = {every}"), cfg));
    }

    let mut rows = Vec::new();
    let mut baseline_secs = None;
    for (label, cfg) in &settings {
        let (s1, secs) = run(cfg, &args);
        let baseline = *baseline_secs.get_or_insert(secs);
        let overhead = if baseline > 0.0 {
            (secs / baseline - 1.0) * 100.0
        } else {
            0.0
        };
        rows.push(vec![
            label.clone(),
            fmt4(s1),
            format!("{secs:.3}"),
            format!("{overhead:+.1}%"),
        ]);
        output.push(serde_json::json!({
            "setting": label,
            "success1": s1,
            "seconds": secs,
            "overhead_pct": overhead,
        }));
    }
    println!(
        "{}",
        render_table(
            &["Setting", "Success@1", "Seconds", "vs. watchdog off"],
            &rows
        )
    );
    let path = output.write(&args.out_dir).expect("write results");
    println!("results written to {}", path.display());
}
