//! Shared infrastructure of the `exp_*` experiment binaries: CLI parsing,
//! result aggregation, table rendering and JSON persistence.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Arguments shared by every experiment binary.
///
/// Parsed from `--scale`, `--runs`, `--seed`, `--out`; unknown flags abort
/// with a usage message. `--scale 1 --runs 50` reproduces the paper's full
/// setting (hours of CPU time); the defaults give laptop-scale runs whose
/// *shape* matches the paper.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Dataset size multiplier (paper = 1.0).
    pub scale: f64,
    /// Repetitions averaged per cell (paper = 50).
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
    /// Silence stderr (`--quiet`).
    pub quiet: bool,
    /// Debug-level stderr (`--verbose`/`-v`).
    pub verbose: bool,
    /// Stream JSONL telemetry to this path (`--metrics-out`).
    pub metrics_out: Option<PathBuf>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            scale: 0.2,
            runs: 2,
            seed: 2020,
            out_dir: PathBuf::from("results"),
            quiet: false,
            verbose: false,
            metrics_out: None,
        }
    }
}

impl CommonArgs {
    /// Parses CLI arguments (skipping `argv[0]`) and configures the global
    /// telemetry from the verbosity/metrics flags.
    ///
    /// # Panics
    /// Exits the process with a usage message on malformed input.
    pub fn parse() -> Self {
        let args = Self::parse_from(std::env::args().skip(1));
        args.configure_telemetry();
        args
    }

    /// Applies `quiet`/`verbose`/`metrics_out` to the global telemetry.
    pub fn configure_telemetry(&self) {
        let level = if self.quiet {
            galign_telemetry::Level::Quiet
        } else if self.verbose {
            galign_telemetry::Level::Debug
        } else {
            galign_telemetry::Level::Info
        };
        galign_telemetry::set_stderr_level(level);
        galign_telemetry::set_metrics_enabled(true);
        if let Some(path) = &self.metrics_out {
            if let Err(e) = galign_telemetry::attach_jsonl_path(path) {
                usage(&format!(
                    "cannot open --metrics-out {}: {e}",
                    path.display()
                ));
            }
        }
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(args: impl Iterator<Item = String>) -> Self {
        let mut out = CommonArgs::default();
        let mut it = args.peekable();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| usage(&format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--scale" => out.scale = parse_num(&value("--scale")),
                "--runs" => out.runs = parse_num::<f64>(&value("--runs")) as usize,
                "--seed" => out.seed = parse_num::<f64>(&value("--seed")) as u64,
                "--out" => out.out_dir = PathBuf::from(value("--out")),
                "--metrics-out" => out.metrics_out = Some(PathBuf::from(value("--metrics-out"))),
                "--quiet" | "-q" => out.quiet = true,
                "--verbose" | "-v" => out.verbose = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        out
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("cannot parse number from '{s}'")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: exp_* [--scale F] [--runs N] [--seed S] [--out DIR]\n\
         \x20      [--metrics-out PATH] [-v|--verbose] [-q|--quiet]\n\
         defaults: --scale 0.2 --runs 2 --seed 2020 --out results\n\
         (--scale 1 --runs 50 reproduces the paper's full setting)"
    );
    std::process::exit(2);
}

/// Accumulated output of one experiment, serialised to
/// `<out>/<experiment>.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentOutput {
    /// Experiment id, e.g. `"table3"`.
    pub experiment: String,
    /// CLI scale in effect.
    pub scale: f64,
    /// CLI run count in effect.
    pub runs: usize,
    /// One JSON object per result row.
    pub rows: Vec<serde_json::Value>,
}

impl ExperimentOutput {
    /// Creates an empty output.
    pub fn new(experiment: &str, args: &CommonArgs) -> Self {
        ExperimentOutput {
            experiment: experiment.to_string(),
            scale: args.scale,
            runs: args.runs,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: serde_json::Value) {
        self.rows.push(row);
    }

    /// Writes `<dir>/<experiment>.json`. When metric collection is on, a
    /// `"telemetry"` key with the counter/gauge/histogram snapshot is
    /// embedded in the result document, and any attached JSONL sink is
    /// flushed.
    ///
    /// # Errors
    /// IO/serialisation failures.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        let mut doc = serde_json::to_value(self)?;
        if galign_telemetry::metrics_enabled() {
            let snapshot: serde_json::Value =
                serde_json::from_str(&galign_telemetry::snapshot_json())?;
            if let Some(obj) = doc.as_object_mut() {
                obj.insert("telemetry".to_string(), snapshot);
            }
        }
        galign_telemetry::flush();
        std::fs::write(&path, serde_json::to_string_pretty(&doc)?)?;
        Ok(path)
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Renders an aligned ASCII table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(4)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&line(headers.iter().map(|h| h.to_string()).collect()));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row.clone()));
        out.push('\n');
    }
    out
}

/// Formats a metric to 4 decimal places (the paper's table precision).
pub fn fmt4(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_flags() {
        let d = CommonArgs::parse_from(std::iter::empty());
        assert_eq!(d.scale, 0.2);
        assert_eq!(d.runs, 2);
        let args = [
            "--scale", "0.5", "--runs", "7", "--seed", "9", "--out", "/tmp/x",
        ]
        .iter()
        .map(|s| s.to_string());
        let p = CommonArgs::parse_from(args);
        assert_eq!(p.scale, 0.5);
        assert_eq!(p.runs, 7);
        assert_eq!(p.seed, 9);
        assert_eq!(p.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn output_roundtrip() {
        let args = CommonArgs::default();
        let mut out = ExperimentOutput::new("unit-test", &args);
        out.push(serde_json::json!({"metric": 0.5}));
        let dir = std::env::temp_dir().join("galign-bench-test");
        let path = out.write(&dir).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("unit-test"));
        assert!(text.contains("0.5"));
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["Method", "MAP"],
            &[
                vec!["GAlign".into(), "0.85".into()],
                vec!["IsoRank-long-name".into(), "0.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[3].starts_with("IsoRank-long-name"));
    }

    #[test]
    fn mean_and_fmt() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(fmt4(0.123456), "0.1235");
    }
}
