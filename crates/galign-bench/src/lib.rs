//! Shared harness code for the experiment binaries that regenerate every
//! table and figure of the paper's evaluation (§VII), plus Criterion
//! micro-benchmarks.
//!
//! Each `exp_*` binary synthesises its datasets, runs the relevant aligners,
//! prints a table shaped like the paper's, and writes machine-readable JSON
//! under `results/`.

pub mod harness;
pub mod runner;

pub use harness::{CommonArgs, ExperimentOutput};
pub use runner::{run_method, Method};
