//! Uniform execution of every aligner over an [`AlignmentTask`], with the
//! paper's supervision protocol (§VII-A): FINAL/IsoRank get a prior built
//! from 10 % anchor seeds, PALE/CENALP get the seeds directly, REGAL and
//! GAlign run unsupervised.

use galign::alignment::LayerSelection;
use galign::{AblationVariant, GAlign, GAlignConfig};
use galign_baselines::skipgram::SkipGramConfig;
use galign_baselines::{AlignInput, Aligner, Cenalp, CenalpConfig, Final, IsoRank, Pale, Regal};
use galign_datasets::AlignmentTask;
use galign_gcn::TrainConfig;
use galign_matrix::rng::SeededRng;
use galign_metrics::{evaluate, EvalReport, ScoreProvider};

/// The methods of Table III (plus GAlign's ablation variants for Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The full GAlign model.
    GAlign,
    /// GAlign-1/2/3 of the ablation study.
    GAlignVariant(AblationVariant),
    /// CENALP (supervised: 10 % seeds).
    Cenalp,
    /// PALE (supervised: 10 % seeds).
    Pale,
    /// REGAL (unsupervised).
    Regal,
    /// IsoRank (prior from 10 % seeds).
    IsoRank,
    /// FINAL (prior from 10 % seeds).
    Final,
}

impl Method {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::GAlign => "GAlign",
            Method::GAlignVariant(AblationVariant::Full) => "GAlign",
            Method::GAlignVariant(AblationVariant::NoAugmentation) => "GAlign-1",
            Method::GAlignVariant(AblationVariant::NoRefinement) => "GAlign-2",
            Method::GAlignVariant(AblationVariant::LastLayerOnly) => "GAlign-3",
            Method::Cenalp => "CENALP",
            Method::Pale => "PALE",
            Method::Regal => "REGAL",
            Method::IsoRank => "IsoRank",
            Method::Final => "FINAL",
        }
    }

    /// The six columns of Table III, in the paper's order.
    pub fn table3() -> Vec<Method> {
        vec![
            Method::GAlign,
            Method::Cenalp,
            Method::Pale,
            Method::Regal,
            Method::IsoRank,
            Method::Final,
        ]
    }

    /// The attribute-aware subset compared in Fig. 4.
    pub fn attribute_aware() -> Vec<Method> {
        vec![Method::GAlign, Method::Regal, Method::Final, Method::Cenalp]
    }
}

/// One evaluated run.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Metrics against the task's ground truth.
    pub report: EvalReport,
    /// Wall-clock seconds of the alignment itself (excluding evaluation).
    pub secs: f64,
}

/// GAlign configuration scaled for harness runs: the paper's structure
/// (k = 2, γ = 0.8, λ = 0.94, β = 1.1, uniform θ) with an embedding
/// dimension and iteration counts sized for CPU runs.
pub fn galign_config(variant: AblationVariant) -> GAlignConfig {
    let train = TrainConfig::default();
    GAlignConfig {
        embedding: galign::embedding::EmbeddingConfig {
            layer_dims: vec![100, 100],
            epochs: 20,
            learning_rate: train.learning_rate,
            gamma: train.gamma,
            adaptivity_threshold: train.adaptivity_threshold,
            num_augments: 1,
            p_structure: train.p_structure,
            p_attribute: train.p_attribute,
            activation: train.activation,
            patience: train.patience,
            watchdog: train.watchdog,
        },
        theta: None,
        refine: galign::refine::RefineConfig {
            iterations: 5,
            ..Default::default()
        },
        variant,
    }
}

/// CENALP configuration sized for harness runs (the paper's CENALP is by
/// far the slowest method; ours is too, relatively).
fn cenalp_config() -> CenalpConfig {
    CenalpConfig {
        rounds: 2,
        walks_per_node: 3,
        walk_length: 8,
        embedding: SkipGramConfig {
            dim: 48,
            epochs: 2,
            ..SkipGramConfig::default()
        },
        ..CenalpConfig::default()
    }
}

/// Draws the 10 % supervision split (seeded, disjoint from nothing — the
/// paper evaluates on the full ground truth).
pub fn supervision_split(task: &AlignmentTask, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = SeededRng::new(seed ^ 0x5EED);
    let order = rng.permutation(task.truth.len());
    let (train, _) = task.truth.split(0.1, &order);
    train.pairs().to_vec()
}

/// Runs one method on one task and evaluates it on the full ground truth
/// with Success@{1,10}, MAP and AUC.
pub fn run_method(method: Method, task: &AlignmentTask, seed: u64) -> MethodRun {
    run_method_with(method, task, seed, &galign_config(variant_of(method)))
}

fn variant_of(method: Method) -> AblationVariant {
    match method {
        Method::GAlignVariant(v) => v,
        _ => AblationVariant::Full,
    }
}

/// Like [`run_method`] but with an explicit GAlign configuration (used by
/// the hyper-parameter sweeps of Table V / Figs. 6–7).
pub fn run_method_with(
    method: Method,
    task: &AlignmentTask,
    seed: u64,
    galign_cfg: &GAlignConfig,
) -> MethodRun {
    let qs = &[1usize, 10];
    let sp = galign_telemetry::span!("method", name = method.name(), seed = seed);
    match method {
        Method::GAlign | Method::GAlignVariant(_) => {
            let result = GAlign::new(galign_cfg.clone())
                .align(&task.source, &task.target, seed)
                .expect("harness tasks have consistent shapes");
            let secs = sp.finish();
            MethodRun {
                report: evaluate(&result.alignment, task.truth.pairs(), qs),
                secs,
            }
        }
        _ => {
            let seeds = supervision_split(task, seed);
            let input = AlignInput {
                source: &task.source,
                target: &task.target,
                seeds: &seeds,
                seed,
            };
            let scores: Box<dyn ScoreProvider> = match method {
                Method::Cenalp => Box::new(Cenalp::new(cenalp_config()).align_scores(&input)),
                Method::Pale => Box::new(Pale::default().align_scores(&input)),
                Method::Regal => {
                    let unsupervised = AlignInput {
                        seeds: &[],
                        ..input
                    };
                    Box::new(Regal::default().align_scores(&unsupervised))
                }
                Method::IsoRank => Box::new(IsoRank::default().align_scores(&input)),
                Method::Final => Box::new(Final::default().align_scores(&input)),
                Method::GAlign | Method::GAlignVariant(_) => unreachable!("handled above"),
            };
            let secs = sp.finish();
            MethodRun {
                report: evaluate(scores.as_ref(), task.truth.pairs(), qs),
                secs,
            }
        }
    }
}

/// Averages metric reports across runs.
pub fn average_runs(runs: &[MethodRun]) -> (f64, f64, f64, f64, f64) {
    let n = runs.len().max(1) as f64;
    let mut map = 0.0;
    let mut auc = 0.0;
    let mut s1 = 0.0;
    let mut s10 = 0.0;
    let mut secs = 0.0;
    for r in runs {
        map += r.report.map;
        auc += r.report.auc;
        s1 += r.report.success(1).unwrap_or(0.0);
        s10 += r.report.success(10).unwrap_or(0.0);
        secs += r.secs;
    }
    (map / n, auc / n, s1 / n, s10 / n, secs / n)
}

/// Per-layer-selection GAlign run (Fig. 6 / Table V): trains with `k`
/// layers and evaluates with a specific θ.
pub fn run_galign_with_selection(
    task: &AlignmentTask,
    layer_dims: Vec<usize>,
    theta: Option<Vec<f64>>,
    seed: u64,
) -> MethodRun {
    let mut cfg = galign_config(AblationVariant::Full);
    cfg.embedding.layer_dims = layer_dims;
    cfg.theta = theta;
    run_method_with(Method::GAlign, task, seed, &cfg)
}

/// Builds a [`LayerSelection`] helper for sweep code.
pub fn selection_single(l: usize, k_incl: usize) -> LayerSelection {
    LayerSelection::single(l, k_incl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_datasets::synth::noisy_pair;
    use galign_graph::{generators, AttributedGraph};

    fn tiny_task() -> AlignmentTask {
        let mut rng = SeededRng::new(1);
        let edges = generators::barabasi_albert(&mut rng, 25, 3);
        let attrs = generators::binary_attributes(&mut rng, 25, 8, 2);
        let g = AttributedGraph::from_edges(25, &edges, attrs);
        noisy_pair("tiny", &g, 0.05, 0.05, &mut rng)
    }

    #[test]
    fn every_method_runs() {
        let task = tiny_task();
        for m in Method::table3() {
            let run = run_method(m, &task, 7);
            assert!(run.secs >= 0.0);
            assert!((0.0..=1.0).contains(&run.report.map), "{:?}", m);
        }
    }

    #[test]
    fn supervision_is_ten_percent() {
        let task = tiny_task();
        let seeds = supervision_split(&task, 1);
        assert_eq!(
            seeds.len(),
            (task.truth.len() as f64 * 0.1).round() as usize
        );
    }

    #[test]
    fn averaging() {
        let task = tiny_task();
        let r = run_method(Method::Regal, &task, 1);
        let (map, auc, s1, s10, secs) = average_runs(&[r.clone(), r.clone()]);
        assert_eq!(map, r.report.map);
        assert_eq!(auc, r.report.auc);
        assert_eq!(s1, r.report.success(1).unwrap());
        assert_eq!(s10, r.report.success(10).unwrap());
        assert!(secs > 0.0);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Method::GAlign.name(), "GAlign");
        assert_eq!(
            Method::GAlignVariant(AblationVariant::NoAugmentation).name(),
            "GAlign-1"
        );
        assert_eq!(Method::table3().len(), 6);
        assert_eq!(Method::attribute_aware().len(), 4);
    }
}
