//! Minimal `--flag value` parser shared by all subcommands.

use std::collections::{HashMap, HashSet};

/// Boolean switches (take no value), with their short aliases. A switch
/// with no short form repeats its long spelling.
const SWITCHES: &[(&str, &str)] = &[
    ("verbose", "-v"),
    ("quiet", "-q"),
    ("no-watchdog", "--no-watchdog"),
    ("no-hedge", "--no-hedge"),
    ("no-adaptive-hedge", "--no-adaptive-hedge"),
    ("keep-f64", "--keep-f64"),
];

/// Parsed flags: `--name value` pairs plus boolean switches.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: HashSet<String>,
}

/// Parses `--flag value` pairs and the boolean switches of [`SWITCHES`];
/// bare or repeated flags abort with a diagnostic.
pub fn parse_flags(args: &[String]) -> Flags {
    let mut values = HashMap::new();
    let mut switches = HashSet::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let known_switch = SWITCHES.iter().find(|(long, short)| {
            flag.as_str() == *short || flag.strip_prefix("--") == Some(*long)
        });
        if let Some((name, _)) = known_switch {
            if !switches.insert(name.to_string()) {
                die(&format!("--{name} given twice"));
            }
            continue;
        }
        let Some(name) = flag.strip_prefix("--") else {
            die(&format!("expected --flag, got '{flag}'"));
        };
        let Some(value) = it.next() else {
            die(&format!("--{name} needs a value"));
        };
        if values.insert(name.to_string(), value.clone()).is_some() {
            die(&format!("--{name} given twice"));
        }
    }
    Flags { values, switches }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

impl Flags {
    /// Whether a boolean switch (e.g. `verbose`, `quiet`) was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// Required string flag.
    pub fn required(&self, name: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| die(&format!("missing required flag --{name}")))
    }

    /// Optional string flag.
    pub fn optional(&self, name: &str) -> Option<String> {
        self.values.get(name).cloned()
    }

    /// Optional flag with default.
    pub fn or(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Optional numeric flag with default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.values.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("--{name}: cannot parse '{v}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> Flags {
        let args: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        parse_flags(&args)
    }

    #[test]
    fn lookup_variants() {
        let f = flags(&[("scale", "0.5"), ("out", "dir")]);
        assert_eq!(f.required("out"), "dir");
        assert_eq!(f.optional("missing"), None);
        assert_eq!(f.or("missing", "x"), "x");
        assert_eq!(f.num("scale", 1.0), 0.5);
        assert_eq!(f.num("seed", 7u64), 7);
        assert!(!f.has("verbose"));
    }

    #[test]
    fn switches_take_no_value() {
        let args: Vec<String> = ["--verbose", "--out", "dir", "-q"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args);
        assert!(f.has("verbose"));
        assert!(f.has("quiet"));
        assert_eq!(f.required("out"), "dir");
    }

    #[test]
    fn long_only_switch() {
        let args = vec!["--no-watchdog".to_string()];
        let f = parse_flags(&args);
        assert!(f.has("no-watchdog"));
        assert!(!f.has("verbose"));
    }
}
