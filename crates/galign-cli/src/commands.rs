//! Subcommand implementations.

use crate::args::Flags;
use galign::persist::save_model;
use galign::{GAlign, GAlignConfig, GAlignConfigBuilder, GAlignError};
use galign_baselines::{
    AlignInput, Aligner, Cenalp, DegreeMatch, Final, Ione, IsoRank, Pale, Regal,
};
use galign_datasets::synth::AlignmentTask;
use galign_graph::io::{read_anchors_json, read_graph_json, write_anchors_json, write_graph_json};
use galign_graph::AnchorLinks;
use galign_metrics::ScoreProvider;
use std::io;
use std::path::{Path, PathBuf};

type CmdResult = io::Result<()>;

/// Maps a pipeline error onto the CLI's `io::Result` plumbing, preserving
/// real IO errors and folding everything else into `InvalidInput`.
fn to_io(e: GAlignError) -> io::Error {
    match e {
        GAlignError::Io(io) => io,
        other => io::Error::new(io::ErrorKind::InvalidInput, other.to_string()),
    }
}

/// Parses an optional numeric flag, keeping the error on the CLI's
/// `io::Result` plumbing (unlike `Flags::num`, which aborts the process).
fn parse_num<T: std::str::FromStr>(flags: &Flags, name: &str) -> io::Result<Option<T>> {
    match flags.optional(name) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("--{name}: cannot parse '{v}'"),
            )
        }),
    }
}

/// Applies the shared training flags (`--epochs`, `--checkpoint-every`,
/// `--max-recoveries`, `--no-watchdog`) to a pipeline builder.
fn apply_training_flags(
    mut builder: GAlignConfigBuilder,
    flags: &Flags,
) -> io::Result<GAlignConfigBuilder> {
    if let Some(epochs) = parse_num::<usize>(flags, "epochs")? {
        builder = builder.epochs(epochs);
    }
    if let Some(every) = parse_num::<usize>(flags, "checkpoint-every")? {
        builder = builder.checkpoint_every(every);
    }
    if let Some(budget) = parse_num::<usize>(flags, "max-recoveries")? {
        builder = builder.max_recoveries(budget);
    }
    if flags.has("no-watchdog") {
        builder = builder.watchdog(None);
    }
    Ok(builder)
}

/// Surfaces watchdog activity of a finished run on stderr.
fn report_train_health(report: &galign_gcn::TrainReport) {
    match report.health {
        galign_gcn::TrainHealth::Healthy => {}
        galign_gcn::TrainHealth::Recovered => galign_telemetry::info!(
            "align",
            "watchdog recovered training {} time(s) ({} epoch(s) rolled back)",
            report.recoveries,
            report.rollback_epochs
        ),
        galign_gcn::TrainHealth::Diverged => galign_telemetry::info!(
            "align",
            "training DIVERGED after {} recovery attempt(s); result is the last good checkpoint — treat with suspicion",
            report.recoveries
        ),
    }
}

/// `galign generate`: synthesise a dataset stand-in and write
/// `source.json`, `target.json`, `truth.json` into `--out`.
pub fn generate(flags: &Flags) -> CmdResult {
    let dataset = flags.required("dataset");
    let scale: f64 = flags.num("scale", 0.2);
    let seed: u64 = flags.num("seed", 2020);
    let out = PathBuf::from(flags.or("out", "data"));
    std::fs::create_dir_all(&out)?;

    let task: AlignmentTask = match dataset.as_str() {
        "douban" => galign_datasets::douban(scale, seed),
        "flickr" | "flickr-myspace" => galign_datasets::flickr_myspace(scale, seed),
        "allmovie" | "allmovie-imdb" => galign_datasets::allmovie_imdb(scale, seed),
        "toy" => galign_datasets::toy::toy_movies(),
        "bn" | "econ" | "email" => {
            let base = match dataset.as_str() {
                "bn" => galign_datasets::bn(scale, seed),
                "econ" => galign_datasets::econ(scale, seed),
                _ => galign_datasets::email(scale, seed),
            };
            galign_datasets::catalog::noisy_task(&base, &dataset, 0.1, 0.1, seed + 1)
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown dataset '{other}'"),
            ))
        }
    };
    write_graph_json(&task.source, &out.join("source.json"))?;
    write_graph_json(&task.target, &out.join("target.json"))?;
    write_anchors_json(&task.truth, &out.join("truth.json"))?;
    println!("{}", task.summary());
    galign_telemetry::info!("generate", "written to {}", out.display());
    Ok(())
}

fn baseline_by_name(method: &str) -> io::Result<Box<dyn Aligner>> {
    Ok(match method {
        "regal" => Box::new(Regal::default()),
        "isorank" => Box::new(IsoRank::default()),
        "final" => Box::new(Final::default()),
        "pale" => Box::new(Pale::default()),
        "cenalp" => Box::new(Cenalp::default()),
        "ione" => Box::new(Ione::default()),
        "degree" => Box::new(DegreeMatch::default()),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown method '{other}'"),
            ))
        }
    })
}

fn export_topk_scores(provider: &dyn ScoreProvider, k: usize, path: &str) -> CmdResult {
    let rows: Vec<serde_json::Value> = (0..provider.num_sources())
        .map(|v| {
            let row = provider.score_row(v);
            let top = galign_matrix::dense::top_k_indices(&row, k);
            serde_json::json!({
                "source": v,
                "targets": top.iter().map(|&u| serde_json::json!({
                    "target": u, "score": row[u],
                })).collect::<Vec<_>>(),
            })
        })
        .collect();
    std::fs::write(path, serde_json::to_string(&rows)?)?;
    galign_telemetry::info!("align", "top-{k} score rows -> {path}");
    Ok(())
}

/// `galign align`: align two graphs, write predicted anchors, optionally
/// export top-k score rows and (for GAlign) the trained model.
pub fn align(flags: &Flags) -> CmdResult {
    let source = read_graph_json(Path::new(&flags.required("source")))?;
    let target = read_graph_json(Path::new(&flags.required("target")))?;
    let method = flags.or("method", "galign");
    let seed: u64 = flags.num("seed", 1);
    let out = PathBuf::from(flags.or("out", "anchors.json"));
    let seeds: Vec<(usize, usize)> = match flags.optional("seeds") {
        Some(p) => read_anchors_json(Path::new(&p))?.pairs().to_vec(),
        None => Vec::new(),
    };
    let top_k: usize = flags.num("top-k", 10);

    let sp = galign_telemetry::span!("align", method = method, seed = seed);
    let anchors: Vec<(usize, usize)>;
    if method == "galign" {
        // All pipeline knobs pass through the validating builder so a bad
        // flag combination surfaces here, once, as a CLI error.
        let builder = apply_training_flags(GAlignConfig::builder().fast(), flags)?;
        let config = builder.build().map_err(to_io)?;
        let result = GAlign::new(config)
            .align(&source, &target, seed)
            .map_err(to_io)?;
        report_train_health(&result.train_report);
        anchors = result.top1_anchors();
        if let Some(model_path) = flags.optional("save-model") {
            save_model(&result.model, Path::new(&model_path)).map_err(to_io)?;
            galign_telemetry::info!("align", "trained model -> {model_path}");
        }
        if let Some(scores_path) = flags.optional("scores") {
            export_topk_scores(&result.alignment, top_k, &scores_path)?;
        }
    } else {
        let input = AlignInput {
            source: &source,
            target: &target,
            seeds: &seeds,
            seed,
        };
        let scores = baseline_by_name(&method)?.align_scores(&input);
        anchors = galign::matching::top1(&scores);
        if let Some(scores_path) = flags.optional("scores") {
            export_topk_scores(&scores, top_k, &scores_path)?;
        }
    }
    let secs = sp.finish();

    write_anchors_json(&AnchorLinks::new(anchors.clone()), &out)?;
    galign_telemetry::info!(
        "align",
        "{} aligned {}x{} nodes in {:.1}s; {} anchors -> {}",
        method,
        source.node_count(),
        target.node_count(),
        secs,
        anchors.len(),
        out.display()
    );
    Ok(())
}

/// `galign evaluate`: exact-pair precision/recall/F1 of predicted anchors
/// against ground truth.
pub fn evaluate(flags: &Flags) -> CmdResult {
    let predicted = read_anchors_json(Path::new(&flags.required("anchors")))?;
    let truth = read_anchors_json(Path::new(&flags.required("truth")))?;
    let (p, r, f1) = galign::matching::pair_prf(predicted.pairs(), truth.pairs());
    println!(
        "exact-pair precision = {p:.4}, recall = {r:.4}, F1 = {f1:.4} \
         ({} predicted vs {} true anchors)",
        predicted.len(),
        truth.len()
    );
    Ok(())
}

/// `galign convert`: converts a whitespace edge list (SNAP /
/// network-repository format) plus an optional comma-separated attribute
/// file (one row per node) into the suite's graph JSON.
pub fn convert(flags: &Flags) -> CmdResult {
    let edges_path = flags.required("edges");
    let out = PathBuf::from(flags.or("out", "graph.json"));
    let text = std::fs::read_to_string(&edges_path)?;
    let edges = galign_graph::io::parse_edge_list(&text)?;
    let n = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);

    let graph = match flags.optional("attrs") {
        None => galign_graph::AttributedGraph::from_edges_featureless(n, &edges),
        Some(attrs_path) => {
            let rows: Vec<Vec<f64>> = std::fs::read_to_string(&attrs_path)?
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| {
                    l.split(',')
                        .map(|t| {
                            t.trim().parse::<f64>().map_err(|_| {
                                io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("bad attribute value '{t}'"),
                                )
                            })
                        })
                        .collect()
                })
                .collect::<io::Result<_>>()?;
            if rows.len() < n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} attribute rows for {n} nodes", rows.len()),
                ));
            }
            let attrs = galign_matrix::Dense::from_rows(&rows[..n])
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            galign_graph::AttributedGraph::from_edges(n, &edges, attrs)
        }
    };
    write_graph_json(&graph, &out)?;
    println!(
        "converted {} -> {} ({} nodes, {} edges, {} attrs)",
        edges_path,
        out.display(),
        graph.node_count(),
        graph.edge_count(),
        graph.attr_dim()
    );
    Ok(())
}

fn parse_theta(text: &str) -> io::Result<Vec<f64>> {
    text.split(',')
        .map(|t| {
            t.trim().parse::<f64>().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("--theta: cannot parse '{t}' (want comma-separated numbers)"),
                )
            })
        })
        .collect()
}

/// `galign export-artifact`: produce a binary serving artifact, either by
/// running the full pipeline on a graph pair or by migrating existing JSON
/// embedding dumps.
pub fn export_artifact(flags: &Flags) -> CmdResult {
    let out = PathBuf::from(flags.or("out", "artifact.bin"));
    let theta = match flags.optional("theta") {
        Some(t) => Some(parse_theta(&t)?),
        None => None,
    };
    // Validate --with-index before doing any (potentially long) work.
    let with_index = match flags.optional("with-index") {
        Some(b) => Some(parse_backend(&b)?),
        None => None,
    };

    // Migration mode: JSON embedding dumps in, binary artifact out.
    if let Some(s_emb) = flags.optional("source-embeddings") {
        let t_emb = flags.required("target-embeddings");
        let artifact = galign::artifact::migrate_embeddings_json(
            Path::new(&s_emb),
            Path::new(&t_emb),
            theta,
            &out,
        )
        .map_err(to_io)?;
        println!(
            "migrated {s_emb} + {t_emb} -> {} ({} layers, {}x{} nodes, {} bytes)",
            out.display(),
            artifact.theta.len(),
            artifact.source[0].rows(),
            artifact.target[0].rows(),
            std::fs::metadata(&out)?.len()
        );
        apply_quant_flag(flags, &out)?;
        if let Some(backend) = with_index {
            let (nodes, bytes) = embed_index(&out, &out, backend)?;
            println!("embedded {backend} index over {nodes} target nodes (+{bytes} bytes)");
        }
        return Ok(());
    }

    // Pipeline mode: align two graphs, export the result.
    let source = read_graph_json(Path::new(&flags.required("source")))?;
    let target = read_graph_json(Path::new(&flags.required("target")))?;
    let seed: u64 = flags.num("seed", 1);
    // Route `--theta` through the builder: a wrong-length vector is caught
    // here as a validation error instead of deep inside the pipeline.
    let mut builder = apply_training_flags(GAlignConfig::builder().fast(), flags)?;
    if theta.is_some() {
        builder = builder.theta(theta);
    }
    let config = builder.build().map_err(to_io)?;
    let sp = galign_telemetry::span!("export-artifact", seed = seed);
    let result = GAlign::new(config)
        .align(&source, &target, seed)
        .map_err(to_io)?;
    report_train_health(&result.train_report);
    galign::artifact::export_artifact(&result, &out).map_err(to_io)?;
    let secs = sp.finish();
    if let Some(anchors_path) = flags.optional("anchors") {
        write_anchors_json(
            &AnchorLinks::new(result.top1_anchors()),
            Path::new(&anchors_path),
        )?;
    }
    println!(
        "aligned {}x{} nodes in {secs:.1}s; artifact -> {} ({} bytes)",
        source.node_count(),
        target.node_count(),
        out.display(),
        std::fs::metadata(&out)?.len()
    );
    apply_quant_flag(flags, &out)?;
    if let Some(backend) = with_index {
        let (nodes, bytes) = embed_index(&out, &out, backend)?;
        println!("embedded {backend} index over {nodes} target nodes (+{bytes} bytes)");
    }
    Ok(())
}

/// Applies `--quant` (plus optional `--keep-f64`) to the artifact at
/// `out`, rewriting it in place. Runs *before* `--with-index` so the ANN
/// index is built over exactly the rows a quantized artifact serves.
fn apply_quant_flag(flags: &Flags, out: &Path) -> CmdResult {
    let Some(q) = flags.optional("quant") else {
        return Ok(());
    };
    let mode = parse_quant(&q)?;
    if mode == galign_serve::QuantMode::Off {
        return Ok(());
    }
    let keep_f64 = flags.has("keep-f64");
    let (before, after) = quantize_file(out, out, mode, keep_f64)?;
    println!(
        "quantized artifact ({mode}, f64 {}): {before} -> {after} bytes",
        if keep_f64 { "kept" } else { "replaced" }
    );
    Ok(())
}

/// Parses a `--quant`/`--mode` precision value (`off | int8 | f16`).
fn parse_quant(name: &str) -> io::Result<galign_serve::QuantMode> {
    galign_serve::QuantMode::from_name(name).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("quant mode must be 'off', 'int8' or 'f16', got '{name}'"),
        )
    })
}

/// Reads the artifact at `path`, attaches quantized panels in the given
/// encoding and writes the result to `out`. Without `keep_f64` the
/// quantized encoding becomes the file's *primary* row storage (the f64
/// blocks are dropped and rows are reconstructed deterministically at
/// load — the ≥3.5× size win); with it the panels ride along as a scan-
/// acceleration sidecar. Returns `(bytes_before, bytes_after)`.
fn quantize_file(
    path: &Path,
    out: &Path,
    mode: galign_serve::QuantMode,
    keep_f64: bool,
) -> io::Result<(u64, u64)> {
    let encoding = mode.panel_mode().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "quant mode must be 'int8' or 'f16' to quantize an artifact",
        )
    })?;
    let before = std::fs::metadata(path)?.len();
    let artifact = galign_serve::Artifact::read(path)?;
    artifact.with_quant(encoding, keep_f64)?.write(out)?;
    Ok((before, std::fs::metadata(out)?.len()))
}

/// `galign quantize-artifact`: attach int8/f16 panels to an existing
/// artifact. By default the quantized encoding replaces the f64 blocks in
/// the file; `--keep-f64` keeps them and adds the panels as a sidecar.
/// Served top-k results are bit-identical either way.
pub fn quantize_artifact(flags: &Flags) -> CmdResult {
    let artifact_path = flags.required("artifact");
    let out = PathBuf::from(flags.or("out", &artifact_path));
    let mode = parse_quant(&flags.or("mode", "int8"))?;
    let keep_f64 = flags.has("keep-f64");
    let sp = galign_telemetry::span!("quantize-artifact");
    let (before, after) = quantize_file(Path::new(&artifact_path), &out, mode, keep_f64)?;
    let secs = sp.finish();
    println!(
        "quantized {artifact_path} -> {} ({mode}, f64 {}) in {secs:.1}s: {before} -> {after} bytes ({:.2}x)",
        out.display(),
        if keep_f64 { "kept" } else { "replaced" },
        before as f64 / after as f64,
    );
    Ok(())
}

/// Parses a `--backend`/`--with-index` value into an ANN backend.
fn parse_backend(name: &str) -> io::Result<galign_serve::topk::Backend> {
    galign_serve::topk::Backend::from_name(name).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("backend must be 'hnsw' or 'ivf', got '{name}'"),
        )
    })
}

/// Reads the artifact at `path`, builds an ANN index over its target
/// embedding and writes the artifact back to `out` with the index
/// embedded (format v2; index-less artifacts stay v1 so old readers keep
/// working). Returns `(target_nodes, index_bytes)`.
fn embed_index(
    path: &Path,
    out: &Path,
    backend: galign_serve::topk::Backend,
) -> io::Result<(usize, usize)> {
    let artifact = galign_serve::Artifact::read(path)?;
    let mut index = galign_serve::TopkIndex::from_artifact(artifact.clone());
    index.build_ann(backend)?;
    let bytes = index.index_bytes().expect("index was just built");
    let size = bytes.len();
    artifact.with_index(bytes).write(out)?;
    Ok((index.target_nodes(), size))
}

/// `galign build-index`: embed an ANN index into an existing artifact so
/// `serve` answers `mode: ann|auto` queries sublinearly without a build
/// at startup.
pub fn build_index(flags: &Flags) -> CmdResult {
    let artifact_path = flags.required("artifact");
    let out = PathBuf::from(flags.or("out", &artifact_path));
    let backend = parse_backend(&flags.or("backend", "hnsw"))?;
    let sp = galign_telemetry::span!("build-index");
    let (nodes, bytes) = embed_index(Path::new(&artifact_path), &out, backend)?;
    let secs = sp.finish();
    println!(
        "built {backend} index over {nodes} target nodes in {secs:.1}s; \
         {artifact_path} -> {} (+{bytes} index bytes, format v2)",
        out.display()
    );
    Ok(())
}

/// `galign serve`: load a binary artifact and serve top-k alignment
/// queries over HTTP until shut down (SIGKILL or `POST /v1/admin/shutdown`).
pub fn serve(flags: &Flags) -> CmdResult {
    let artifact_path = flags.required("artifact");
    let addr = flags.or("addr", "127.0.0.1:8080");
    // Crash-safe load: a corrupt artifact is quarantined and the previous
    // generation (kept by the atomic writer) is served instead.
    let (artifact, recovered) =
        galign_serve::Artifact::read_with_fallback(Path::new(&artifact_path))?;
    if recovered {
        eprintln!(
            "warning: {artifact_path} was corrupt (quarantined as .corrupt); \
             serving the previous generation from {artifact_path}.prev"
        );
    }
    let mode = flags.or("mode", "auto");
    let default_mode = galign_serve::EngineMode::from_name(&mode).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("--mode must be 'exact', 'ann' or 'auto', got '{mode}'"),
        )
    })?;
    let quant = parse_quant(&flags.or("quant", "off"))?;
    let defaults = galign_serve::ServerConfig::default();
    let mut builder = galign_serve::ServerConfig::builder()
        .workers(flags.num("workers", defaults.workers))
        .default_mode(default_mode)
        .quant(quant)
        .cache_capacity(flags.num("cache-capacity", defaults.cache_capacity))
        .default_k(flags.num("default-k", defaults.default_k))
        .max_k(flags.num("max-k", defaults.max_k))
        .request_timeout(std::time::Duration::from_millis(flags.num(
            "request-timeout-ms",
            defaults.request_timeout.as_millis() as u64,
        )))
        .deadline(std::time::Duration::from_millis(
            flags.num("deadline-ms", defaults.deadline.as_millis() as u64),
        ))
        .queue_depth(flags.num("queue-depth", defaults.queue_depth))
        .retry_after_secs(flags.num("retry-after-secs", defaults.retry_after_secs))
        .flight_recorder_size(flags.num("flight-recorder-size", defaults.flight_recorder_size))
        .generation_poll(std::time::Duration::from_millis(flags.num(
            "generation-poll-ms",
            defaults.generation_poll.as_millis() as u64,
        )))
        .batch_window(std::time::Duration::from_micros(
            flags.num("batch-window-us", defaults.batch_window.as_micros() as u64),
        ))
        .batch_cap(flags.num("batch-cap", defaults.batch_cap))
        .max_connections(flags.num("max-connections", defaults.max_connections));
    if let Some(threshold) = parse_num::<usize>(flags, "ann-threshold")? {
        builder = builder.ann_threshold(threshold);
    }
    if let Some(path) = flags.optional("access-log") {
        builder = builder.access_log(path);
    }
    if let Some(path) = flags.optional("flight-dump") {
        builder = builder.flight_dump(path);
    }
    if let Some(path) = flags.optional("generation-pointer") {
        builder = builder.generation_pointer(path);
    }
    let cfg = builder.build();
    let index = galign_serve::TopkIndex::from_artifact(artifact);
    let nodes = index.source_nodes();
    let ann = index
        .ann_backend()
        .map_or_else(|| "none (exact only)".to_string(), |b| b.to_string());
    let quant_served = index
        .quant_available()
        .map_or_else(|| "none".to_string(), |m| m.to_string());
    let server = galign_serve::Server::bind(&addr, index, cfg)?;
    println!(
        "serving {artifact_path} on http://{} ({nodes} source nodes, mode {mode}, quant {quant} \
         (panels: {quant_served}), ann index: {ann}); \
         POST /v1/align/topk, POST /v2/align/topk, GET /healthz, GET /metrics, GET /v1/debug/requests",
        server.local_addr(),
    );
    server.run()
}

/// `galign shard-export`: split a serving artifact into contiguous
/// target-id range shards, one artifact file per shard, each carrying a
/// shard manifest tying it back to the parent.
pub fn shard_export(flags: &Flags) -> CmdResult {
    let artifact_path = flags.required("artifact");
    let num_shards = flags.num::<usize>("shards", 0);
    if num_shards == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "--shards must be a positive shard count",
        ));
    }
    let out_dir = PathBuf::from(flags.or("out-dir", "shards"));
    let replicas = match flags.optional("replicas") {
        Some(spec) => {
            let groups = galign_router::parse_replica_spec(&spec)?;
            if groups.len() != num_shards {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "--replicas lists {} shard groups but --shards is {num_shards}",
                        groups.len()
                    ),
                ));
            }
            Some(groups)
        }
        None => None,
    };
    let artifact = galign_serve::Artifact::read(Path::new(&artifact_path))?;
    let sp = galign_telemetry::span!("shard-export");
    let paths =
        galign::artifact::export_shards(&artifact, num_shards, replicas.as_deref(), &out_dir)
            .map_err(to_io)?;
    let secs = sp.finish();
    println!(
        "split {artifact_path} ({} target rows, checksum {:016x}) into {num_shards} shards in {secs:.1}s:",
        artifact.target_nodes(),
        artifact.target_checksum(),
    );
    for path in &paths {
        let shard = galign::artifact::load_shard(path).map_err(to_io)?;
        let m = shard.manifest.expect("export writes a manifest");
        println!(
            "  shard {}: targets [{}, {}) -> {}",
            m.shard_id,
            m.start,
            m.end,
            path.display()
        );
    }
    Ok(())
}

/// `galign route`: scatter-gather router over a shard fleet. Discovers
/// the topology by probing every replica's `/healthz`, then serves
/// merged top-k answers that are bit-identical to a single node holding
/// the full artifact.
pub fn route(flags: &Flags) -> CmdResult {
    use std::time::Duration;
    let spec = flags.required("shards");
    let addr = flags.or("addr", "127.0.0.1:8090");
    let groups = galign_router::parse_replica_spec(&spec)?;
    let defaults = galign_router::RouterConfig::default();
    // Hedging: --no-hedge disables the second request entirely;
    // --hedge-after-ms sets the static trip point, which observed hop
    // p99 replaces once enough samples accrue unless --no-adaptive-hedge.
    let hedge_after = if flags.has("no-hedge") {
        None
    } else {
        Some(Duration::from_millis(flags.num(
            "hedge-after-ms",
            defaults.hedge_after.map_or(50, |d| d.as_millis() as u64),
        )))
    };
    // --reprobe-interval-ms 0 turns the background heal loop off.
    let reprobe_ms = flags.num(
        "reprobe-interval-ms",
        defaults
            .reprobe_interval
            .map_or(0, |d| d.as_millis() as u64),
    );
    let cfg = galign_router::RouterConfig {
        workers: flags.num("workers", defaults.workers),
        default_k: flags.num("default-k", defaults.default_k),
        max_k: flags.num("max-k", defaults.max_k),
        queue_depth: flags.num("queue-depth", defaults.queue_depth),
        retry_after_secs: flags.num("retry-after-secs", defaults.retry_after_secs),
        request_timeout: Duration::from_millis(flags.num(
            "request-timeout-ms",
            defaults.request_timeout.as_millis() as u64,
        )),
        hedge_after,
        hedge_adaptive: !flags.has("no-adaptive-hedge"),
        hedge_budget_ratio: flags.num("hedge-budget-ratio", defaults.hedge_budget_ratio),
        breaker: galign_router::BreakerConfig {
            failure_threshold: flags.num("breaker-threshold", defaults.breaker.failure_threshold),
            cooldown: Duration::from_millis(flags.num(
                "breaker-cooldown-ms",
                defaults.breaker.cooldown.as_millis() as u64,
            )),
        },
        reprobe_interval: (reprobe_ms > 0).then(|| Duration::from_millis(reprobe_ms)),
        client: galign_serve::ClientConfig {
            max_retries: flags.num("hop-retries", defaults.client.max_retries),
            // A hop past --hop-timeout-ms counts as a replica failure:
            // it feeds that replica's circuit breaker alongside connect
            // and transport errors.
            io_timeout: Duration::from_millis(flags.num(
                "hop-timeout-ms",
                defaults.client.io_timeout.as_millis() as u64,
            )),
            ..defaults.client
        },
        ..defaults
    };
    let topology = galign_router::Topology::discover(&groups, &cfg.client)?;
    let num_shards = topology.shards.len();
    let targets = topology.parent_targets;
    let router = galign_router::Router::bind(&addr, topology, cfg)?;
    println!(
        "routing on http://{} ({num_shards} shards over {targets} target nodes); \
         POST /v1/align/topk, POST /v2/align/topk, GET /healthz, GET /metrics, \
         GET /v1/debug/requests",
        router.local_addr(),
    );
    router.run()
}

/// `galign info`: prints basic statistics of a graph file.
pub fn info(flags: &Flags) -> CmdResult {
    let g = read_graph_json(Path::new(&flags.required("graph")))?;
    println!(
        "nodes = {}, edges = {}, attributes = {}, avg degree = {:.2}",
        g.node_count(),
        g.edge_count(),
        g.attr_dim(),
        g.avg_degree()
    );
    let comps = galign_graph::components::connected_components(&g);
    let num = comps.iter().copied().max().map_or(0, |m| m + 1);
    println!(
        "connected components = {num}, largest = {} nodes",
        galign_graph::components::largest_component(&g).len()
    );
    Ok(())
}
