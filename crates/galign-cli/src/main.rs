//! `galign` — command-line network alignment.
//!
//! ```text
//! galign generate --dataset douban --scale 0.2 --seed 1 --out data/
//! galign align    --source data/source.json --target data/target.json \
//!                 --method galign --seed 1 --out anchors.json [--model model.json]
//! galign evaluate --anchors anchors.json --truth data/truth.json
//! galign info     --graph data/source.json
//! ```
//!
//! Graphs, anchors and models are the JSON formats of `galign-graph::io`
//! and `galign::persist`, so the CLI interoperates with everything the
//! library writes.

mod args;
mod commands;

fn main() {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| usage(""));
    let rest: Vec<String> = argv.collect();
    let result = match command.as_str() {
        "generate" => commands::generate(&args::parse_flags(&rest)),
        "align" => commands::align(&args::parse_flags(&rest)),
        "evaluate" => commands::evaluate(&args::parse_flags(&rest)),
        "convert" => commands::convert(&args::parse_flags(&rest)),
        "info" => commands::info(&args::parse_flags(&rest)),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command '{other}'")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "galign — unsupervised network alignment (GAlign, ICDE 2020)\n\n\
         commands:\n\
         \x20 generate --dataset <douban|flickr|allmovie|bn|econ|email|toy> [--scale F] [--seed N] [--out DIR]\n\
         \x20 align    --source G.json --target G.json [--method galign|regal|isorank|final|pale|cenalp|ione|degree]\n\
         \x20          [--seeds anchors.json] [--seed N] [--out anchors.json] [--scores scores.json]\n\
         \x20          [--save-model model.json] [--top-k K]\n\
         \x20 evaluate --anchors predicted.json --truth truth.json\n\
         \x20 convert  --edges edges.txt [--attrs attrs.csv] [--out graph.json]\n\
         \x20 info     --graph G.json"
    );
    std::process::exit(2);
}
