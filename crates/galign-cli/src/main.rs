//! `galign` — command-line network alignment.
//!
//! ```text
//! galign generate --dataset douban --scale 0.2 --seed 1 --out data/
//! galign align    --source data/source.json --target data/target.json \
//!                 --method galign --seed 1 --out anchors.json [--model model.json]
//! galign evaluate --anchors anchors.json --truth data/truth.json
//! galign info     --graph data/source.json
//! galign export-artifact --source data/source.json --target data/target.json --out artifact.bin
//! galign build-index --artifact artifact.bin --backend hnsw
//! galign quantize-artifact --artifact artifact.bin --mode int8
//! galign serve    --artifact artifact.bin --addr 127.0.0.1:8080 --workers 4 --mode auto --quant int8
//! ```
//!
//! Graphs, anchors and models are the JSON formats of `galign-graph::io`
//! and `galign::persist`, so the CLI interoperates with everything the
//! library writes.

mod args;
mod commands;

fn main() {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| usage(""));
    let rest: Vec<String> = argv.collect();
    if matches!(command.as_str(), "--help" | "-h" | "help") {
        usage("");
    }
    let flags = args::parse_flags(&rest);
    configure_telemetry(&flags);
    let result = match command.as_str() {
        "generate" => commands::generate(&flags),
        "align" => commands::align(&flags),
        "evaluate" => commands::evaluate(&flags),
        "convert" => commands::convert(&flags),
        "info" => commands::info(&flags),
        "export-artifact" => commands::export_artifact(&flags),
        "build-index" => commands::build_index(&flags),
        "quantize-artifact" => commands::quantize_artifact(&flags),
        "serve" => commands::serve(&flags),
        "shard-export" => commands::shard_export(&flags),
        "route" => commands::route(&flags),
        other => usage(&format!("unknown command '{other}'")),
    };
    galign_telemetry::shutdown();
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Applies the global telemetry flags: `--quiet/-q` silences stderr,
/// `--verbose/-v` raises it to debug, `--metrics-out PATH` streams JSONL
/// telemetry (and enables metric collection) to the given file.
fn configure_telemetry(flags: &args::Flags) {
    let level = if flags.has("quiet") {
        galign_telemetry::Level::Quiet
    } else if flags.has("verbose") {
        galign_telemetry::Level::Debug
    } else {
        galign_telemetry::Level::Info
    };
    galign_telemetry::set_stderr_level(level);
    if let Some(path) = flags.optional("metrics-out") {
        if let Err(e) = galign_telemetry::attach_jsonl_path(std::path::Path::new(&path)) {
            eprintln!("error: cannot open --metrics-out {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "galign — unsupervised network alignment (GAlign, ICDE 2020)\n\n\
         commands:\n\
         \x20 generate --dataset <douban|flickr|allmovie|bn|econ|email|toy> [--scale F] [--seed N] [--out DIR]\n\
         \x20 align    --source G.json --target G.json [--method galign|regal|isorank|final|pale|cenalp|ione|degree]\n\
         \x20          [--seeds anchors.json] [--seed N] [--out anchors.json] [--scores scores.json]\n\
         \x20          [--save-model model.json] [--top-k K] [--epochs N]\n\
         \x20          [--checkpoint-every N] [--max-recoveries N] [--no-watchdog]\n\
         \x20 evaluate --anchors predicted.json --truth truth.json\n\
         \x20 convert  --edges edges.txt [--attrs attrs.csv] [--out graph.json]\n\
         \x20 info     --graph G.json\n\
         \x20 export-artifact --source G.json --target G.json [--seed N] [--theta W,W,..]\n\
         \x20          [--anchors anchors.json] [--out artifact.bin] [--epochs N]\n\
         \x20          [--checkpoint-every N] [--max-recoveries N] [--no-watchdog] [--with-index hnsw|ivf]\n\
         \x20          [--quant int8|f16 [--keep-f64]]\n\
         \x20          | --source-embeddings E.json --target-embeddings E.json [--out artifact.bin]\n\
         \x20 build-index --artifact artifact.bin [--backend hnsw|ivf] [--out artifact.bin]\n\
         \x20 quantize-artifact --artifact artifact.bin [--mode int8|f16] [--keep-f64] [--out artifact.bin]\n\
         \x20 serve    --artifact artifact.bin [--addr HOST:PORT] [--workers N]\n\
         \x20          [--cache-capacity N] [--default-k K] [--max-k K] [--mode exact|ann|auto]\n\
         \x20          [--quant off|int8|f16]\n\
         \x20          [--ann-threshold N] [--request-timeout-ms MS] [--deadline-ms MS]\n\
         \x20          [--queue-depth N] [--retry-after-secs S] [--access-log PATH]\n\
         \x20          [--flight-recorder-size N] [--flight-dump PATH]\n\
         \x20          [--generation-pointer PATH] [--generation-poll-ms MS]\n\
         \x20          [--batch-window-us US] [--batch-cap N] [--max-connections N]\n\
         \x20 shard-export --artifact artifact.bin --shards N [--out-dir DIR]\n\
         \x20          [--replicas \"h:p,h:p;h:p\"]   (';' separates shards, ',' replicas)\n\
         \x20 route    --shards \"h:p,h:p;h:p\" [--addr HOST:PORT] [--workers N]\n\
         \x20          [--default-k K] [--max-k K] [--queue-depth N] [--retry-after-secs S]\n\
         \x20          [--request-timeout-ms MS] [--hop-retries N] [--hop-timeout-ms MS]\n\
         \x20          [--hedge-after-ms MS] [--no-hedge] [--no-adaptive-hedge]\n\
         \x20          [--hedge-budget-ratio R] [--breaker-threshold N]\n\
         \x20          [--breaker-cooldown-ms MS] [--reprobe-interval-ms MS]\n\n\
         sharded serving:\n\
         \x20 shard-export splits an artifact into contiguous target-id ranges (one manifest-\n\
         \x20 carrying artifact per shard); serve each shard (replicate freely), then route\n\
         \x20 fans top-k out to one healthy replica per shard and merges bit-identically to a\n\
         \x20 single full-artifact node. A shard with no healthy replica degrades loudly:\n\
         \x20 'partial': true in answers, degraded on /healthz. serve --generation-pointer\n\
         \x20 watches a file naming the current artifact and hot-swaps without dropping requests.\n\n\
         robustness:\n\
         \x20 training runs under a divergence watchdog (checkpoint/rollback + LR backoff);\n\
         \x20 --no-watchdog opts out. serve sheds load past --queue-depth with 503 + Retry-After\n\
         \x20 and falls back to <artifact>.prev when the artifact file is corrupt.\n\
         \x20 route wraps every replica in a circuit breaker (a hop failing or exceeding\n\
         \x20 --hop-timeout-ms counts against it; --breaker-threshold straight failures trip\n\
         \x20 it, a background probe every --reprobe-interval-ms heals it), hedges slow\n\
         \x20 shard hops after --hedge-after-ms (observed p99 once warm; --no-adaptive-hedge\n\
         \x20 pins the static value; spend capped at --hedge-budget-ratio of traffic), and\n\
         \x20 stamps x-galign-deadline-ms on every hop so doomed shard work is shed there.\n\n\
         observability:\n\
         \x20 every request carries an x-galign-trace-id (inbound header honored, echoed in\n\
         \x20 the response); GET /metrics?format=prometheus exposes Prometheus text format;\n\
         \x20 GET /v1/debug/requests dumps the in-memory flight recorder (last requests +\n\
         \x20 slowest, frozen while /healthz reports degraded). --access-log writes one\n\
         \x20 JSONL line per request; --flight-dump writes the recorder on shutdown.\n\n\
         batched serving:\n\
         \x20 POST /v2/align/topk takes {{\"queries\": [...]}} with per-query k/theta/mode and\n\
         \x20 answers each slot independently. Concurrent queries coalesce for up to\n\
         \x20 --batch-window-us (or --batch-cap jobs) into one blocked GEMM, bit-identical\n\
         \x20 to sequential scoring; /v1 rides the same path as a batch of one.\n\n\
         retrieval engines:\n\
         \x20 serve answers exactly by default; an embedded ANN index (build-index, or\n\
         \x20 export-artifact --with-index) enables per-request 'mode': exact | ann | auto.\n\
         \x20 auto uses ANN above --ann-threshold target nodes; ANN hits are re-ranked\n\
         \x20 exactly, so returned scores are identical to the exact engine's.\n\n\
         quantized serving:\n\
         \x20 quantize-artifact (or export-artifact --quant) attaches int8/f16 panels; by\n\
         \x20 default they replace the f64 blocks in the file (>=3.5x smaller, rows are\n\
         \x20 reconstructed at load), --keep-f64 keeps both. serve --quant (or a per-request\n\
         \x20 'quant' field) routes first-pass scans over the panels with a certified error\n\
         \x20 margin, then re-ranks exactly in f64 — responses are byte-identical to f64\n\
         \x20 scans; only the memory footprint and traffic change.\n\n\
         global flags:\n\
         \x20 -v/--verbose   debug-level progress on stderr\n\
         \x20 -q/--quiet     silence stderr entirely\n\
         \x20 --metrics-out PATH   stream JSONL telemetry (spans, gauges, counters) to PATH"
    );
    std::process::exit(2);
}
