//! End-to-end smoke tests of the `galign` binary: generate → align →
//! evaluate → info, exercising the real executable and file formats.

use std::path::PathBuf;
use std::process::Command;

fn galign(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_galign-cli"))
        .args(args)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("galign-cli-smoke").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn full_workflow_on_toy_dataset() {
    let dir = workdir("toy");
    let d = dir.to_str().unwrap();
    let (ok, out) = galign(&["generate", "--dataset", "toy", "--out", d]);
    assert!(ok, "{out}");
    assert!(out.contains("toy-movies"));

    let src = format!("{d}/source.json");
    let tgt = format!("{d}/target.json");
    let pred = format!("{d}/pred.json");
    let scores = format!("{d}/scores.json");
    let (ok, out) = galign(&[
        "align", "--source", &src, "--target", &tgt, "--out", &pred, "--scores", &scores,
        "--method", "final", "--seeds", &format!("{d}/truth.json"),
    ]);
    assert!(ok, "{out}");
    assert!(std::path::Path::new(&pred).exists());
    assert!(std::path::Path::new(&scores).exists());

    let (ok, out) = galign(&["evaluate", "--anchors", &pred, "--truth", &format!("{d}/truth.json")]);
    assert!(ok, "{out}");
    assert!(out.contains("precision"));

    let (ok, out) = galign(&["info", "--graph", &src]);
    assert!(ok, "{out}");
    assert!(out.contains("nodes = 10"));
}

#[test]
fn galign_method_with_model_export() {
    let dir = workdir("galign-method");
    let d = dir.to_str().unwrap();
    let (ok, out) = galign(&["generate", "--dataset", "toy", "--out", d]);
    assert!(ok, "{out}");
    let model = format!("{d}/model.json");
    let (ok, out) = galign(&[
        "align",
        "--source", &format!("{d}/source.json"),
        "--target", &format!("{d}/target.json"),
        "--out", &format!("{d}/pred.json"),
        "--save-model", &model,
    ]);
    assert!(ok, "{out}");
    assert!(std::path::Path::new(&model).exists());
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (ok, out) = galign(&["generate", "--dataset", "nope"]);
    assert!(!ok);
    assert!(out.contains("unknown dataset"));

    let (ok, out) = galign(&["frobnicate"]);
    assert!(!ok);
    assert!(out.contains("unknown command"));

    let (ok, out) = galign(&["info", "--graph", "/nonexistent/file.json"]);
    assert!(!ok);
    assert!(out.contains("error"));
}

#[test]
fn convert_edge_list_roundtrip() {
    let dir = workdir("convert");
    let d = dir.to_str().unwrap();
    std::fs::write(format!("{d}/edges.txt"), "# comment\n0 1\n1 2\n2 0\n").unwrap();
    std::fs::write(format!("{d}/attrs.csv"), "1,0\n0,1\n0.5,0.5\n").unwrap();
    let out = format!("{d}/g.json");
    let (ok, text) = galign(&[
        "convert", "--edges", &format!("{d}/edges.txt"), "--attrs", &format!("{d}/attrs.csv"),
        "--out", &out,
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("3 nodes, 3 edges, 2 attrs"));
    let (ok, text) = galign(&["info", "--graph", &out]);
    assert!(ok, "{text}");
    assert!(text.contains("nodes = 3"));
    // Too few attribute rows fails cleanly.
    std::fs::write(format!("{d}/short.csv"), "1,0\n").unwrap();
    let (ok, text) = galign(&[
        "convert", "--edges", &format!("{d}/edges.txt"), "--attrs", &format!("{d}/short.csv"),
    ]);
    assert!(!ok);
    assert!(text.contains("attribute rows"));
}
