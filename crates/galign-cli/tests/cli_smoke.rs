//! End-to-end smoke tests of the `galign` binary: generate → align →
//! evaluate → info, exercising the real executable and file formats.

use std::path::PathBuf;
use std::process::Command;

fn galign(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_galign-cli"))
        .args(args)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

/// Like [`galign`] but with stdout and stderr kept separate.
fn galign_split(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_galign-cli"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("galign-cli-smoke").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn full_workflow_on_toy_dataset() {
    let dir = workdir("toy");
    let d = dir.to_str().unwrap();
    let (ok, out) = galign(&["generate", "--dataset", "toy", "--out", d]);
    assert!(ok, "{out}");
    assert!(out.contains("toy-movies"));

    let src = format!("{d}/source.json");
    let tgt = format!("{d}/target.json");
    let pred = format!("{d}/pred.json");
    let scores = format!("{d}/scores.json");
    let (ok, out) = galign(&[
        "align",
        "--source",
        &src,
        "--target",
        &tgt,
        "--out",
        &pred,
        "--scores",
        &scores,
        "--method",
        "final",
        "--seeds",
        &format!("{d}/truth.json"),
    ]);
    assert!(ok, "{out}");
    assert!(std::path::Path::new(&pred).exists());
    assert!(std::path::Path::new(&scores).exists());

    let (ok, out) = galign(&[
        "evaluate",
        "--anchors",
        &pred,
        "--truth",
        &format!("{d}/truth.json"),
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("precision"));

    let (ok, out) = galign(&["info", "--graph", &src]);
    assert!(ok, "{out}");
    assert!(out.contains("nodes = 10"));
}

#[test]
fn galign_method_with_model_export() {
    let dir = workdir("galign-method");
    let d = dir.to_str().unwrap();
    let (ok, out) = galign(&["generate", "--dataset", "toy", "--out", d]);
    assert!(ok, "{out}");
    let model = format!("{d}/model.json");
    let (ok, out) = galign(&[
        "align",
        "--source",
        &format!("{d}/source.json"),
        "--target",
        &format!("{d}/target.json"),
        "--out",
        &format!("{d}/pred.json"),
        "--save-model",
        &model,
    ]);
    assert!(ok, "{out}");
    assert!(std::path::Path::new(&model).exists());
}

#[test]
fn quiet_silences_stderr_and_metrics_out_writes_jsonl() {
    let dir = workdir("telemetry");
    let d = dir.to_str().unwrap();
    let (ok, _, _) = galign_split(&["generate", "--dataset", "toy", "--out", d, "--quiet"]);
    assert!(ok);

    // --quiet: nothing at all on stderr.
    let metrics = format!("{d}/metrics.jsonl");
    let (ok, _, err) = galign_split(&[
        "align",
        "--source",
        &format!("{d}/source.json"),
        "--target",
        &format!("{d}/target.json"),
        "--out",
        &format!("{d}/pred.json"),
        "--quiet",
        "--metrics-out",
        &metrics,
    ]);
    assert!(ok, "{err}");
    assert!(err.is_empty(), "--quiet left stderr output: {err:?}");

    // --metrics-out: every line is a JSON object; the GAlign stage spans
    // and training gauges are present.
    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(!text.trim().is_empty());
    let mut spans = Vec::new();
    let mut gauges = Vec::new();
    let mut counters_seen = false;
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("well-formed JSONL");
        match v["type"].as_str().unwrap() {
            "span" => spans.push(v["name"].as_str().unwrap().to_string()),
            "gauge" => gauges.push(v["name"].as_str().unwrap().to_string()),
            "snapshot" => {
                counters_seen = v["metrics"]["counters"]
                    .as_object()
                    .is_some_and(|c| c.keys().any(|k| k.starts_with("matrix.")));
            }
            _ => {}
        }
    }
    for expected in ["pipeline", "embedding", "augment", "refine", "match"] {
        assert!(
            spans.iter().any(|s| s == expected),
            "missing span {expected}: {spans:?}"
        );
    }
    assert!(
        gauges.iter().any(|g| g == "train.loss"),
        "missing train.loss: {gauges:?}"
    );
    assert!(counters_seen, "snapshot lacks matrix.* counters");

    // --verbose produces progress on stderr.
    let (ok, _, err) = galign_split(&["info", "--graph", &format!("{d}/source.json"), "-v"]);
    assert!(ok, "{err}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (ok, out) = galign(&["generate", "--dataset", "nope"]);
    assert!(!ok);
    assert!(out.contains("unknown dataset"));

    let (ok, out) = galign(&["frobnicate"]);
    assert!(!ok);
    assert!(out.contains("unknown command"));

    let (ok, out) = galign(&["info", "--graph", "/nonexistent/file.json"]);
    assert!(!ok);
    assert!(out.contains("error"));
}

#[test]
fn convert_edge_list_roundtrip() {
    let dir = workdir("convert");
    let d = dir.to_str().unwrap();
    std::fs::write(format!("{d}/edges.txt"), "# comment\n0 1\n1 2\n2 0\n").unwrap();
    std::fs::write(format!("{d}/attrs.csv"), "1,0\n0,1\n0.5,0.5\n").unwrap();
    let out = format!("{d}/g.json");
    let (ok, text) = galign(&[
        "convert",
        "--edges",
        &format!("{d}/edges.txt"),
        "--attrs",
        &format!("{d}/attrs.csv"),
        "--out",
        &out,
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("3 nodes, 3 edges, 2 attrs"));
    let (ok, text) = galign(&["info", "--graph", &out]);
    assert!(ok, "{text}");
    assert!(text.contains("nodes = 3"));
    // Too few attribute rows fails cleanly.
    std::fs::write(format!("{d}/short.csv"), "1,0\n").unwrap();
    let (ok, text) = galign(&[
        "convert",
        "--edges",
        &format!("{d}/edges.txt"),
        "--attrs",
        &format!("{d}/short.csv"),
    ]);
    assert!(!ok);
    assert!(text.contains("attribute rows"));
}
