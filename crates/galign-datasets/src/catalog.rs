//! Synthetic stand-ins for the nine real-world networks of Table II.
//!
//! Each constructor reproduces the published statistics (node count, edge
//! count, attribute dimensionality, anchor count) at `scale = 1.0` and
//! shrinks every count proportionally for smaller scales. Degree *regimes*
//! are matched by generator choice:
//!
//! | Network pair      | n / e (paper)            | generator |
//! |-------------------|--------------------------|-----------|
//! | Douban On/Off     | 3906/8164 vs 1118/1511   | Barabási–Albert + degree-biased subset |
//! | Flickr–Myspace    | 5740/8977 vs 4504/5507   | two sparse BA graphs sharing 323 anchors |
//! | Allmovie–Imdb     | 6011/124709 vs 5713/119073 | co-membership (co-actor cliques) + subset |
//! | bn                | 1781/9016                | Watts–Strogatz (local lattice-like fibres) |
//! | econ              | 1258/7619                | power-law cluster (hub firms/banks) |
//! | email             | 1133/5451                | Barabási–Albert |
//!
//! See DESIGN.md §3 for why these substitutions preserve the evaluation's
//! discriminative behaviour.

use crate::synth::{noisy_pair, subset_pair, AlignmentTask};
use galign_graph::{generators, noise, AnchorLinks, AttributedGraph};
use galign_matrix::rng::SeededRng;

/// Published statistics of a Table II network (at scale 1.0).
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Attribute dimensionality.
    pub attrs: usize,
}

/// Table II, verbatim.
pub const TABLE2: &[DatasetSpec] = &[
    DatasetSpec {
        name: "douban-online",
        nodes: 3906,
        edges: 8164,
        attrs: 538,
    },
    DatasetSpec {
        name: "douban-offline",
        nodes: 1118,
        edges: 1511,
        attrs: 538,
    },
    DatasetSpec {
        name: "flickr",
        nodes: 5740,
        edges: 8977,
        attrs: 3,
    },
    DatasetSpec {
        name: "myspace",
        nodes: 4504,
        edges: 5507,
        attrs: 3,
    },
    DatasetSpec {
        name: "allmovie",
        nodes: 6011,
        edges: 124_709,
        attrs: 14,
    },
    DatasetSpec {
        name: "tmdb",
        nodes: 5713,
        edges: 119_073,
        attrs: 14,
    },
    DatasetSpec {
        name: "bn",
        nodes: 1781,
        edges: 9016,
        attrs: 20,
    },
    DatasetSpec {
        name: "econ",
        nodes: 1258,
        edges: 7619,
        attrs: 20,
    },
    DatasetSpec {
        name: "email",
        nodes: 1133,
        edges: 5451,
        attrs: 20,
    },
];

fn scaled(count: usize, scale: f64) -> usize {
    ((count as f64) * scale).round().max(8.0) as usize
}

/// Douban Online vs Douban Offline: a sparse social network and a much
/// smaller offline-activity subset of its users (1118 anchors at full
/// scale).
pub fn douban(scale: f64, seed: u64) -> AlignmentTask {
    let mut rng = SeededRng::new(seed);
    let n = scaled(3906, scale);
    // BA(m=2) gives e ≈ 2n ≈ 7810 at full scale; top up with uniform edges
    // to hit Table II's 8164.
    let mut all_edges = generators::barabasi_albert(&mut rng, n, 2);
    let deficit = scaled(8164, scale).saturating_sub(all_edges.len());
    all_edges.extend(generators::erdos_renyi_gnm(&mut rng, n, deficit));
    let attrs = generators::binary_attributes(&mut rng, n, 538, 4);
    let g = AttributedGraph::from_edges(n, &all_edges, attrs);
    let anchor_count = scaled(1118, scale);
    let mut task = subset_pair("douban", &g, anchor_count, 0, 0.08, 0.05, &mut rng);
    task.name = "douban".into();
    task
}

/// Flickr vs Myspace: two very sparse social networks sharing only a small
/// anchored subset (323 anchors at full scale) — the hardest pair in the
/// paper (average degree < 5, §VII-B).
pub fn flickr_myspace(scale: f64, seed: u64) -> AlignmentTask {
    let mut rng = SeededRng::new(seed);
    let n_f = scaled(5740, scale);
    let n_m = scaled(4504, scale);
    let anchors = scaled(323, scale).min(n_f).min(n_m);

    let flickr_edges = generators::barabasi_albert(&mut rng, n_f, 2);
    let flickr_edges: Vec<_> = flickr_edges.into_iter().take(scaled(8977, scale)).collect();
    // Real profile attributes are 3 coarse fields; real-valued here.
    let flickr_attrs = generators::real_attributes(&mut rng, n_f, 3, 12);
    // Anchored users occupy the first `anchors` ids of both networks.
    let myspace_shared: Vec<(usize, usize)> = flickr_edges
        .iter()
        .filter(|&&(u, v)| u < anchors && v < anchors)
        .copied()
        .collect();
    let g_flickr = AttributedGraph::from_edges(n_f, &flickr_edges, flickr_attrs.clone());

    let mut myspace_edges = myspace_shared;
    // Fresh sparse periphery for the non-anchored Myspace users.
    let fresh = generators::barabasi_albert(&mut rng, n_m, 1);
    myspace_edges.extend(
        fresh
            .into_iter()
            .filter(|&(u, v)| u >= anchors || v >= anchors),
    );
    myspace_edges.truncate(scaled(5507, scale).max(anchors));
    // Anchored users keep (noisy) profile attributes; others are random.
    let mut myspace_attrs = generators::real_attributes(&mut rng, n_m, 3, 12);
    for v in 0..anchors {
        myspace_attrs
            .row_mut(v)
            .copy_from_slice(flickr_attrs.row(v));
    }
    let myspace_attrs = noise::real_attribute_noise(&mut rng, &myspace_attrs, 0.1);
    let g_myspace = AttributedGraph::from_edges(n_m, &myspace_edges, myspace_attrs);

    // Shuffle Myspace ids so indices carry no signal.
    let perm = rng.permutation(n_m);
    let g_myspace = g_myspace.permute(&perm);
    let truth = AnchorLinks::new((0..anchors).map(|v| (v, perm[v])).collect());
    // Structural noise on the shared part comes from the periphery rewiring
    // above; drop a few shared edges too.
    AlignmentTask {
        name: "flickr-myspace".into(),
        source: g_flickr,
        target: g_myspace,
        truth,
    }
}

/// Allmovie vs Imdb (Tmdb): dense co-actor film networks; the target keeps
/// ~95 % of the films (5176 anchors at full scale) plus a few fresh ones.
pub fn allmovie_imdb(scale: f64, seed: u64) -> AlignmentTask {
    let mut rng = SeededRng::new(seed);
    let n = scaled(6011, scale);
    // Groups play the role of actors; overlapping cliques yield the dense
    // co-actor structure (average degree ≈ 41 at full scale).
    let n_groups = (n / 5).max(2);
    let (edges, node_groups) = generators::co_membership(&mut rng, n, n_groups, 2);
    let attrs = generators::categorical_attributes(&node_groups, 14);
    let g = AttributedGraph::from_edges(n, &edges, attrs);
    let anchor_count = scaled(5176, scale).min(n);
    let extra = scaled(5713, scale).saturating_sub(anchor_count);
    let mut task = subset_pair(
        "allmovie-imdb",
        &g,
        anchor_count,
        extra,
        0.03,
        0.03,
        &mut rng,
    );
    task.name = "allmovie-imdb".into();
    task
}

/// The `bn` brain network stand-in: lattice-like fibre structure
/// (Watts–Strogatz), 20 synthetic binary attributes.
pub fn bn(scale: f64, seed: u64) -> AttributedGraph {
    let mut rng = SeededRng::new(seed);
    let n = scaled(1781, scale);
    // e ≈ n·k with k = e/n ≈ 5 neighbours per side.
    let edges = generators::watts_strogatz(&mut rng, n, 5, 0.1);
    let attrs = generators::binary_attributes(&mut rng, n, 20, 4);
    AttributedGraph::from_edges(n, &edges, attrs)
}

/// The `econ` economic network stand-in: hubby contractual structure
/// (power-law cluster), 20 synthetic binary attributes.
pub fn econ(scale: f64, seed: u64) -> AttributedGraph {
    let mut rng = SeededRng::new(seed);
    let n = scaled(1258, scale);
    let edges = generators::powerlaw_cluster(&mut rng, n, 6, 0.3);
    let attrs = generators::binary_attributes(&mut rng, n, 20, 4);
    AttributedGraph::from_edges(n, &edges, attrs)
}

/// The `email` communication network stand-in: preferential attachment,
/// 20 synthetic binary attributes.
pub fn email(scale: f64, seed: u64) -> AttributedGraph {
    let mut rng = SeededRng::new(seed);
    let n = scaled(1133, scale);
    let edges = generators::barabasi_albert(&mut rng, n, 5);
    let attrs = generators::binary_attributes(&mut rng, n, 20, 4);
    AttributedGraph::from_edges(n, &edges, attrs)
}

/// Builds the noisy-copy alignment task used by the adversarial experiments
/// on `bn`/`econ`/`email` (Figs. 3–4): target = noisy permuted copy.
pub fn noisy_task(
    base: &AttributedGraph,
    name: &str,
    p_s: f64,
    p_a: f64,
    seed: u64,
) -> AlignmentTask {
    let mut rng = SeededRng::new(seed);
    noisy_pair(name, base, p_s, p_a, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 0.1;

    #[test]
    fn table2_is_complete() {
        assert_eq!(TABLE2.len(), 9);
        assert_eq!(TABLE2[0].nodes, 3906);
        assert_eq!(TABLE2[4].edges, 124_709);
    }

    #[test]
    fn douban_statistics() {
        let task = douban(SCALE, 1);
        let n = task.source.node_count();
        assert!((n as f64 - 390.6).abs() < 2.0, "n = {n}");
        assert_eq!(task.source.attr_dim(), 538);
        // Target is the small offline subset.
        assert!(task.target.node_count() < n / 2);
        assert_eq!(task.truth.len(), task.target.node_count());
        // Sparse social regime.
        assert!(task.source.avg_degree() < 8.0);
    }

    #[test]
    fn flickr_myspace_statistics() {
        let task = flickr_myspace(SCALE, 2);
        assert_eq!(task.source.attr_dim(), 3);
        assert_eq!(task.target.attr_dim(), 3);
        assert!((task.truth.len() as f64 - 32.3).abs() < 2.0);
        // Both networks are very sparse (the paper stresses avg degree < 5).
        assert!(
            task.source.avg_degree() < 5.0,
            "{}",
            task.source.avg_degree()
        );
        assert!(
            task.target.avg_degree() < 5.0,
            "{}",
            task.target.avg_degree()
        );
    }

    #[test]
    fn allmovie_imdb_statistics() {
        let task = allmovie_imdb(SCALE, 3);
        assert_eq!(task.source.attr_dim(), 14);
        // Dense co-membership regime: much higher average degree than the
        // social pairs.
        assert!(
            task.source.avg_degree() > 10.0,
            "{}",
            task.source.avg_degree()
        );
        assert!(task.truth.len() > task.target.node_count() / 2);
    }

    #[test]
    fn single_networks_match_regimes() {
        let b = bn(SCALE, 4);
        let ec = econ(SCALE, 5);
        let em = email(SCALE, 6);
        assert_eq!(b.attr_dim(), 20);
        assert_eq!(ec.attr_dim(), 20);
        assert_eq!(em.attr_dim(), 20);
        // Average degrees within a factor of ~2 of Table II's
        // (10.1, 12.1, 9.6 respectively).
        assert!((5.0..20.0).contains(&b.avg_degree()), "{}", b.avg_degree());
        assert!(
            (6.0..24.0).contains(&ec.avg_degree()),
            "{}",
            ec.avg_degree()
        );
        assert!(
            (5.0..20.0).contains(&em.avg_degree()),
            "{}",
            em.avg_degree()
        );
    }

    #[test]
    fn noisy_task_wraps_base() {
        let b = bn(0.05, 7);
        let task = noisy_task(&b, "bn", 0.2, 0.1, 8);
        assert_eq!(task.truth.len(), b.node_count());
        assert_eq!(task.name, "bn");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = douban(0.05, 42);
        let b = douban(0.05, 42);
        assert_eq!(a.source.edge_count(), b.source.edge_count());
        assert_eq!(a.truth, b.truth);
        let c = douban(0.05, 43);
        // Different seeds give different subsets/edges (edge *counts* can
        // coincide, so compare the actual anchors and edge sets).
        assert!(a.truth != c.truth || a.source.edges() != c.source.edges());
    }
}
