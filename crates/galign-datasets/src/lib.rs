//! Seeded synthetic stand-ins for the paper's evaluation datasets.
//!
//! The real networks of Table II (Douban, Flickr, Myspace, Allmovie,
//! Imdb/Tmdb, bn, econ, email) are not redistributable; this crate
//! synthesises structurally comparable replacements (node/edge/attribute
//! counts, degree regime, overlap sizes) with deterministic seeds — see
//! DESIGN.md §3 for the substitution argument.
//!
//! * [`catalog`] — per-dataset constructors (`douban()`, `flickr_myspace()`,
//!   `allmovie_imdb()`, `bn()`, `econ()`, `email()`), each returning an
//!   [`AlignmentTask`]. A `scale` factor shrinks every network for fast CI
//!   and laptop-scale experiments.
//! * [`synth`] — generic alignment-pair synthesis: noisy copies (Figs. 3–4),
//!   partial-overlap pairs for the isomorphic-level sweep (Fig. 5), and
//!   subgraph pairs with anchor subsets (Douban-style size imbalance).
//! * [`toy`] — the 10-movie-pair toy dataset of the qualitative study
//!   (Fig. 8).

pub mod catalog;
pub mod synth;
pub mod toy;

pub use catalog::{allmovie_imdb, bn, douban, econ, email, flickr_myspace, DatasetSpec};
pub use synth::AlignmentTask;
