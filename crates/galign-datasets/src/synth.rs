//! Generic alignment-pair synthesis.
//!
//! These constructions mirror how the paper derives alignment problems:
//! noisy copies of one network (the synthetic experiments of §VII-D),
//! partial-overlap pairs (the isomorphic-level sweep, Fig. 5) and
//! subset pairs (size-imbalanced real pairs like Douban Online/Offline).

use galign_graph::{noise, AnchorLinks, AttributedGraph};
use galign_matrix::rng::SeededRng;
use std::collections::HashMap;

/// A ready-to-run alignment problem: two attributed networks plus
/// ground-truth anchors.
#[derive(Debug, Clone)]
pub struct AlignmentTask {
    /// Human-readable name (e.g. `"douban"`).
    pub name: String,
    /// Source network `G_s`.
    pub source: AttributedGraph,
    /// Target network `G_t`.
    pub target: AttributedGraph,
    /// Ground-truth anchor links.
    pub truth: AnchorLinks,
}

impl AlignmentTask {
    /// One-line statistics summary (node/edge/attribute/anchor counts).
    pub fn summary(&self) -> String {
        format!(
            "{}: source {}n/{}e, target {}n/{}e, {} attrs, {} anchors",
            self.name,
            self.source.node_count(),
            self.source.edge_count(),
            self.target.node_count(),
            self.target.edge_count(),
            self.source.attr_dim(),
            self.truth.len()
        )
    }
}

/// Builds a noisy-copy pair: the target is the source with `p_s` structural
/// and `p_a` attribute noise, then randomly relabelled so node indices carry
/// no signal. Ground truth maps each source node to its relabelled copy.
pub fn noisy_pair(
    name: &str,
    g: &AttributedGraph,
    p_s: f64,
    p_a: f64,
    rng: &mut SeededRng,
) -> AlignmentTask {
    let noisy = noise::augment(rng, g, p_s, p_a);
    let perm = rng.permutation(g.node_count());
    let target = noisy.permute(&perm);
    let truth = AnchorLinks::new((0..g.node_count()).map(|v| (v, perm[v])).collect());
    AlignmentTask {
        name: name.to_string(),
        source: g.clone(),
        target,
        truth,
    }
}

/// Builds a partial-overlap pair for the isomorphic-level experiment
/// (Fig. 5): source and target are induced subgraphs of `parent` sharing
/// `overlap_ratio` of its nodes; the non-shared remainder is split between
/// the two sides. Small noise (`p_s`, `p_a`) is applied to the target.
pub fn overlap_pair(
    name: &str,
    parent: &AttributedGraph,
    overlap_ratio: f64,
    p_s: f64,
    p_a: f64,
    rng: &mut SeededRng,
) -> AlignmentTask {
    let n = parent.node_count();
    let mut order = rng.permutation(n);
    let shared = ((n as f64) * overlap_ratio.clamp(0.0, 1.0)).round() as usize;
    let rest = n - shared;
    let shared_nodes: Vec<usize> = order.drain(..shared).collect();
    let source_extra: Vec<usize> = order.drain(..rest / 2).collect();
    let target_extra: Vec<usize> = order;

    let mut source_nodes = shared_nodes.clone();
    source_nodes.extend(&source_extra);
    let mut target_nodes = shared_nodes.clone();
    target_nodes.extend(&target_extra);

    let (source, smap) = parent.induced_subgraph(&source_nodes);
    let (target_raw, tmap) = parent.induced_subgraph(&target_nodes);
    let target = noise::augment(rng, &target_raw, p_s, p_a);

    let truth = AnchorLinks::new(shared_nodes.iter().map(|v| (smap[v], tmap[v])).collect());
    AlignmentTask {
        name: name.to_string(),
        source,
        target,
        truth,
    }
}

/// Builds a size-imbalanced subset pair (Douban Online/Offline style): the
/// target keeps only `anchor_count` nodes of the source (biased towards
/// high-degree nodes, like real "active user" subsets), rewired with noise,
/// optionally padded with `extra_nodes` fresh nodes carrying random edges.
pub fn subset_pair(
    name: &str,
    g: &AttributedGraph,
    anchor_count: usize,
    extra_nodes: usize,
    p_s: f64,
    p_a: f64,
    rng: &mut SeededRng,
) -> AlignmentTask {
    let n = g.node_count();
    let anchor_count = anchor_count.min(n);
    // Degree-biased sampling without replacement.
    let mut weights: Vec<f64> = g.degrees().iter().map(|&d| (d + 1) as f64).collect();
    let mut chosen = Vec::with_capacity(anchor_count);
    for _ in 0..anchor_count {
        let v = rng.weighted_index(&weights);
        chosen.push(v);
        weights[v] = 0.0;
    }
    chosen.sort_unstable();

    let (sub, map) = g.induced_subgraph(&chosen);
    let noisy = noise::augment(rng, &sub, p_s, p_a);

    // Pad with fresh nodes attached by preferential attachment.
    let total = noisy.node_count() + extra_nodes;
    let mut edges = noisy.edges();
    let mut attrs_rows: Vec<Vec<f64>> = noisy.attributes().row_iter().map(|r| r.to_vec()).collect();
    let attr_dim = noisy.attr_dim();
    for v in noisy.node_count()..total {
        let links = 1 + rng.index(3);
        for _ in 0..links {
            if v > 0 {
                edges.push((rng.index(v), v));
            }
        }
        let mut row = vec![0.0; attr_dim];
        if attr_dim > 0 {
            row[rng.index(attr_dim)] = 1.0;
        }
        attrs_rows.push(row);
    }
    let attrs = galign_matrix::Dense::from_rows(&attrs_rows).expect("consistent rows");
    let target = AttributedGraph::from_edges(total, &edges, attrs);

    let smap: HashMap<usize, usize> = (0..n).map(|v| (v, v)).collect();
    let truth = AnchorLinks::new(chosen.iter().map(|v| (smap[v], map[v])).collect());
    AlignmentTask {
        name: name.to_string(),
        source: g.clone(),
        target,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_graph::generators;

    fn base_graph(seed: u64, n: usize) -> AttributedGraph {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, n, 3);
        let attrs = generators::binary_attributes(&mut rng, n, 10, 3);
        AttributedGraph::from_edges(n, &edges, attrs)
    }

    #[test]
    fn noisy_pair_truth_is_permutation() {
        let g = base_graph(1, 50);
        let mut rng = SeededRng::new(2);
        let task = noisy_pair("t", &g, 0.1, 0.1, &mut rng);
        assert_eq!(task.truth.len(), 50);
        assert_eq!(task.target.node_count(), 50);
        // Ground truth is a bijection.
        let targets: std::collections::HashSet<usize> =
            task.truth.pairs().iter().map(|&(_, t)| t).collect();
        assert_eq!(targets.len(), 50);
        assert!(task.summary().contains("50 anchors"));
    }

    #[test]
    fn noisy_pair_zero_noise_preserves_structure() {
        let g = base_graph(3, 30);
        let mut rng = SeededRng::new(4);
        let task = noisy_pair("t", &g, 0.0, 0.0, &mut rng);
        let s2t = task.truth.source_to_target();
        for (u, v) in task.source.edges() {
            assert!(task.target.has_edge(s2t[&u], s2t[&v]));
        }
    }

    #[test]
    fn overlap_pair_respects_ratio() {
        let g = base_graph(5, 100);
        let mut rng = SeededRng::new(6);
        let task = overlap_pair("o", &g, 0.6, 0.05, 0.0, &mut rng);
        assert_eq!(task.truth.len(), 60);
        // Both sides contain shared + half the remainder.
        assert_eq!(task.source.node_count(), 60 + 20);
        assert_eq!(task.target.node_count(), 60 + 20);
    }

    #[test]
    fn overlap_pair_extreme_ratios() {
        let g = base_graph(7, 40);
        let mut rng = SeededRng::new(8);
        let full = overlap_pair("o", &g, 1.0, 0.0, 0.0, &mut rng);
        assert_eq!(full.truth.len(), 40);
        let none = overlap_pair("o", &g, 0.0, 0.0, 0.0, &mut rng);
        assert_eq!(none.truth.len(), 0);
    }

    #[test]
    fn subset_pair_shapes() {
        let g = base_graph(9, 80);
        let mut rng = SeededRng::new(10);
        let task = subset_pair("s", &g, 30, 5, 0.05, 0.05, &mut rng);
        assert_eq!(task.source.node_count(), 80);
        assert_eq!(task.target.node_count(), 35);
        assert_eq!(task.truth.len(), 30);
        // All anchors point at valid target ids.
        for &(s, t) in task.truth.pairs() {
            assert!(s < 80 && t < 35);
        }
    }
}
