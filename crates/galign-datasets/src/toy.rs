//! The 10-movie toy dataset of the qualitative study (Fig. 8).
//!
//! The paper extracts 10 movie pairs from Allmovie–IMDB with genre one-hot
//! attributes; we build an equivalent miniature: ten films connected by
//! shared-cast edges, a target copy with one attribute typo and one missing
//! co-star edge, and recognisable display names for plot labelling.

use crate::synth::AlignmentTask;
use galign_graph::{AnchorLinks, AttributedGraph};
use galign_matrix::Dense;

/// Display names of the toy films (the two the paper calls out in Fig. 8c,
/// "School Ties" and "Duets", included).
pub const MOVIE_NAMES: [&str; 10] = [
    "School Ties",
    "Duets",
    "The Mummy: Tomb of the Dragon Emperor",
    "Apollo 13",
    "Ocean's Eleven",
    "The Departed",
    "Good Will Hunting",
    "The Bourne Identity",
    "Gone Girl",
    "Interstellar",
];

/// Genre labels backing the 4 one-hot attribute columns.
pub const GENRES: [&str; 4] = ["Drama", "Music", "Action", "Sci-Fi"];

fn genre_of(movie: usize) -> usize {
    match movie {
        0 | 5 | 6 | 8 => 0, // drama
        1 => 1,             // music
        2 | 4 | 7 => 2,     // action
        3 | 9 => 3,         // sci-fi
        _ => 0,
    }
}

/// Shared-cast edges of the toy network (hand-picked to give a connected,
/// clustered miniature of a co-actor graph).
const EDGES: [(usize, usize); 14] = [
    (0, 1), // School Ties – Duets (shared lead)
    (0, 6),
    (6, 5),
    (5, 4),
    (4, 3),
    (3, 9),
    (9, 8),
    (8, 7),
    (7, 2),
    (2, 4),
    (1, 8),
    (6, 3),
    (5, 7),
    (0, 5),
];

/// Builds the source toy network.
pub fn toy_source() -> AttributedGraph {
    let attrs = Dense::from_fn(10, 4, |v, j| if genre_of(v) == j { 1.0 } else { 0.0 });
    AttributedGraph::from_edges(10, &EDGES, attrs)
}

/// Builds the 10-movie-pair toy alignment task: the target is the source
/// with one dropped edge (a cast-listing omission) and one corrupted genre
/// attribute (a metadata typo), node identity preserved.
pub fn toy_movies() -> AlignmentTask {
    let source = toy_source();
    // Drop the School Ties – Duets co-star edge in the target.
    let target_edges: Vec<(usize, usize)> =
        EDGES.iter().copied().filter(|&e| e != (0, 1)).collect();
    let mut attrs = Dense::from_fn(10, 4, |v, j| if genre_of(v) == j { 1.0 } else { 0.0 });
    // "Duets" mis-filed as Drama in the target catalogue.
    attrs.row_mut(1).copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
    let target = AttributedGraph::from_edges(10, &target_edges, attrs);
    AlignmentTask {
        name: "toy-movies".into(),
        source,
        target,
        truth: AnchorLinks::identity(10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_is_well_formed() {
        let task = toy_movies();
        assert_eq!(task.source.node_count(), 10);
        assert_eq!(task.target.node_count(), 10);
        assert_eq!(task.truth.len(), 10);
        assert_eq!(task.source.attr_dim(), 4);
        // Target dropped exactly one edge.
        assert_eq!(task.source.edge_count(), task.target.edge_count() + 1);
        assert!(task.source.has_edge(0, 1));
        assert!(!task.target.has_edge(0, 1));
    }

    #[test]
    fn toy_source_connected() {
        let comp = galign_graph::components::connected_components(&toy_source());
        assert!(comp.iter().all(|&c| c == 0));
    }

    #[test]
    fn genre_attributes_one_hot() {
        let g = toy_source();
        for v in 0..10 {
            let s: f64 = g.attributes().row(v).iter().sum();
            assert_eq!(s, 1.0);
        }
        // The target's "Duets" row was corrupted to Drama.
        let task = toy_movies();
        assert_eq!(task.target.attributes().row(1), &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(task.source.attributes().row(1), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn names_cover_all_nodes() {
        assert_eq!(MOVIE_NAMES.len(), 10);
        assert_eq!(GENRES.len(), 4);
    }
}
