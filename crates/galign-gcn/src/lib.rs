//! The paper's graph convolutional network (§IV–§V).
//!
//! * [`model::GcnModel`] — a k-layer GCN `H⁽ˡ⁾ = tanh(C H⁽ˡ⁻¹⁾ W⁽ˡ⁾)`
//!   (Eq. 1) with tanh activation (the paper argues ReLU loses sign
//!   information for alignment) and **weight sharing** across all forwarded
//!   graphs, which is what places source/target/augmented embeddings in a
//!   common space.
//! * [`loss`] — consistency loss (Eq. 7), adaptivity loss (Eq. 9), combined
//!   objective (Eq. 10).
//! * [`train`] — Algorithm 1: the augmented learning loop producing
//!   multi-order embeddings for both networks.
//! * [`watchdog`] — divergence watchdog wrapping the training loop:
//!   NaN/explosion/spike detection with checkpoint rollback and bounded
//!   learning-rate backoff.

pub mod loss;
pub mod model;
pub mod train;
pub mod watchdog;

pub use model::{GcnModel, MultiOrderEmbedding};
pub use train::{train_multi_order, TrainConfig, TrainReport};
pub use watchdog::{TrainHealth, TripReason, Watchdog, WatchdogConfig};
