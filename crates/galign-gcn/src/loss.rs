//! Loss assembly on the autodiff tape (Eq. 7, 9, 10).

use galign_autograd::tape::{SparseId, Tape, Var};

/// Consistency loss of one network (Eq. 7):
/// `J_c(G) = Σ_{l∈[1..k]} ‖C − H⁽ˡ⁾ H⁽ˡ⁾ᵀ‖_F`.
///
/// `layers` must be the full `H⁽⁰⁾..H⁽ᵏ⁾` list; layer 0 (raw attributes) is
/// excluded per the paper's summation range.
pub fn consistency_loss(tape: &mut Tape, layers: &[Var], c: SparseId) -> Var {
    assert!(layers.len() >= 2, "need at least one GCN layer");
    let terms: Vec<(Var, f64)> = layers[1..]
        .iter()
        .map(|&h| (tape.consistency_loss(h, c), 1.0))
        .collect();
    tape.weighted_sum(&terms)
}

/// Adaptivity loss between a network and one augmented copy (Eq. 9):
/// `J_a(G, G*) = Σ_v Σ_{l∈[1..k]} σ_<(‖H⁽ˡ⁾(v) − H⁽ˡ⁾(v*)‖)`.
///
/// Both layer lists must come from the *same* shared-weight model so the
/// embeddings live in one space.
pub fn adaptivity_loss(
    tape: &mut Tape,
    layers: &[Var],
    augmented_layers: &[Var],
    threshold: f64,
) -> Var {
    assert_eq!(layers.len(), augmented_layers.len(), "layer count mismatch");
    let terms: Vec<(Var, f64)> = layers[1..]
        .iter()
        .zip(&augmented_layers[1..])
        .map(|(&h, &ha)| (tape.adaptivity_loss(h, ha, threshold), 1.0))
        .collect();
    tape.weighted_sum(&terms)
}

/// Combined objective for one network (Eq. 10):
/// `J(G) = γ J_c(G) + (1−γ) Σ_{G*} J_a(G, G*)`.
pub fn combined_loss(
    tape: &mut Tape,
    layers: &[Var],
    augmented: &[Vec<Var>],
    c: SparseId,
    gamma: f64,
    threshold: f64,
) -> Var {
    let jc = consistency_loss(tape, layers, c);
    let mut terms = vec![(jc, gamma)];
    for aug_layers in augmented {
        let ja = adaptivity_loss(tape, layers, aug_layers, threshold);
        terms.push((ja, 1.0 - gamma));
    }
    tape.weighted_sum(&terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GcnModel;
    use galign_graph::noise;
    use galign_graph::AttributedGraph;
    use galign_matrix::rng::SeededRng;
    use galign_matrix::Dense;

    fn sample_graph(seed: u64) -> AttributedGraph {
        let mut rng = SeededRng::new(seed);
        let edges = galign_graph::generators::erdos_renyi_gnm(&mut rng, 15, 30);
        let attrs = galign_graph::generators::binary_attributes(&mut rng, 15, 6, 2);
        AttributedGraph::from_edges(15, &edges, attrs)
    }

    fn forward(
        tape: &mut Tape,
        model: &GcnModel,
        weights: &[Var],
        g: &AttributedGraph,
    ) -> (Vec<Var>, SparseId) {
        let c = tape.sparse(g.normalized_laplacian());
        let layers = model.forward_on_tape(tape, weights, c, g.attributes());
        (layers, c)
    }

    #[test]
    fn consistency_loss_is_sum_over_layers() {
        let g = sample_graph(1);
        let mut rng = SeededRng::new(2);
        let model = GcnModel::new(&mut rng, 6, &[4, 4]);
        let mut tape = Tape::new();
        let w = model.weights_on_tape(&mut tape);
        let (layers, c) = forward(&mut tape, &model, &w, &g);
        let total = consistency_loss(&mut tape, &layers, c);
        let l1 = tape.consistency_loss(layers[1], c);
        let l2 = tape.consistency_loss(layers[2], c);
        let expected = tape.value(l1).get(0, 0) + tape.value(l2).get(0, 0);
        assert!((tape.value(total).get(0, 0) - expected).abs() < 1e-10);
        assert!(tape.value(total).get(0, 0) > 0.0);
    }

    #[test]
    fn adaptivity_loss_zero_for_identical_graphs() {
        let g = sample_graph(3);
        let mut rng = SeededRng::new(4);
        let model = GcnModel::new(&mut rng, 6, &[4]);
        let mut tape = Tape::new();
        let w = model.weights_on_tape(&mut tape);
        let (l1, _) = forward(&mut tape, &model, &w, &g);
        let (l2, _) = forward(&mut tape, &model, &w, &g);
        let ja = adaptivity_loss(&mut tape, &l1, &l2, 10.0);
        assert_eq!(tape.value(ja).get(0, 0), 0.0);
    }

    #[test]
    fn adaptivity_loss_positive_for_perturbed_graph() {
        let g = sample_graph(5);
        let mut noise_rng = SeededRng::new(6);
        let ga = noise::augment(&mut noise_rng, &g, 0.3, 0.3);
        let mut rng = SeededRng::new(7);
        let model = GcnModel::new(&mut rng, 6, &[4]);
        let mut tape = Tape::new();
        let w = model.weights_on_tape(&mut tape);
        let (l1, _) = forward(&mut tape, &model, &w, &g);
        let (l2, _) = forward(&mut tape, &model, &w, &ga);
        let ja = adaptivity_loss(&mut tape, &l1, &l2, 10.0);
        assert!(tape.value(ja).get(0, 0) > 0.0);
    }

    #[test]
    fn combined_loss_interpolates() {
        let g = sample_graph(8);
        let mut noise_rng = SeededRng::new(9);
        let ga = noise::augment(&mut noise_rng, &g, 0.2, 0.2);
        let mut rng = SeededRng::new(10);
        let model = GcnModel::new(&mut rng, 6, &[4]);
        let mut tape = Tape::new();
        let w = model.weights_on_tape(&mut tape);
        let (layers, c) = forward(&mut tape, &model, &w, &g);
        let (aug_layers, _) = forward(&mut tape, &model, &w, &ga);
        let jc = consistency_loss(&mut tape, &layers, c);
        let ja = adaptivity_loss(&mut tape, &layers, &aug_layers, 10.0);
        let j = combined_loss(&mut tape, &layers, &[aug_layers], c, 0.8, 10.0);
        let expected = 0.8 * tape.value(jc).get(0, 0) + 0.2 * tape.value(ja).get(0, 0);
        assert!((tape.value(j).get(0, 0) - expected).abs() < 1e-10);
    }

    #[test]
    fn gamma_one_ignores_augments() {
        let g = sample_graph(11);
        let mut noise_rng = SeededRng::new(12);
        let ga = noise::augment(&mut noise_rng, &g, 0.2, 0.2);
        let mut rng = SeededRng::new(13);
        let model = GcnModel::new(&mut rng, 6, &[4]);
        let mut tape = Tape::new();
        let w = model.weights_on_tape(&mut tape);
        let (layers, c) = forward(&mut tape, &model, &w, &g);
        let (aug_layers, _) = forward(&mut tape, &model, &w, &ga);
        let jc = consistency_loss(&mut tape, &layers, c);
        let j = combined_loss(&mut tape, &layers, &[aug_layers], c, 1.0, 10.0);
        assert!((tape.value(j).get(0, 0) - tape.value(jc).get(0, 0)).abs() < 1e-10);
    }

    #[test]
    fn losses_are_differentiable_end_to_end() {
        // Gradient check of the full Eq. 10 program w.r.t. the weights.
        let g = sample_graph(14);
        let mut noise_rng = SeededRng::new(15);
        let ga = noise::augment(&mut noise_rng, &g, 0.2, 0.2);
        let mut rng = SeededRng::new(16);
        let model = GcnModel::new(&mut rng, 6, &[3]);
        let params: Vec<Dense> = model.weights().to_vec();
        let report = galign_autograd::check::grad_check(
            &params,
            |tape, params| {
                let model = GcnModel::from_weights(6, params.to_vec());
                let weights = model.weights_on_tape(tape);
                let c = tape.sparse(g.normalized_laplacian());
                let layers = model.forward_on_tape(tape, &weights, c, g.attributes());
                let ca = tape.sparse(ga.normalized_laplacian());
                let aug = model.forward_on_tape(tape, &weights, ca, ga.attributes());
                let j = combined_loss(tape, &layers, &[aug], c, 0.8, 10.0);
                (j, weights)
            },
            1e-6,
        );
        assert!(report.passes(1e-4), "{report:?}");
    }
}
