//! The paper's GCN model (§IV-A, Eq. 1) and its multi-order embeddings.

use galign_autograd::tape::{SparseId, Tape, Var};
use galign_graph::AttributedGraph;
use galign_matrix::rng::SeededRng;
use galign_matrix::{Csr, Dense};

/// The activation σ of Eq. 1.
///
/// The paper argues for `tanh` (§IV-A): alignment needs a bijective
/// activation so negative coordinates keep their sign, whereas ReLU maps
/// sign information away. `Relu` and `Identity` exist so that argument can
/// be ablated empirically (see `exp_ablation_design`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// `tanh` — the paper's choice.
    #[default]
    Tanh,
    /// `max(0, x)` — the activation the paper rejects.
    Relu,
    /// No activation (a purely linear GCN).
    Identity,
}

impl Activation {
    fn apply_scalar(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }
}

/// A k-layer graph convolutional network
/// `H⁽ˡ⁾ = σ(C H⁽ˡ⁻¹⁾ W⁽ˡ⁾)` with `C = D̂^{-1/2} Â D̂^{-1/2}` (Eq. 1) and
/// σ = tanh by default.
///
/// One `GcnModel` instance is shared by the source network, the target
/// network, and every augmented copy — the weight-sharing mechanism that
/// places all embeddings in a common space (§V-D).
#[derive(Debug, Clone)]
pub struct GcnModel {
    weights: Vec<Dense>,
    input_dim: usize,
    activation: Activation,
}

impl GcnModel {
    /// Creates a model with Xavier-initialised weights.
    ///
    /// `layer_dims[l]` is the embedding dimension `d⁽ˡ⁺¹⁾` of layer `l+1`;
    /// the paper's default is `k = 2` layers of dimension 200.
    ///
    /// # Panics
    /// Panics when `layer_dims` is empty or `input_dim == 0`.
    pub fn new(rng: &mut SeededRng, input_dim: usize, layer_dims: &[usize]) -> Self {
        assert!(!layer_dims.is_empty(), "at least one GCN layer required");
        assert!(input_dim > 0, "input dimension must be positive");
        let mut weights = Vec::with_capacity(layer_dims.len());
        let mut prev = input_dim;
        for &d in layer_dims {
            weights.push(rng.xavier_uniform(prev, d));
            prev = d;
        }
        GcnModel {
            weights,
            input_dim,
            activation: Activation::Tanh,
        }
    }

    /// Overrides the activation (builder style).
    pub fn with_activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    /// The activation in use.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Builds a model from explicit weights (deserialisation / tests).
    ///
    /// # Panics
    /// Panics when consecutive weight shapes do not chain.
    pub fn from_weights(input_dim: usize, weights: Vec<Dense>) -> Self {
        let mut prev = input_dim;
        for w in &weights {
            assert_eq!(w.rows(), prev, "weight shapes must chain");
            prev = w.cols();
        }
        GcnModel {
            weights,
            input_dim,
            activation: Activation::Tanh,
        }
    }

    /// Number of GCN layers `k`.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Input (attribute) dimensionality `m = d⁽⁰⁾`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Immutable access to the weight matrices.
    pub fn weights(&self) -> &[Dense] {
        &self.weights
    }

    /// Replaces all weights (used by the trainer after optimisation).
    ///
    /// # Panics
    /// Panics when shapes change.
    pub fn set_weights(&mut self, weights: Vec<Dense>) {
        assert_eq!(weights.len(), self.weights.len());
        for (old, new) in self.weights.iter().zip(&weights) {
            assert_eq!(old.shape(), new.shape(), "weight shape changed");
        }
        self.weights = weights;
    }

    /// Shapes of all weight matrices (for optimiser construction).
    pub fn weight_shapes(&self) -> Vec<(usize, usize)> {
        self.weights.iter().map(|w| w.shape()).collect()
    }

    /// Inference-mode forward pass on a graph: returns the multi-order
    /// embeddings `H⁽⁰⁾..H⁽ᵏ⁾` (no gradients recorded).
    pub fn forward(&self, graph: &AttributedGraph) -> MultiOrderEmbedding {
        self.forward_with_operator(&graph.normalized_laplacian(), graph.attributes())
    }

    /// Forward pass with an explicit propagation operator — the refinement
    /// stage substitutes the noise-aware `C_q` here (Eq. 15).
    ///
    /// # Panics
    /// Panics on operator/attribute shape mismatch.
    pub fn forward_with_operator(&self, c: &Csr, f: &Dense) -> MultiOrderEmbedding {
        let mut layers = Vec::with_capacity(self.weights.len() + 1);
        layers.push(f.clone());
        let mut h = f.clone();
        for w in &self.weights {
            let propagated = c.spmm(&h).expect("operator/embedding shape mismatch");
            let act = self.activation;
            h = propagated
                .matmul(w)
                .expect("embedding/weight shape mismatch")
                .map(move |x| act.apply_scalar(x));
            layers.push(h.clone());
        }
        MultiOrderEmbedding { layers }
    }

    /// Records the forward pass on an autodiff tape, reusing pre-registered
    /// weight leaves so several graphs share the same parameters.
    ///
    /// Returns the tape nodes of `H⁽⁰⁾..H⁽ᵏ⁾`.
    pub fn forward_on_tape(
        &self,
        tape: &mut Tape,
        weight_vars: &[Var],
        c: SparseId,
        f: &Dense,
    ) -> Vec<Var> {
        assert_eq!(weight_vars.len(), self.weights.len());
        let mut layers = Vec::with_capacity(self.weights.len() + 1);
        let h0 = tape.leaf(f.clone(), false);
        layers.push(h0);
        let mut h = h0;
        for &w in weight_vars {
            let propagated = tape.spmm(c, h);
            let projected = tape.matmul(propagated, w);
            h = match self.activation {
                Activation::Tanh => tape.tanh(projected),
                Activation::Relu => tape.relu(projected),
                Activation::Identity => projected,
            };
            layers.push(h);
        }
        layers
    }

    /// Registers the model weights as trainable leaves on a tape.
    pub fn weights_on_tape(&self, tape: &mut Tape) -> Vec<Var> {
        self.weights
            .iter()
            .map(|w| tape.leaf(w.clone(), true))
            .collect()
    }
}

/// The multi-order embeddings `{H⁽⁰⁾, …, H⁽ᵏ⁾}` of one network (§V-A).
///
/// `layers[0]` is the raw attribute matrix `F`; `layers[l]` aggregates the
/// l-hop neighbourhood.
#[derive(Debug, Clone)]
pub struct MultiOrderEmbedding {
    layers: Vec<Dense>,
}

impl MultiOrderEmbedding {
    /// Wraps pre-computed layers.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        MultiOrderEmbedding { layers }
    }

    /// All layers `H⁽⁰⁾..H⁽ᵏ⁾`.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Number of GCN layers `k` (excludes the attribute layer).
    pub fn num_gcn_layers(&self) -> usize {
        self.layers.len() - 1
    }

    /// Embedding matrix of layer `l` (0 = attributes).
    pub fn layer(&self, l: usize) -> &Dense {
        &self.layers[l]
    }

    /// Number of embedded nodes.
    pub fn node_count(&self) -> usize {
        self.layers.first().map_or(0, Dense::rows)
    }

    /// Row-L2-normalised copy of every layer, so layer-wise alignment
    /// scores (Eq. 11) are cosine similarities in `[-1, 1]` and the
    /// stability threshold λ of Eq. 13 is meaningful (DESIGN.md §4.2).
    pub fn normalized(&self) -> MultiOrderEmbedding {
        MultiOrderEmbedding {
            layers: self.layers.iter().map(Dense::normalize_rows).collect(),
        }
    }

    /// Concatenates all layers horizontally (used by the qualitative
    /// study's multi-order t-SNE, Fig. 8b).
    pub fn concatenated(&self) -> Dense {
        let mut out = self.layers[0].clone();
        for layer in &self.layers[1..] {
            out = out.hstack(layer).expect("same node count across layers");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> AttributedGraph {
        let attrs = Dense::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.5, 0.5],
        ])
        .unwrap();
        AttributedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], attrs)
    }

    #[test]
    fn shapes_chain_through_layers() {
        let mut rng = SeededRng::new(1);
        let model = GcnModel::new(&mut rng, 2, &[5, 3]);
        assert_eq!(model.num_layers(), 2);
        assert_eq!(model.weight_shapes(), vec![(2, 5), (5, 3)]);
        let emb = model.forward(&sample_graph());
        assert_eq!(emb.num_gcn_layers(), 2);
        assert_eq!(emb.layer(0).shape(), (4, 2));
        assert_eq!(emb.layer(1).shape(), (4, 5));
        assert_eq!(emb.layer(2).shape(), (4, 3));
        assert_eq!(emb.node_count(), 4);
    }

    #[test]
    fn outputs_bounded_by_tanh() {
        let mut rng = SeededRng::new(2);
        let model = GcnModel::new(&mut rng, 2, &[4, 4]);
        let emb = model.forward(&sample_graph());
        for l in 1..=2 {
            assert!(emb.layer(l).as_slice().iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one GCN layer")]
    fn rejects_empty_layers() {
        let mut rng = SeededRng::new(3);
        GcnModel::new(&mut rng, 2, &[]);
    }

    #[test]
    fn from_weights_validates_chaining() {
        let w1 = Dense::zeros(2, 3);
        let w2 = Dense::zeros(3, 4);
        let m = GcnModel::from_weights(2, vec![w1, w2]);
        assert_eq!(m.num_layers(), 2);
    }

    #[test]
    #[should_panic(expected = "must chain")]
    fn from_weights_rejects_mismatch() {
        GcnModel::from_weights(2, vec![Dense::zeros(2, 3), Dense::zeros(5, 4)]);
    }

    #[test]
    fn tape_forward_matches_inference_forward() {
        let mut rng = SeededRng::new(4);
        let g = sample_graph();
        let model = GcnModel::new(&mut rng, 2, &[4, 3]);
        let reference = model.forward(&g);
        let mut tape = Tape::new();
        let weights = model.weights_on_tape(&mut tape);
        let c = tape.sparse(g.normalized_laplacian());
        let layers = model.forward_on_tape(&mut tape, &weights, c, g.attributes());
        for (l, var) in layers.iter().enumerate() {
            assert!(tape.value(*var).approx_eq(reference.layer(l), 1e-12));
        }
    }

    #[test]
    fn normalized_rows_unit_length() {
        let mut rng = SeededRng::new(5);
        let model = GcnModel::new(&mut rng, 2, &[4]);
        let emb = model.forward(&sample_graph()).normalized();
        for l in 0..=1 {
            for norm in emb.layer(l).row_norms() {
                assert!((norm - 1.0).abs() < 1e-9 || norm == 0.0);
            }
        }
    }

    #[test]
    fn concatenated_width() {
        let mut rng = SeededRng::new(6);
        let model = GcnModel::new(&mut rng, 2, &[4, 3]);
        let emb = model.forward(&sample_graph());
        assert_eq!(emb.concatenated().shape(), (4, 2 + 4 + 3));
    }

    /// Proposition 1: GCN embeddings are permutation-equivariant —
    /// `H_t⁽ˡ⁾ = P H_s⁽ˡ⁾` when `A_t = P A_s Pᵀ` and weights are shared.
    #[test]
    fn proposition1_permutation_equivariance() {
        let mut rng = SeededRng::new(7);
        let g = sample_graph();
        let perm = vec![2, 0, 3, 1];
        let pg = g.permute(&perm);
        let model = GcnModel::new(&mut rng, 2, &[5, 4]);
        let e1 = model.forward(&g);
        let e2 = model.forward(&pg);
        for l in 0..=2 {
            for v in 0..4 {
                let a = e1.layer(l).row(v);
                let b = e2.layer(l).row(perm[v]);
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-10, "layer {l} node {v}");
                }
            }
        }
    }
}
