//! Algorithm 1: augmented learning for multi-order embeddings.
//!
//! One shared-weight GCN is trained on the source network, the target
//! network, and `num_augments` perturbed copies of each. Per epoch the
//! combined loss `J(G_s) + J(G_t)` (Eq. 10) is assembled on a fresh tape
//! and minimised with Adam. The perturbed copies enter only through the
//! adaptivity terms, exactly as in Algorithm 1 (lines 11–12 evaluate `J`
//! for `G ∈ {G_s, G_t}` only).

use crate::loss::combined_loss;
use crate::model::{Activation, GcnModel, MultiOrderEmbedding};
use crate::watchdog::{TrainHealth, Watchdog, WatchdogConfig};
use galign_autograd::{Adam, Tape};
use galign_graph::{noise, AttributedGraph};
use galign_matrix::rng::SeededRng;
use galign_matrix::{Csr, Dense};

/// Hyper-parameters of the embedding trainer (defaults follow §VII-A).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Embedding dimension of each GCN layer (`k` = length). Paper default:
    /// two layers of 200.
    pub layer_dims: Vec<usize>,
    /// Number of Adam epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Loss balance γ between consistency and adaptivity (Eq. 10).
    pub gamma: f64,
    /// σ_< threshold of the adaptivity loss (Eq. 9).
    pub adaptivity_threshold: f64,
    /// Number of augmented copies per network.
    pub num_augments: usize,
    /// Structural perturbation rate p_s of the augmenter (§V-C).
    pub p_structure: f64,
    /// Attribute perturbation rate p_a of the augmenter (§V-C).
    pub p_attribute: f64,
    /// Activation σ of Eq. 1 (tanh per the paper; others for ablation).
    pub activation: Activation,
    /// Early stopping: abort when the combined loss has not improved for
    /// this many consecutive epochs (`None` = always run all epochs).
    pub patience: Option<usize>,
    /// Divergence watchdog (checkpoint/rollback/LR-backoff). `None`
    /// disables all screening and pins the historical behavior where a
    /// NaN loss silently poisons the rest of the run.
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            layer_dims: vec![200, 200],
            epochs: 20,
            learning_rate: 0.01,
            gamma: 0.8,
            adaptivity_threshold: 10.0,
            num_augments: 2,
            p_structure: 0.05,
            p_attribute: 0.05,
            activation: Activation::Tanh,
            patience: None,
            watchdog: Some(WatchdogConfig::default()),
        }
    }
}

/// Training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Combined loss of every *applied* epoch (epochs discarded by a
    /// watchdog rollback are not recorded here).
    pub loss_history: Vec<f64>,
    /// Watchdog trips that were answered with a rollback + LR backoff.
    pub recoveries: usize,
    /// Total epochs of progress discarded across all rollbacks.
    pub rollback_epochs: usize,
    /// Terminal health of the run.
    pub health: TrainHealth,
}

impl TrainReport {
    /// Final epoch loss (NaN when no epochs ran).
    pub fn final_loss(&self) -> f64 {
        self.loss_history.last().copied().unwrap_or(f64::NAN)
    }
}

/// Output of [`train_multi_order`].
#[derive(Debug, Clone)]
pub struct Trained {
    /// The shared-weight model after optimisation.
    pub model: GcnModel,
    /// Multi-order embeddings of the source network.
    pub source: MultiOrderEmbedding,
    /// Multi-order embeddings of the target network.
    pub target: MultiOrderEmbedding,
    /// Diagnostics.
    pub report: TrainReport,
}

struct PreparedGraph {
    laplacian: Csr,
    attributes: Dense,
    augmented: Vec<(Csr, Dense)>,
}

fn prepare(g: &AttributedGraph, cfg: &TrainConfig, rng: &mut SeededRng) -> PreparedGraph {
    let sp = galign_telemetry::span!("augment", copies = cfg.num_augments, nodes = g.node_count());
    let augmented = (0..cfg.num_augments)
        .map(|_| {
            let aug = noise::augment(rng, g, cfg.p_structure, cfg.p_attribute);
            (aug.normalized_laplacian(), aug.attributes().clone())
        })
        .collect();
    sp.finish();
    PreparedGraph {
        laplacian: g.normalized_laplacian(),
        attributes: g.attributes().clone(),
        augmented,
    }
}

/// Trains the shared-weight multi-order embedding model (Algorithm 1).
///
/// # Panics
/// Panics when the two networks have different attribute dimensionality
/// (attribute consistency requires a common attribute space, §II-C).
pub fn train_multi_order(
    source: &AttributedGraph,
    target: &AttributedGraph,
    cfg: &TrainConfig,
    rng: &mut SeededRng,
) -> Trained {
    assert_eq!(
        source.attr_dim(),
        target.attr_dim(),
        "source/target attribute dimensions must match"
    );
    let mut model =
        GcnModel::new(rng, source.attr_dim(), &cfg.layer_dims).with_activation(cfg.activation);
    let prepared = [prepare(source, cfg, rng), prepare(target, cfg, rng)];
    let mut adam = Adam::new(cfg.learning_rate, &model.weight_shapes());
    let mut loss_history = Vec::with_capacity(cfg.epochs);
    let mut best_loss = f64::INFINITY;
    let mut epochs_since_best = 0usize;
    let mut watchdog = cfg.watchdog.clone().map(Watchdog::new);
    if let Some(w) = watchdog.as_mut() {
        // Pre-training snapshot so a trip on the very first epochs has
        // somewhere to roll back to.
        w.checkpoint(0, model.weights().to_vec(), adam.clone(), f64::INFINITY);
    }

    for epoch in 0..cfg.epochs {
        let epoch_start = std::time::Instant::now();
        let mut tape = Tape::new();
        let weight_vars = model.weights_on_tape(&mut tape);
        let mut per_graph_losses = Vec::with_capacity(2);
        for pg in &prepared {
            let c = tape.sparse(pg.laplacian.clone());
            let layers = model.forward_on_tape(&mut tape, &weight_vars, c, &pg.attributes);
            let aug_layers: Vec<Vec<_>> = pg
                .augmented
                .iter()
                .map(|(ca, fa)| {
                    let cid = tape.sparse(ca.clone());
                    model.forward_on_tape(&mut tape, &weight_vars, cid, fa)
                })
                .collect();
            let j = combined_loss(
                &mut tape,
                &layers,
                &aug_layers,
                c,
                cfg.gamma,
                cfg.adaptivity_threshold,
            );
            per_graph_losses.push((j, 1.0));
        }
        let total = tape.weighted_sum(&per_graph_losses);
        let mut loss = tape.backward(total);

        // Failpoint `gcn.train.loss`: a `trigger(k)` action poisons epoch
        // k's loss and gradients with NaN, simulating a numerical blow-up
        // for the fault-injection suite.
        let mut injected_grads: Option<Vec<Dense>> = None;
        if let Some(galign_telemetry::failpoint::Action::Trigger(payload)) =
            galign_telemetry::failpoint::eval("gcn.train.loss")
        {
            let at = payload.and_then(|p| p.parse::<usize>().ok()).unwrap_or(0);
            if epoch == at {
                loss = f64::NAN;
                injected_grads = Some(
                    model
                        .weight_shapes()
                        .iter()
                        .map(|&(r, c)| Dense::filled(r, c, f64::NAN))
                        .collect(),
                );
            }
        }
        let grads: Vec<Option<&Dense>> = match &injected_grads {
            Some(poisoned) => poisoned.iter().map(Some).collect(),
            None => weight_vars.iter().map(|&v| tape.grad(v)).collect(),
        };

        let grad_norm = if watchdog.is_some() || galign_telemetry::metrics_enabled() {
            grads
                .iter()
                .filter_map(|g| *g)
                .flat_map(|g| g.as_slice())
                .map(|&x| x * x)
                .sum::<f64>()
                .sqrt()
        } else {
            0.0
        };
        if galign_telemetry::metrics_enabled() {
            galign_telemetry::gauge_set("train.loss", loss);
            galign_telemetry::gauge_set("train.lr", adam.lr());
            galign_telemetry::gauge_set("train.grad_norm", grad_norm);
        }

        if let Some(w) = watchdog.as_mut() {
            if let Some(reason) = w.check(loss, grad_norm) {
                galign_telemetry::counter_add("train.watchdog.trips", 1);
                if w.can_recover() {
                    let backed_off = w.backed_off_lr(adam.lr());
                    if let Some(ckpt) = w.rollback(epoch) {
                        model.set_weights(ckpt.weights.clone());
                        adam = ckpt.adam.clone();
                    }
                    adam.set_lr(backed_off);
                    galign_telemetry::counter_add("train.watchdog.recoveries", 1);
                    galign_telemetry::flight::record_incident(
                        "gcn.watchdog.rollback",
                        vec![
                            ("epoch".to_string(), epoch.to_string()),
                            ("reason".to_string(), reason.to_string()),
                            ("lr".to_string(), format!("{backed_off:.3e}")),
                        ],
                    );
                    galign_telemetry::info!(
                        "train",
                        "watchdog trip at epoch {epoch} ({reason}): rolled back, lr={backed_off:.2e}"
                    );
                    continue;
                }
                // Recovery budget spent: restore the last good state and
                // stop rather than keep burning epochs on a diverged run.
                w.give_up();
                if let Some(ckpt) = w.last_checkpoint() {
                    model.set_weights(ckpt.weights.clone());
                }
                galign_telemetry::counter_add("train.watchdog.aborts", 1);
                galign_telemetry::flight::record_incident(
                    "gcn.watchdog.abort",
                    vec![
                        ("epoch".to_string(), epoch.to_string()),
                        ("reason".to_string(), reason.to_string()),
                    ],
                );
                galign_telemetry::info!(
                    "train",
                    "watchdog trip at epoch {epoch} ({reason}): recovery budget spent, aborting"
                );
                break;
            }
        }
        loss_history.push(loss);

        // Snapshot *verified* state: these weights just produced a healthy
        // loss, whereas the step about to be applied has not been screened
        // yet (a bad step is only observable at the next epoch's loss).
        if let Some(w) = watchdog.as_mut() {
            if w.due(epoch) {
                w.checkpoint(epoch, model.weights().to_vec(), adam.clone(), loss);
            }
        }

        let mut params = model.weights().to_vec();
        adam.step(&mut params, &grads);
        model.set_weights(params);

        if galign_telemetry::metrics_enabled() {
            galign_telemetry::histogram_record(
                "train.epoch_secs",
                epoch_start.elapsed().as_secs_f64(),
            );
        }
        galign_telemetry::debug!("train", "epoch {epoch}: loss={loss:.6}");

        if loss < best_loss - 1e-9 {
            best_loss = loss;
            epochs_since_best = 0;
        } else {
            epochs_since_best += 1;
            if cfg.patience.is_some_and(|p| epochs_since_best >= p) {
                break;
            }
        }
    }

    let (recoveries, rollback_epochs, health) =
        watchdog.as_ref().map_or((0, 0, TrainHealth::Healthy), |w| {
            (w.recoveries(), w.rollback_epochs(), w.health())
        });
    let source_emb = model.forward_with_operator(&prepared[0].laplacian, &prepared[0].attributes);
    let target_emb = model.forward_with_operator(&prepared[1].laplacian, &prepared[1].attributes);
    Trained {
        model,
        source: source_emb,
        target: target_emb,
        report: TrainReport {
            loss_history,
            recoveries,
            rollback_epochs,
            health,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_graph::generators;

    fn small_cfg() -> TrainConfig {
        TrainConfig {
            layer_dims: vec![8, 8],
            epochs: 15,
            learning_rate: 0.02,
            num_augments: 1,
            ..TrainConfig::default()
        }
    }

    fn sample_pair(seed: u64) -> (AttributedGraph, AttributedGraph) {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, 40, 3);
        let attrs = generators::binary_attributes(&mut rng, 40, 10, 3);
        let g = AttributedGraph::from_edges(40, &edges, attrs);
        let perm = rng.permutation(40);
        (g.permute(&perm), g)
    }

    #[test]
    fn training_reduces_loss() {
        let (s, t) = sample_pair(1);
        let mut rng = SeededRng::new(2);
        let trained = train_multi_order(&s, &t, &small_cfg(), &mut rng);
        let hist = &trained.report.loss_history;
        assert_eq!(hist.len(), 15);
        assert!(
            trained.report.final_loss() < hist[0],
            "loss did not decrease: {hist:?}"
        );
        assert!(hist.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn embeddings_have_expected_shapes() {
        let (s, t) = sample_pair(3);
        let mut rng = SeededRng::new(4);
        let trained = train_multi_order(&s, &t, &small_cfg(), &mut rng);
        assert_eq!(trained.source.num_gcn_layers(), 2);
        assert_eq!(trained.source.layer(1).shape(), (40, 8));
        assert_eq!(trained.target.layer(2).shape(), (40, 8));
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, t) = sample_pair(5);
        let run = |seed| {
            let mut rng = SeededRng::new(seed);
            train_multi_order(&s, &t, &small_cfg(), &mut rng)
                .report
                .loss_history
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "attribute dimensions must match")]
    fn rejects_mismatched_attribute_spaces() {
        let (s, _) = sample_pair(6);
        let t = AttributedGraph::from_edges_featureless(10, &[(0, 1)]);
        let mut rng = SeededRng::new(7);
        train_multi_order(&s, &t, &small_cfg(), &mut rng);
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let (s, t) = sample_pair(10);
        let mut rng = SeededRng::new(11);
        // Learning rate 0 means no improvement after epoch 1 — patience 2
        // must stop the run far short of the epoch budget.
        let cfg = TrainConfig {
            learning_rate: 0.0,
            epochs: 50,
            patience: Some(2),
            ..small_cfg()
        };
        let trained = train_multi_order(&s, &t, &cfg, &mut rng);
        assert!(
            trained.report.loss_history.len() <= 4,
            "ran {} epochs",
            trained.report.loss_history.len()
        );
    }

    #[test]
    fn zero_epochs_returns_initialised_model() {
        let (s, t) = sample_pair(8);
        let mut rng = SeededRng::new(9);
        let cfg = TrainConfig {
            epochs: 0,
            ..small_cfg()
        };
        let trained = train_multi_order(&s, &t, &cfg, &mut rng);
        assert!(trained.report.loss_history.is_empty());
        assert_eq!(trained.report.health, TrainHealth::Healthy);
        assert_eq!(trained.report.recoveries, 0);
        assert_eq!(trained.source.node_count(), 40);
    }

    #[test]
    fn healthy_run_reports_healthy_with_no_recoveries() {
        let (s, t) = sample_pair(12);
        let mut rng = SeededRng::new(13);
        let trained = train_multi_order(&s, &t, &small_cfg(), &mut rng);
        assert_eq!(trained.report.health, TrainHealth::Healthy);
        assert_eq!(trained.report.recoveries, 0);
        assert_eq!(trained.report.rollback_epochs, 0);
    }

    #[test]
    fn watchdog_recovers_from_lr_driven_divergence() {
        let (s, t) = sample_pair(20);
        let mut rng = SeededRng::new(21);
        // An absurd learning rate makes the first step catapult the
        // weights; the watchdog must detect the divergence, roll back to
        // the verified pre-step snapshot, and back the rate off until the
        // run stabilises.
        let cfg = TrainConfig {
            learning_rate: 50.0,
            epochs: 20,
            watchdog: Some(WatchdogConfig {
                checkpoint_every: 1,
                max_recoveries: 10,
                lr_backoff: 0.05,
                spike_factor: 3.0,
                ..WatchdogConfig::default()
            }),
            ..small_cfg()
        };
        let trained = train_multi_order(&s, &t, &cfg, &mut rng);
        let report = &trained.report;
        assert!(report.recoveries >= 1, "watchdog never tripped");
        assert_eq!(report.health, TrainHealth::Recovered, "{report:?}");
        assert!(
            report.final_loss().is_finite(),
            "final loss not finite: {report:?}"
        );
        assert!(report.loss_history.iter().all(|l| l.is_finite()));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn watchdog_recovers_from_injected_nan() {
        let (s, t) = sample_pair(30);
        let mut rng = SeededRng::new(31);
        galign_telemetry::failpoint::cfg_local("gcn.train.loss", "trigger(5)").unwrap();
        let trained = train_multi_order(&s, &t, &small_cfg(), &mut rng);
        galign_telemetry::failpoint::clear_local();
        let report = &trained.report;
        assert_eq!(report.recoveries, 1, "{report:?}");
        assert_eq!(report.health, TrainHealth::Recovered);
        assert!(report.rollback_epochs >= 1);
        // The poisoned epoch is discarded, every applied epoch is finite.
        assert_eq!(report.loss_history.len(), 14);
        assert!(report.loss_history.iter().all(|l| l.is_finite()));
        assert!(report.final_loss().is_finite());
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn watchdog_opt_out_pins_nan_poisoning() {
        // The pre-watchdog trainer let a NaN loss poison every later
        // epoch; `watchdog: None` deliberately preserves that behavior.
        let (s, t) = sample_pair(32);
        let mut rng = SeededRng::new(33);
        galign_telemetry::failpoint::cfg_local("gcn.train.loss", "trigger(3)").unwrap();
        let cfg = TrainConfig {
            watchdog: None,
            ..small_cfg()
        };
        let trained = train_multi_order(&s, &t, &cfg, &mut rng);
        galign_telemetry::failpoint::clear_local();
        let report = &trained.report;
        // The NaN epoch enters the history unchallenged and the NaN
        // gradients poison the weights (later losses degenerate to 0.0
        // because NaN embeddings fail every adaptivity comparison).
        assert!(report.loss_history.iter().any(|l| l.is_nan()), "{report:?}");
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.health, TrainHealth::Healthy);
    }
}
