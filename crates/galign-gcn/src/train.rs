//! Algorithm 1: augmented learning for multi-order embeddings.
//!
//! One shared-weight GCN is trained on the source network, the target
//! network, and `num_augments` perturbed copies of each. Per epoch the
//! combined loss `J(G_s) + J(G_t)` (Eq. 10) is assembled on a fresh tape
//! and minimised with Adam. The perturbed copies enter only through the
//! adaptivity terms, exactly as in Algorithm 1 (lines 11–12 evaluate `J`
//! for `G ∈ {G_s, G_t}` only).

use crate::loss::combined_loss;
use crate::model::{Activation, GcnModel, MultiOrderEmbedding};
use galign_autograd::{Adam, Tape};
use galign_graph::{noise, AttributedGraph};
use galign_matrix::rng::SeededRng;
use galign_matrix::{Csr, Dense};

/// Hyper-parameters of the embedding trainer (defaults follow §VII-A).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Embedding dimension of each GCN layer (`k` = length). Paper default:
    /// two layers of 200.
    pub layer_dims: Vec<usize>,
    /// Number of Adam epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Loss balance γ between consistency and adaptivity (Eq. 10).
    pub gamma: f64,
    /// σ_< threshold of the adaptivity loss (Eq. 9).
    pub adaptivity_threshold: f64,
    /// Number of augmented copies per network.
    pub num_augments: usize,
    /// Structural perturbation rate p_s of the augmenter (§V-C).
    pub p_structure: f64,
    /// Attribute perturbation rate p_a of the augmenter (§V-C).
    pub p_attribute: f64,
    /// Activation σ of Eq. 1 (tanh per the paper; others for ablation).
    pub activation: Activation,
    /// Early stopping: abort when the combined loss has not improved for
    /// this many consecutive epochs (`None` = always run all epochs).
    pub patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            layer_dims: vec![200, 200],
            epochs: 20,
            learning_rate: 0.01,
            gamma: 0.8,
            adaptivity_threshold: 10.0,
            num_augments: 2,
            p_structure: 0.05,
            p_attribute: 0.05,
            activation: Activation::Tanh,
            patience: None,
        }
    }
}

/// Training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Combined loss per epoch.
    pub loss_history: Vec<f64>,
}

impl TrainReport {
    /// Final epoch loss (NaN when no epochs ran).
    pub fn final_loss(&self) -> f64 {
        self.loss_history.last().copied().unwrap_or(f64::NAN)
    }
}

/// Output of [`train_multi_order`].
#[derive(Debug, Clone)]
pub struct Trained {
    /// The shared-weight model after optimisation.
    pub model: GcnModel,
    /// Multi-order embeddings of the source network.
    pub source: MultiOrderEmbedding,
    /// Multi-order embeddings of the target network.
    pub target: MultiOrderEmbedding,
    /// Diagnostics.
    pub report: TrainReport,
}

struct PreparedGraph {
    laplacian: Csr,
    attributes: Dense,
    augmented: Vec<(Csr, Dense)>,
}

fn prepare(g: &AttributedGraph, cfg: &TrainConfig, rng: &mut SeededRng) -> PreparedGraph {
    let sp = galign_telemetry::span!("augment", copies = cfg.num_augments, nodes = g.node_count());
    let augmented = (0..cfg.num_augments)
        .map(|_| {
            let aug = noise::augment(rng, g, cfg.p_structure, cfg.p_attribute);
            (aug.normalized_laplacian(), aug.attributes().clone())
        })
        .collect();
    sp.finish();
    PreparedGraph {
        laplacian: g.normalized_laplacian(),
        attributes: g.attributes().clone(),
        augmented,
    }
}

/// Trains the shared-weight multi-order embedding model (Algorithm 1).
///
/// # Panics
/// Panics when the two networks have different attribute dimensionality
/// (attribute consistency requires a common attribute space, §II-C).
pub fn train_multi_order(
    source: &AttributedGraph,
    target: &AttributedGraph,
    cfg: &TrainConfig,
    rng: &mut SeededRng,
) -> Trained {
    assert_eq!(
        source.attr_dim(),
        target.attr_dim(),
        "source/target attribute dimensions must match"
    );
    let mut model =
        GcnModel::new(rng, source.attr_dim(), &cfg.layer_dims).with_activation(cfg.activation);
    let prepared = [prepare(source, cfg, rng), prepare(target, cfg, rng)];
    let mut adam = Adam::new(cfg.learning_rate, &model.weight_shapes());
    let mut loss_history = Vec::with_capacity(cfg.epochs);
    let mut best_loss = f64::INFINITY;
    let mut epochs_since_best = 0usize;

    for epoch in 0..cfg.epochs {
        let epoch_start = std::time::Instant::now();
        let mut tape = Tape::new();
        let weight_vars = model.weights_on_tape(&mut tape);
        let mut per_graph_losses = Vec::with_capacity(2);
        for pg in &prepared {
            let c = tape.sparse(pg.laplacian.clone());
            let layers = model.forward_on_tape(&mut tape, &weight_vars, c, &pg.attributes);
            let aug_layers: Vec<Vec<_>> = pg
                .augmented
                .iter()
                .map(|(ca, fa)| {
                    let cid = tape.sparse(ca.clone());
                    model.forward_on_tape(&mut tape, &weight_vars, cid, fa)
                })
                .collect();
            let j = combined_loss(
                &mut tape,
                &layers,
                &aug_layers,
                c,
                cfg.gamma,
                cfg.adaptivity_threshold,
            );
            per_graph_losses.push((j, 1.0));
        }
        let total = tape.weighted_sum(&per_graph_losses);
        let loss = tape.backward(total);
        loss_history.push(loss);

        let grads: Vec<Option<&Dense>> = weight_vars.iter().map(|&v| tape.grad(v)).collect();
        if galign_telemetry::metrics_enabled() {
            let grad_norm = grads
                .iter()
                .filter_map(|g| *g)
                .flat_map(|g| g.as_slice())
                .map(|&x| x * x)
                .sum::<f64>()
                .sqrt();
            galign_telemetry::gauge_set("train.loss", loss);
            galign_telemetry::gauge_set("train.lr", adam.lr());
            galign_telemetry::gauge_set("train.grad_norm", grad_norm);
        }
        let mut params = model.weights().to_vec();
        adam.step(&mut params, &grads);
        model.set_weights(params);

        if galign_telemetry::metrics_enabled() {
            galign_telemetry::histogram_record(
                "train.epoch_secs",
                epoch_start.elapsed().as_secs_f64(),
            );
        }
        galign_telemetry::debug!("train", "epoch {epoch}: loss={loss:.6}");

        if loss < best_loss - 1e-9 {
            best_loss = loss;
            epochs_since_best = 0;
        } else {
            epochs_since_best += 1;
            if cfg.patience.is_some_and(|p| epochs_since_best >= p) {
                break;
            }
        }
    }

    let source_emb = model.forward_with_operator(&prepared[0].laplacian, &prepared[0].attributes);
    let target_emb = model.forward_with_operator(&prepared[1].laplacian, &prepared[1].attributes);
    Trained {
        model,
        source: source_emb,
        target: target_emb,
        report: TrainReport { loss_history },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_graph::generators;

    fn small_cfg() -> TrainConfig {
        TrainConfig {
            layer_dims: vec![8, 8],
            epochs: 15,
            learning_rate: 0.02,
            num_augments: 1,
            ..TrainConfig::default()
        }
    }

    fn sample_pair(seed: u64) -> (AttributedGraph, AttributedGraph) {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, 40, 3);
        let attrs = generators::binary_attributes(&mut rng, 40, 10, 3);
        let g = AttributedGraph::from_edges(40, &edges, attrs);
        let perm = rng.permutation(40);
        (g.permute(&perm), g)
    }

    #[test]
    fn training_reduces_loss() {
        let (s, t) = sample_pair(1);
        let mut rng = SeededRng::new(2);
        let trained = train_multi_order(&s, &t, &small_cfg(), &mut rng);
        let hist = &trained.report.loss_history;
        assert_eq!(hist.len(), 15);
        assert!(
            trained.report.final_loss() < hist[0],
            "loss did not decrease: {hist:?}"
        );
        assert!(hist.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn embeddings_have_expected_shapes() {
        let (s, t) = sample_pair(3);
        let mut rng = SeededRng::new(4);
        let trained = train_multi_order(&s, &t, &small_cfg(), &mut rng);
        assert_eq!(trained.source.num_gcn_layers(), 2);
        assert_eq!(trained.source.layer(1).shape(), (40, 8));
        assert_eq!(trained.target.layer(2).shape(), (40, 8));
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, t) = sample_pair(5);
        let run = |seed| {
            let mut rng = SeededRng::new(seed);
            train_multi_order(&s, &t, &small_cfg(), &mut rng)
                .report
                .loss_history
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "attribute dimensions must match")]
    fn rejects_mismatched_attribute_spaces() {
        let (s, _) = sample_pair(6);
        let t = AttributedGraph::from_edges_featureless(10, &[(0, 1)]);
        let mut rng = SeededRng::new(7);
        train_multi_order(&s, &t, &small_cfg(), &mut rng);
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let (s, t) = sample_pair(10);
        let mut rng = SeededRng::new(11);
        // Learning rate 0 means no improvement after epoch 1 — patience 2
        // must stop the run far short of the epoch budget.
        let cfg = TrainConfig {
            learning_rate: 0.0,
            epochs: 50,
            patience: Some(2),
            ..small_cfg()
        };
        let trained = train_multi_order(&s, &t, &cfg, &mut rng);
        assert!(
            trained.report.loss_history.len() <= 4,
            "ran {} epochs",
            trained.report.loss_history.len()
        );
    }

    #[test]
    fn zero_epochs_returns_initialised_model() {
        let (s, t) = sample_pair(8);
        let mut rng = SeededRng::new(9);
        let cfg = TrainConfig {
            epochs: 0,
            ..small_cfg()
        };
        let trained = train_multi_order(&s, &t, &cfg, &mut rng);
        assert!(trained.report.loss_history.is_empty());
        assert!(trained.report.final_loss().is_nan());
        assert_eq!(trained.source.node_count(), 40);
    }
}
