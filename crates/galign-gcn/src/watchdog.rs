//! Training divergence watchdog: detect → roll back → back off → resume.
//!
//! GAlign's adaptivity mechanism (§IV-C) makes the *model* robust to graph
//! perturbation, but the optimisation loop itself can still diverge — a
//! NaN loss silently poisons every later epoch, and an exploding gradient
//! can fling the weights far from any useful optimum. The [`Watchdog`]
//! closes that gap at the systems level:
//!
//! 1. every `checkpoint_every` healthy epochs the trainer snapshots the
//!    model weights **and** the Adam moments into a [`Checkpoint`] (at
//!    most [`Watchdog::MAX_SNAPSHOTS`] retained, so checkpoint memory is
//!    bounded by 2× the optimiser state);
//! 2. each epoch's loss and gradient norm are screened for NaN/Inf,
//!    gradient-norm explosion and loss-spike divergence;
//! 3. on a trip, the trainer restores the newest checkpoint, multiplies
//!    the learning rate by `lr_backoff` (bounded below by `min_lr`), and
//!    resumes — up to `max_recoveries` times before giving up with
//!    [`TrainHealth::Diverged`].
//!
//! The watchdog holds no reference to the trainer; it is a pure
//! state-machine over `(epoch, loss, grad_norm)` observations plus a
//! bounded checkpoint store, which keeps it independently testable.

use galign_autograd::Adam;
use galign_matrix::Dense;

/// Watchdog tunables. Defaults are deliberately loose: they catch real
/// divergence (NaN, 1e6-scale gradients, 100x loss spikes) without
/// tripping on the noisy-but-healthy early epochs of Algorithm 1.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Snapshot the model + optimiser every this many healthy epochs.
    pub checkpoint_every: usize,
    /// Give up (health = [`TrainHealth::Diverged`]) after this many trips.
    pub max_recoveries: usize,
    /// Learning-rate multiplier applied on every trip (bounded backoff).
    pub lr_backoff: f64,
    /// Floor of the backoff schedule.
    pub min_lr: f64,
    /// Trip when `loss > spike_factor * (1 + |best loss|)` (divergence
    /// spike); `f64::INFINITY` disables the spike detector.
    pub spike_factor: f64,
    /// Trip when the global gradient norm exceeds this (explosion);
    /// `f64::INFINITY` disables the explosion detector.
    pub grad_norm_limit: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            checkpoint_every: 5,
            max_recoveries: 3,
            lr_backoff: 0.5,
            min_lr: 1e-6,
            spike_factor: 100.0,
            grad_norm_limit: 1e6,
        }
    }
}

/// Why the watchdog tripped on an epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum TripReason {
    /// The loss came back NaN or ±Inf.
    NonFiniteLoss {
        /// The offending loss value.
        loss: f64,
    },
    /// The global gradient norm exceeded `grad_norm_limit`.
    GradientExplosion {
        /// The observed norm.
        norm: f64,
    },
    /// The loss spiked past `spike_factor * (1 + |best|)`.
    LossSpike {
        /// The offending loss value.
        loss: f64,
        /// Best (lowest) finite loss seen so far.
        best: f64,
    },
}

impl std::fmt::Display for TripReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripReason::NonFiniteLoss { loss } => write!(f, "non-finite loss {loss}"),
            TripReason::GradientExplosion { norm } => {
                write!(f, "gradient norm {norm:.3e} exceeds limit")
            }
            TripReason::LossSpike { loss, best } => {
                write!(f, "loss {loss:.3e} spiked past best {best:.3e}")
            }
        }
    }
}

/// Terminal health of a training run, reported in `TrainReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainHealth {
    /// No watchdog trip occurred (also reported when the watchdog is off).
    #[default]
    Healthy,
    /// At least one trip occurred and training recovered via rollback.
    Recovered,
    /// The recovery budget ran out; the result is the last good state but
    /// the run should be treated with suspicion.
    Diverged,
}

/// A restorable snapshot of the training state: model weights plus the
/// full Adam state (first/second moments, step count, learning rate).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Epoch the snapshot was taken at (state *entering* that epoch).
    pub epoch: usize,
    /// Model weight matrices.
    pub weights: Vec<Dense>,
    /// Optimiser state (moments + step counter + lr).
    pub adam: Adam,
    /// Loss observed just before the snapshot (`INFINITY` for the initial
    /// pre-training snapshot).
    pub loss: f64,
}

/// The divergence watchdog: health screening plus a bounded checkpoint
/// ring. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    ring: Vec<Checkpoint>,
    best_loss: f64,
    recoveries: usize,
    rollback_epochs: usize,
    gave_up: bool,
}

impl Watchdog {
    /// Retained checkpoint bound: rollback only ever needs the newest
    /// snapshot, the one before it insures against a checkpoint taken just
    /// *before* slow divergence was detected.
    pub const MAX_SNAPSHOTS: usize = 2;

    /// Creates a watchdog (no checkpoints yet).
    #[must_use]
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            ring: Vec::with_capacity(Self::MAX_SNAPSHOTS),
            best_loss: f64::INFINITY,
            recoveries: 0,
            rollback_epochs: 0,
            gave_up: false,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Trips taken so far.
    #[must_use]
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// Total epochs of progress discarded by rollbacks.
    #[must_use]
    pub fn rollback_epochs(&self) -> usize {
        self.rollback_epochs
    }

    /// Number of retained checkpoints (≤ [`Self::MAX_SNAPSHOTS`]).
    #[must_use]
    pub fn snapshots(&self) -> usize {
        self.ring.len()
    }

    /// The newest retained checkpoint, if any.
    #[must_use]
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.ring.last()
    }

    /// Whether the trainer should snapshot after finishing `epoch`
    /// healthily (the cadence of `checkpoint_every`, which a value of 0
    /// turns into every epoch).
    #[must_use]
    pub fn due(&self, epoch: usize) -> bool {
        (epoch + 1).is_multiple_of(self.cfg.checkpoint_every.max(1))
    }

    /// Stores a checkpoint, evicting the oldest beyond
    /// [`Self::MAX_SNAPSHOTS`].
    pub fn checkpoint(&mut self, epoch: usize, weights: Vec<Dense>, adam: Adam, loss: f64) {
        if self.ring.len() == Self::MAX_SNAPSHOTS {
            self.ring.remove(0);
        }
        self.ring.push(Checkpoint {
            epoch,
            weights,
            adam,
            loss,
        });
    }

    /// Screens one epoch's observations. `Some(reason)` means the epoch is
    /// poisoned and the caller must not apply its gradient step; healthy
    /// observations update the best-loss reference.
    pub fn check(&mut self, loss: f64, grad_norm: f64) -> Option<TripReason> {
        if !loss.is_finite() || grad_norm.is_nan() {
            return Some(TripReason::NonFiniteLoss { loss });
        }
        if grad_norm > self.cfg.grad_norm_limit {
            return Some(TripReason::GradientExplosion { norm: grad_norm });
        }
        if self.best_loss.is_finite() && loss > self.cfg.spike_factor * (1.0 + self.best_loss.abs())
        {
            return Some(TripReason::LossSpike {
                loss,
                best: self.best_loss,
            });
        }
        self.best_loss = self.best_loss.min(loss);
        None
    }

    /// Whether the recovery budget still allows another rollback.
    #[must_use]
    pub fn can_recover(&self) -> bool {
        self.recoveries < self.cfg.max_recoveries
    }

    /// Consumes one recovery: returns the newest checkpoint to restore and
    /// accounts the epochs of progress lost relative to `epoch`. Returns
    /// `None` when no checkpoint exists (the caller then keeps the current
    /// weights and only backs off the learning rate).
    pub fn rollback(&mut self, epoch: usize) -> Option<&Checkpoint> {
        self.recoveries += 1;
        let ckpt = self.ring.last()?;
        self.rollback_epochs += epoch.saturating_sub(ckpt.epoch);
        Some(ckpt)
    }

    /// Learning rate after one backoff step from `lr`.
    #[must_use]
    pub fn backed_off_lr(&self, lr: f64) -> f64 {
        (lr * self.cfg.lr_backoff).max(self.cfg.min_lr)
    }

    /// Records that a trip occurred with no recovery budget left; the run
    /// is terminally [`TrainHealth::Diverged`].
    pub fn give_up(&mut self) {
        self.gave_up = true;
    }

    /// Terminal health for the report.
    #[must_use]
    pub fn health(&self) -> TrainHealth {
        if self.gave_up {
            TrainHealth::Diverged
        } else if self.recoveries > 0 {
            TrainHealth::Recovered
        } else {
            TrainHealth::Healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dog() -> Watchdog {
        Watchdog::new(WatchdogConfig::default())
    }

    fn snapshot(w: &mut Watchdog, epoch: usize) {
        let adam = Adam::new(0.01, &[(2, 2)]);
        w.checkpoint(epoch, vec![Dense::zeros(2, 2)], adam, 1.0);
    }

    #[test]
    fn healthy_observations_do_not_trip() {
        let mut w = dog();
        for (epoch, loss) in [5.0, 4.0, 3.5, 3.6, 3.2].iter().enumerate() {
            assert_eq!(w.check(*loss, 10.0), None, "epoch {epoch}");
        }
        assert_eq!(w.health(), TrainHealth::Healthy);
        assert_eq!(w.recoveries(), 0);
    }

    #[test]
    fn nan_and_inf_losses_trip() {
        let mut w = dog();
        assert!(matches!(
            w.check(f64::NAN, 1.0),
            Some(TripReason::NonFiniteLoss { .. })
        ));
        assert!(matches!(
            w.check(f64::INFINITY, 1.0),
            Some(TripReason::NonFiniteLoss { .. })
        ));
        // NaN gradients with a finite loss are just as poisonous.
        assert!(matches!(
            w.check(1.0, f64::NAN),
            Some(TripReason::NonFiniteLoss { .. })
        ));
    }

    #[test]
    fn gradient_explosion_trips() {
        let mut w = dog();
        assert_eq!(w.check(1.0, 10.0), None);
        assert!(matches!(
            w.check(1.0, 1e9),
            Some(TripReason::GradientExplosion { .. })
        ));
    }

    #[test]
    fn loss_spike_trips_only_after_a_baseline() {
        let mut w = dog();
        // First observation can be huge without tripping (no baseline yet).
        assert_eq!(w.check(1e6, 1.0), None);
        assert_eq!(w.check(2.0, 1.0), None);
        let trip = w.check(1e7, 1.0);
        assert!(
            matches!(trip, Some(TripReason::LossSpike { .. })),
            "{trip:?}"
        );
    }

    #[test]
    fn checkpoint_ring_is_bounded_to_two() {
        let mut w = dog();
        for epoch in [5, 10, 15, 20] {
            snapshot(&mut w, epoch);
        }
        assert_eq!(w.snapshots(), Watchdog::MAX_SNAPSHOTS);
        // Newest is returned by rollback; epochs lost are accounted.
        let ckpt = w.rollback(23).expect("has checkpoint");
        assert_eq!(ckpt.epoch, 20);
        assert_eq!(w.rollback_epochs(), 3);
        assert_eq!(w.recoveries(), 1);
    }

    #[test]
    fn rollback_without_checkpoint_still_counts() {
        let mut w = dog();
        assert!(w.rollback(4).is_none());
        assert_eq!(w.recoveries(), 1);
        assert_eq!(w.rollback_epochs(), 0);
    }

    #[test]
    fn recovery_budget_and_health_transitions() {
        let mut w = Watchdog::new(WatchdogConfig {
            max_recoveries: 2,
            ..WatchdogConfig::default()
        });
        assert_eq!(w.health(), TrainHealth::Healthy);
        snapshot(&mut w, 0);
        assert!(w.can_recover());
        w.rollback(1);
        assert_eq!(w.health(), TrainHealth::Recovered);
        w.rollback(2);
        // Budget spent but no further trip: still a recovered run.
        assert!(!w.can_recover());
        assert_eq!(w.health(), TrainHealth::Recovered);
        // A trip with no budget left is terminal.
        w.give_up();
        assert_eq!(w.health(), TrainHealth::Diverged);
    }

    #[test]
    fn lr_backoff_is_bounded_below() {
        let w = Watchdog::new(WatchdogConfig {
            lr_backoff: 0.5,
            min_lr: 1e-3,
            ..WatchdogConfig::default()
        });
        assert_eq!(w.backed_off_lr(0.01), 5e-3);
        assert_eq!(w.backed_off_lr(1e-3), 1e-3);
        assert_eq!(w.backed_off_lr(1e-9), 1e-3);
    }

    #[test]
    fn checkpoint_cadence() {
        let w = Watchdog::new(WatchdogConfig {
            checkpoint_every: 5,
            ..WatchdogConfig::default()
        });
        let due: Vec<usize> = (0..12).filter(|&e| w.due(e)).collect();
        assert_eq!(due, vec![4, 9]);
        // checkpoint_every = 0 degrades to every epoch instead of dividing
        // by zero.
        let w0 = Watchdog::new(WatchdogConfig {
            checkpoint_every: 0,
            ..WatchdogConfig::default()
        });
        assert!((0..3).all(|e| w0.due(e)));
    }

    #[test]
    fn spike_detector_can_be_disabled() {
        let mut w = Watchdog::new(WatchdogConfig {
            spike_factor: f64::INFINITY,
            grad_norm_limit: f64::INFINITY,
            ..WatchdogConfig::default()
        });
        assert_eq!(w.check(1.0, 1.0), None);
        assert_eq!(w.check(1e300, 1e300), None);
        // NaN still trips — there is no sane reason to disable that.
        assert!(w.check(f64::NAN, 1.0).is_some());
    }
}
