//! Ground-truth anchor links between two networks (§II-B).

use std::collections::HashMap;

/// A set of ground-truth anchor links `(v, v')` with `v` in the source
/// network and `v'` in the target network.
///
/// The paper's alignment setting is one-to-one on the anchored subset, so
/// lookups are exposed in both directions.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AnchorLinks {
    pairs: Vec<(usize, usize)>,
}

impl AnchorLinks {
    /// Creates an anchor set from pairs, deduplicating exact duplicates.
    pub fn new(mut pairs: Vec<(usize, usize)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        AnchorLinks { pairs }
    }

    /// The identity alignment on `0..n` (used when the target network is a
    /// noised copy of the source with node identity preserved, §VII-A).
    pub fn identity(n: usize) -> Self {
        AnchorLinks {
            pairs: (0..n).map(|i| (i, i)).collect(),
        }
    }

    /// Anchor pairs in ascending source order.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Number of anchor links.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when there are no anchors.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Source→target lookup map.
    pub fn source_to_target(&self) -> HashMap<usize, usize> {
        self.pairs.iter().copied().collect()
    }

    /// Target→source lookup map.
    pub fn target_to_source(&self) -> HashMap<usize, usize> {
        self.pairs.iter().map(|&(s, t)| (t, s)).collect()
    }

    /// Splits into (train, test) by taking `ratio` of the anchors (in the
    /// order given by `order`, a permutation of `0..len`) as supervision —
    /// the 10 % training split the paper grants PALE/CENALP/FINAL/IsoRank.
    ///
    /// # Panics
    /// Panics unless `order` is a permutation of `0..len`.
    pub fn split(&self, ratio: f64, order: &[usize]) -> (AnchorLinks, AnchorLinks) {
        assert_eq!(order.len(), self.pairs.len(), "order length mismatch");
        let k = ((self.pairs.len() as f64) * ratio.clamp(0.0, 1.0)).round() as usize;
        let train: Vec<_> = order[..k].iter().map(|&i| self.pairs[i]).collect();
        let test: Vec<_> = order[k..].iter().map(|&i| self.pairs[i]).collect();
        (AnchorLinks::new(train), AnchorLinks::new(test))
    }

    /// Applies relabelings to both sides, dropping pairs whose endpoint is
    /// absent from the corresponding map (e.g. after subgraph extraction).
    pub fn relabel(
        &self,
        source_map: &HashMap<usize, usize>,
        target_map: &HashMap<usize, usize>,
    ) -> AnchorLinks {
        AnchorLinks::new(
            self.pairs
                .iter()
                .filter_map(|(s, t)| Some((*source_map.get(s)?, *target_map.get(t)?)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_order() {
        let a = AnchorLinks::new(vec![(3, 1), (0, 2), (3, 1)]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.pairs(), &[(0, 2), (3, 1)]);
        assert!(!a.is_empty());
    }

    #[test]
    fn identity_maps() {
        let a = AnchorLinks::identity(3);
        assert_eq!(a.source_to_target()[&2], 2);
        assert_eq!(a.target_to_source()[&1], 1);
    }

    #[test]
    fn split_ratio() {
        let a = AnchorLinks::identity(10);
        let order: Vec<usize> = (0..10).collect();
        let (train, test) = a.split(0.3, &order);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 7);
        let (all, none) = a.split(1.0, &order);
        assert_eq!(all.len(), 10);
        assert!(none.is_empty());
    }

    #[test]
    fn relabel_drops_missing() {
        let a = AnchorLinks::new(vec![(0, 0), (1, 1), (2, 2)]);
        let smap: HashMap<usize, usize> = [(0, 10), (1, 11)].into_iter().collect();
        let tmap: HashMap<usize, usize> = [(0, 20), (2, 22)].into_iter().collect();
        let r = a.relabel(&smap, &tmap);
        assert_eq!(r.pairs(), &[(10, 20)]);
    }
}
