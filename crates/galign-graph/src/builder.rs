//! Incremental construction of attributed graphs.

use crate::graph::AttributedGraph;
use galign_matrix::Dense;

/// Incremental builder for [`AttributedGraph`].
///
/// Useful when the node count is not known upfront (e.g. parsing edge
/// lists): nodes are created implicitly by `ensure_node`/`add_edge`, and
/// attribute rows may be attached at any time before [`GraphBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(usize, usize)>,
    attrs: Vec<(usize, Vec<f64>)>,
    attr_dim: Option<usize>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized to `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        GraphBuilder {
            n,
            ..Self::default()
        }
    }

    /// Grows the node set so `v` exists; returns `v` for chaining.
    pub fn ensure_node(&mut self, v: usize) -> usize {
        self.n = self.n.max(v + 1);
        v
    }

    /// Adds the undirected edge `{u, v}`, growing the node set as needed.
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.ensure_node(u);
        self.ensure_node(v);
        self.edges.push((u, v));
        self
    }

    /// Attaches an attribute row to node `v`.
    ///
    /// # Panics
    /// Panics when the dimensionality disagrees with earlier rows.
    pub fn set_attr(&mut self, v: usize, attr: Vec<f64>) -> &mut Self {
        self.ensure_node(v);
        match self.attr_dim {
            None => self.attr_dim = Some(attr.len()),
            Some(d) => assert_eq!(d, attr.len(), "inconsistent attribute dimension"),
        }
        self.attrs.push((v, attr));
        self
    }

    /// Current node count.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Finalises the graph. Nodes without attributes get zero rows; when no
    /// attributes were supplied at all, a featureless all-ones column is
    /// used (the standard GCN convention).
    pub fn build(self) -> AttributedGraph {
        let attrs = match self.attr_dim {
            None => Dense::filled(self.n, 1, 1.0),
            Some(d) => {
                let mut m = Dense::zeros(self.n, d);
                for (v, row) in &self.attrs {
                    m.row_mut(*v).copy_from_slice(row);
                }
                m
            }
        };
        AttributedGraph::from_edges(self.n, &self.edges, attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_featureless_graph() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).add_edge(1, 4);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.attr_dim(), 1);
        assert_eq!(g.attributes().get(3, 0), 1.0);
    }

    #[test]
    fn builds_attributed_graph_with_defaults() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(0, 1);
        b.set_attr(0, vec![1.0, 2.0]);
        let g = b.build();
        assert_eq!(g.attr_dim(), 2);
        assert_eq!(g.attributes().row(0), &[1.0, 2.0]);
        assert_eq!(g.attributes().row(2), &[0.0, 0.0]); // defaulted
    }

    #[test]
    #[should_panic(expected = "inconsistent attribute dimension")]
    fn rejects_ragged_attributes() {
        let mut b = GraphBuilder::new();
        b.set_attr(0, vec![1.0]);
        b.set_attr(1, vec![1.0, 2.0]);
    }

    #[test]
    fn ensure_node_isolated() {
        let mut b = GraphBuilder::new();
        b.ensure_node(7);
        let g = b.build();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 0);
    }
}
