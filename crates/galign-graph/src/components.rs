//! Breadth-first traversal utilities: connected components, k-hop
//! neighbourhoods, eccentricity estimates.
//!
//! REGAL's xNetMF features need per-node k-hop degree histograms; the
//! dataset generators use largest-component extraction to keep stand-ins
//! connected like their real counterparts.

use crate::graph::AttributedGraph;
use std::collections::VecDeque;

/// Labels each node with a component id (`0..num_components`), ids assigned
/// in discovery order.
pub fn connected_components(g: &AttributedGraph) -> Vec<usize> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Node ids of the largest connected component, ascending.
pub fn largest_component(g: &AttributedGraph) -> Vec<usize> {
    let comp = connected_components(g);
    let num = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; num];
    for &c in &comp {
        sizes[c] += 1;
    }
    let best = (0..num).max_by_key(|&c| sizes[c]).unwrap_or(0);
    (0..g.node_count()).filter(|&v| comp[v] == best).collect()
}

/// BFS distances from `start`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &AttributedGraph, start: usize) -> Vec<usize> {
    let n = g.node_count();
    let mut dist = vec![usize::MAX; n];
    dist[start] = 0;
    let mut queue = VecDeque::from([start]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes grouped by hop distance from `start`, up to `max_hops`
/// (`result[h]` = nodes at exactly `h` hops, `result[0] = [start]`).
pub fn khop_layers(g: &AttributedGraph, start: usize, max_hops: usize) -> Vec<Vec<usize>> {
    let dist = bfs_distances(g, start);
    let mut layers = vec![Vec::new(); max_hops + 1];
    for (v, &d) in dist.iter().enumerate() {
        if d <= max_hops {
            layers[d].push(v);
        }
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_components() -> AttributedGraph {
        // 0-1-2 path and 3-4 edge; node 5 isolated.
        AttributedGraph::from_edges_featureless(6, &[(0, 1), (1, 2), (3, 4)])
    }

    #[test]
    fn components_labelling() {
        let comp = connected_components(&two_components());
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[5]);
    }

    #[test]
    fn largest_component_selection() {
        let lc = largest_component(&two_components());
        assert_eq!(lc, vec![0, 1, 2]);
    }

    #[test]
    fn bfs_distances_path() {
        let g = AttributedGraph::from_edges_featureless(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        let d = bfs_distances(&two_components(), 0);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn khop_layers_structure() {
        let g = AttributedGraph::from_edges_featureless(5, &[(0, 1), (0, 2), (1, 3), (3, 4)]);
        let layers = khop_layers(&g, 0, 2);
        assert_eq!(layers[0], vec![0]);
        assert_eq!(layers[1], vec![1, 2]);
        assert_eq!(layers[2], vec![3]);
    }

    #[test]
    fn empty_graph() {
        let g = AttributedGraph::from_edges_featureless(0, &[]);
        assert!(connected_components(&g).is_empty());
        assert!(largest_component(&g).is_empty());
    }
}
