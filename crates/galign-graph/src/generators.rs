//! Random graph generators used to synthesise dataset stand-ins.
//!
//! The evaluation datasets (Table II) range from sparse social networks
//! (average degree ≈ 2–4) to dense co-actor networks (average degree ≈ 41).
//! The generators here cover that spectrum:
//!
//! * [`erdos_renyi_gnm`] — uniform random graphs with an exact edge count.
//! * [`barabasi_albert`] — preferential attachment (heavy-tailed degrees,
//!   the regime of social networks like Douban/Flickr).
//! * [`watts_strogatz`] — small-world rewiring (high clustering, used for
//!   the brain/email stand-ins).
//! * [`powerlaw_cluster`] — Holme–Kim preferential attachment with triad
//!   closure.
//! * [`co_membership`] — bipartite projection of nodes onto shared groups
//!   (movies sharing actors → near-clique structure of Allmovie/Imdb).
//!
//! Attribute samplers generate the two attribute families the paper's noise
//! model distinguishes: sparse binary attributes and real-valued attributes.

use crate::graph::AttributedGraph;
use galign_matrix::rng::SeededRng;
use galign_matrix::Dense;
use std::collections::HashSet;

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct undirected edges (capped at
/// the complete graph).
pub fn erdos_renyi_gnm(rng: &mut SeededRng, n: usize, m: usize) -> Vec<(usize, usize)> {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut edges = HashSet::with_capacity(m);
    while edges.len() < m {
        let u = rng.index(n);
        let v = rng.index(n);
        if u != v {
            edges.insert((u.min(v), u.max(v)));
        }
    }
    let mut out: Vec<_> = edges.into_iter().collect();
    out.sort_unstable();
    out
}

/// Erdős–Rényi `G(n, p)`.
pub fn erdos_renyi_gnp(rng: &mut SeededRng, n: usize, p: f64) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.bernoulli(p) {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_attach` existing nodes with probability proportional to degree.
pub fn barabasi_albert(rng: &mut SeededRng, n: usize, m_attach: usize) -> Vec<(usize, usize)> {
    let m_attach = m_attach.max(1);
    let seed = (m_attach + 1).min(n);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Repeated-endpoint list implements degree-proportional sampling.
    let mut targets: Vec<usize> = Vec::new();
    for u in 0..seed {
        for v in (u + 1)..seed {
            edges.push((u, v));
            targets.push(u);
            targets.push(v);
        }
    }
    for v in seed..n {
        // Vec + linear scan keeps iteration order deterministic (std
        // HashSet order is randomised per instance, which would leak into
        // the degree-proportional sampling stream).
        let mut chosen: Vec<usize> = Vec::with_capacity(m_attach);
        let mut guard = 0;
        while chosen.len() < m_attach.min(v) && guard < 50 * m_attach {
            guard += 1;
            let t = if targets.is_empty() {
                rng.index(v)
            } else {
                targets[rng.index(targets.len())]
            };
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((t, v));
            targets.push(t);
            targets.push(v);
        }
    }
    edges
}

/// Watts–Strogatz small world: ring lattice with `k` neighbours per side
/// rewired with probability `beta`.
pub fn watts_strogatz(rng: &mut SeededRng, n: usize, k: usize, beta: f64) -> Vec<(usize, usize)> {
    if n < 2 {
        return Vec::new();
    }
    let k = k.clamp(1, (n - 1) / 2).max(1);
    let mut edges = HashSet::new();
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            let (a, b) = (u.min(v), u.max(v));
            edges.insert((a, b));
        }
    }
    let mut original: Vec<(usize, usize)> = edges.iter().copied().collect();
    // Sort so the rewiring RNG stream does not depend on HashSet order.
    original.sort_unstable();
    for (u, v) in original {
        if rng.bernoulli(beta) {
            // Rewire the far endpoint to a uniform non-neighbour.
            let mut guard = 0;
            loop {
                guard += 1;
                let w = rng.index(n);
                let cand = (u.min(w), u.max(w));
                if w != u && !edges.contains(&cand) {
                    edges.remove(&(u.min(v), u.max(v)));
                    edges.insert(cand);
                    break;
                }
                if guard > 100 {
                    break;
                }
            }
        }
    }
    let mut out: Vec<_> = edges.into_iter().collect();
    out.sort_unstable();
    out
}

/// Holme–Kim power-law cluster graph: BA attachment where each extra link
/// closes a triangle with probability `p_triad`.
pub fn powerlaw_cluster(
    rng: &mut SeededRng,
    n: usize,
    m_attach: usize,
    p_triad: f64,
) -> Vec<(usize, usize)> {
    let m_attach = m_attach.max(1);
    let seed = (m_attach + 1).min(n);
    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    let mut targets: Vec<usize> = Vec::new();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let connect = |edges: &mut HashSet<(usize, usize)>,
                   adj: &mut Vec<Vec<usize>>,
                   targets: &mut Vec<usize>,
                   u: usize,
                   v: usize|
     -> bool {
        if u == v || edges.contains(&(u.min(v), u.max(v))) {
            return false;
        }
        edges.insert((u.min(v), u.max(v)));
        adj[u].push(v);
        adj[v].push(u);
        targets.push(u);
        targets.push(v);
        true
    };
    for u in 0..seed {
        for v in (u + 1)..seed {
            connect(&mut edges, &mut adj, &mut targets, u, v);
        }
    }
    for v in seed..n {
        let mut added = 0usize;
        let mut last: Option<usize> = None;
        let mut guard = 0;
        while added < m_attach.min(v) && guard < 100 * m_attach {
            guard += 1;
            // Triad step: link to a neighbour of the previous target.
            if let Some(prev) = last {
                if rng.bernoulli(p_triad) && !adj[prev].is_empty() {
                    let w = adj[prev][rng.index(adj[prev].len())];
                    if connect(&mut edges, &mut adj, &mut targets, v, w) {
                        added += 1;
                        last = Some(w);
                        continue;
                    }
                }
            }
            let t = if targets.is_empty() {
                rng.index(v)
            } else {
                targets[rng.index(targets.len())]
            };
            if connect(&mut edges, &mut adj, &mut targets, v, t) {
                added += 1;
                last = Some(t);
            }
        }
    }
    let mut out: Vec<_> = edges.into_iter().collect();
    out.sort_unstable();
    out
}

/// Co-membership graph: assigns each node to `memberships_per_node` of
/// `n_groups` groups (Zipf-ish sizes) and links nodes sharing a group —
/// the structure of co-actor movie networks (Allmovie/Imdb stand-ins).
///
/// Returns the edges and the group assignment (usable as categorical
/// attributes).
pub fn co_membership(
    rng: &mut SeededRng,
    n: usize,
    n_groups: usize,
    memberships_per_node: usize,
) -> (Vec<(usize, usize)>, Vec<Vec<usize>>) {
    let n_groups = n_groups.max(1);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    let mut node_groups: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Zipf-like group popularity so some "actors" appear in many "movies".
    let weights: Vec<f64> = (0..n_groups).map(|g| 1.0 / (g as f64 + 1.0)).collect();
    for v in 0..n {
        let mut mine: Vec<usize> = Vec::new();
        let mut guard = 0;
        while mine.len() < memberships_per_node.min(n_groups) && guard < 100 {
            guard += 1;
            let g = rng.weighted_index(&weights);
            if !mine.contains(&g) {
                mine.push(g);
            }
        }
        for g in mine {
            groups[g].push(v);
            node_groups[v].push(g);
        }
    }
    let mut edges = HashSet::new();
    for members in &groups {
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                edges.insert((u.min(v), u.max(v)));
            }
        }
    }
    let mut out: Vec<_> = edges.into_iter().collect();
    out.sort_unstable();
    (out, node_groups)
}

/// Sparse binary attribute matrix: each node activates `active_per_node`
/// of `dim` binary attributes (e.g. Douban's 538 tag attributes).
pub fn binary_attributes(
    rng: &mut SeededRng,
    n: usize,
    dim: usize,
    active_per_node: usize,
) -> Dense {
    let mut f = Dense::zeros(n, dim);
    for v in 0..n {
        for j in rng.sample_indices(dim, active_per_node.min(dim)) {
            f.set(v, j, 1.0);
        }
    }
    f
}

/// Real-valued attribute matrix with per-node community-correlated signal:
/// node `v` draws attributes from a Gaussian centred at one of
/// `n_profiles` random profile vectors.
pub fn real_attributes(rng: &mut SeededRng, n: usize, dim: usize, n_profiles: usize) -> Dense {
    let n_profiles = n_profiles.max(1);
    let profiles = rng.uniform_matrix(n_profiles, dim, 0.0, 1.0);
    Dense::from_fn(n, dim, |v, j| {
        let p = v % n_profiles;
        (profiles.get(p, j) + rng.normal_with(0.0, 0.1)).clamp(0.0, 1.0)
    })
}

/// Categorical one-hot attributes from group assignments (first membership
/// wins), mapped onto `dim` buckets — mirrors the movie-genre attributes of
/// the Allmovie/Imdb networks.
pub fn categorical_attributes(node_groups: &[Vec<usize>], dim: usize) -> Dense {
    let mut f = Dense::zeros(node_groups.len(), dim.max(1));
    for (v, gs) in node_groups.iter().enumerate() {
        if let Some(&g) = gs.first() {
            f.set(v, g % dim.max(1), 1.0);
        }
    }
    f
}

/// Convenience: assembles an [`AttributedGraph`] from generator output.
pub fn assemble(n: usize, edges: Vec<(usize, usize)>, attrs: Dense) -> AttributedGraph {
    AttributedGraph::from_edges(n, &edges, attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = SeededRng::new(1);
        let e = erdos_renyi_gnm(&mut rng, 50, 100);
        assert_eq!(e.len(), 100);
        // Capped at complete graph.
        let e2 = erdos_renyi_gnm(&mut rng, 4, 100);
        assert_eq!(e2.len(), 6);
    }

    #[test]
    fn gnp_expected_density() {
        let mut rng = SeededRng::new(2);
        let e = erdos_renyi_gnp(&mut rng, 60, 0.2);
        let max = 60 * 59 / 2;
        let frac = e.len() as f64 / max as f64;
        assert!((frac - 0.2).abs() < 0.05, "density {frac}");
    }

    #[test]
    fn ba_heavy_tail() {
        let mut rng = SeededRng::new(3);
        let n = 300;
        let edges = barabasi_albert(&mut rng, n, 3);
        let g = AttributedGraph::from_edges_featureless(n, &edges);
        let degs = g.degrees();
        let max_deg = *degs.iter().max().unwrap();
        let avg = g.avg_degree();
        // Preferential attachment yields hubs far above the mean degree.
        assert!(max_deg as f64 > 3.0 * avg, "max {max_deg} avg {avg}");
        // Graph is connected by construction (every node attaches).
        let comps = crate::components::connected_components(&g);
        assert_eq!(comps.iter().max().copied().unwrap_or(0), 0);
    }

    #[test]
    fn ws_degree_regularity_without_rewiring() {
        let mut rng = SeededRng::new(4);
        let edges = watts_strogatz(&mut rng, 30, 2, 0.0);
        let g = AttributedGraph::from_edges_featureless(30, &edges);
        assert!(g.degrees().iter().all(|&d| d == 4));
    }

    #[test]
    fn ws_rewiring_preserves_edge_count() {
        let mut rng = SeededRng::new(5);
        let e0 = watts_strogatz(&mut rng, 40, 3, 0.0).len();
        let e1 = watts_strogatz(&mut rng, 40, 3, 0.5).len();
        assert_eq!(e0, e1);
    }

    #[test]
    fn powerlaw_cluster_has_triangles() {
        let mut rng = SeededRng::new(6);
        let n = 200;
        let edges = powerlaw_cluster(&mut rng, n, 3, 0.8);
        let g = AttributedGraph::from_edges_featureless(n, &edges);
        // Count triangles crudely.
        let mut triangles = 0usize;
        for (u, v) in g.edges() {
            for &w in g.neighbors(u) {
                if w != v && g.has_edge(v, w) {
                    triangles += 1;
                }
            }
        }
        assert!(triangles > 0);
    }

    #[test]
    fn co_membership_forms_cliques() {
        let mut rng = SeededRng::new(7);
        let (edges, node_groups) = co_membership(&mut rng, 100, 20, 2);
        assert!(!edges.is_empty());
        assert_eq!(node_groups.len(), 100);
        // Dense: average degree well above a sparse graph's.
        let g = AttributedGraph::from_edges_featureless(100, &edges);
        assert!(g.avg_degree() > 4.0);
    }

    #[test]
    fn binary_attrs_row_sums() {
        let mut rng = SeededRng::new(8);
        let f = binary_attributes(&mut rng, 20, 30, 5);
        for i in 0..20 {
            let s: f64 = f.row(i).iter().sum();
            assert_eq!(s, 5.0);
            assert!(f.row(i).iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn real_attrs_bounded() {
        let mut rng = SeededRng::new(9);
        let f = real_attributes(&mut rng, 15, 6, 3);
        assert!(f.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn categorical_attrs_one_hot() {
        let f = categorical_attributes(&[vec![2], vec![], vec![0, 5]], 4);
        assert_eq!(f.row(0), &[0.0, 0.0, 1.0, 0.0]);
        assert_eq!(f.row(1), &[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(f.row(2), &[1.0, 0.0, 0.0, 0.0]);
    }
}
