//! The attributed-network data model of §II-A.

use galign_matrix::{Coo, Csr, Dense};

/// An undirected attributed network `G = (V, A, F)`.
///
/// * `A` is stored as a symmetric CSR matrix with unit weights and **no
///   self-loops**; the self-loop-augmented `Â = A + I` of Eq. 1 is derived
///   on demand.
/// * `F` is an `n×m` dense attribute matrix holding application-domain
///   attributes (the paper stresses these carry no topology information).
#[derive(Debug, Clone)]
pub struct AttributedGraph {
    adjacency: Csr,
    attributes: Dense,
}

impl AttributedGraph {
    /// Builds a graph from an undirected edge list and an attribute matrix.
    ///
    /// Edges are symmetrised and deduplicated; self-loops are dropped.
    ///
    /// # Panics
    /// Panics if an endpoint is `≥ n` or `attributes.rows() != n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)], attributes: Dense) -> Self {
        assert_eq!(
            attributes.rows(),
            n,
            "attribute matrix must have one row per node"
        );
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        let mut coo = Coo::new(n, n);
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u}, {v}) out of range for n={n}");
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                coo.push(key.0, key.1, 1.0).expect("checked above");
                coo.push(key.1, key.0, 1.0).expect("checked above");
            }
        }
        AttributedGraph {
            adjacency: coo.to_csr(),
            attributes,
        }
    }

    /// Builds a graph with no attributes (an all-ones single column is used,
    /// the standard featureless-GCN convention).
    pub fn from_edges_featureless(n: usize, edges: &[(usize, usize)]) -> Self {
        Self::from_edges(n, edges, Dense::filled(n, 1, 1.0))
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adjacency.nnz() / 2
    }

    /// Attribute dimensionality `m`.
    #[inline]
    pub fn attr_dim(&self) -> usize {
        self.attributes.cols()
    }

    /// The symmetric adjacency matrix `A` (no self-loops).
    #[inline]
    pub fn adjacency(&self) -> &Csr {
        &self.adjacency
    }

    /// The attribute matrix `F`.
    #[inline]
    pub fn attributes(&self) -> &Dense {
        &self.attributes
    }

    /// Replaces the attribute matrix (used by noise injection).
    ///
    /// # Panics
    /// Panics when the row count changes.
    pub fn set_attributes(&mut self, attributes: Dense) {
        assert_eq!(attributes.rows(), self.node_count());
        self.attributes = attributes;
    }

    /// Neighbours of `v` (excluding `v` itself).
    pub fn neighbors(&self, v: usize) -> &[usize] {
        self.adjacency.row_indices(v)
    }

    /// Degree of `v` (self-loops excluded).
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency.row_indices(v).len()
    }

    /// All degrees.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.node_count()).map(|v| self.degree(v)).collect()
    }

    /// Average degree `2e / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.node_count() as f64
    }

    /// True when `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency.get(u, v) != 0.0
    }

    /// Undirected edge list with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.adjacency
            .iter()
            .filter(|&(u, v, _)| u < v)
            .map(|(u, v, _)| (u, v))
            .collect()
    }

    /// Self-loop-augmented adjacency `Â = A + I` of Eq. 1.
    pub fn adjacency_with_self_loops(&self) -> Csr {
        let n = self.node_count();
        let mut coo = Coo::new(n, n);
        for (u, v, w) in self.adjacency.iter() {
            coo.push(u, v, w).expect("in-range");
        }
        for v in 0..n {
            coo.push(v, v, 1.0).expect("in-range");
        }
        coo.to_csr()
    }

    /// Augmented degree vector `D̂_ii = Σ_j Â_ij` (i.e. `deg(v) + 1`).
    pub fn augmented_degrees(&self) -> Vec<f64> {
        (0..self.node_count())
            .map(|v| self.degree(v) as f64 + 1.0)
            .collect()
    }

    /// The normalised Laplacian-style propagation operator of Eq. 1:
    /// `C = D̂^{-1/2} Â D̂^{-1/2}`.
    pub fn normalized_laplacian(&self) -> Csr {
        let inv_sqrt: Vec<f64> = self
            .augmented_degrees()
            .iter()
            .map(|&d| 1.0 / d.sqrt())
            .collect();
        self.adjacency_with_self_loops()
            .diag_scale(&inv_sqrt, &inv_sqrt)
            .expect("diagonal lengths match by construction")
    }

    /// Relabels nodes: node `i` of `self` becomes node `perm[i]` of the
    /// result (Eq. 8: `A_p = P A Pᵀ` with `P_{perm[i], i} = 1` acting on
    /// rows of `F` likewise).
    ///
    /// # Panics
    /// Panics unless `perm` is a permutation of `0..n`.
    pub fn permute(&self, perm: &[usize]) -> AttributedGraph {
        let n = self.node_count();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let edges: Vec<(usize, usize)> = self
            .edges()
            .into_iter()
            .map(|(u, v)| (perm[u], perm[v]))
            .collect();
        let mut attrs = Dense::zeros(n, self.attr_dim());
        for i in 0..n {
            attrs
                .row_mut(perm[i])
                .copy_from_slice(self.attributes.row(i));
        }
        AttributedGraph::from_edges(n, &edges, attrs)
    }

    /// Induced subgraph on `nodes` (order defines new ids). Returns the
    /// subgraph and the old→new id mapping for nodes that were kept.
    pub fn induced_subgraph(
        &self,
        nodes: &[usize],
    ) -> (AttributedGraph, std::collections::HashMap<usize, usize>) {
        let mapping: std::collections::HashMap<usize, usize> = nodes
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let mut edges = Vec::new();
        for (new_u, &old_u) in nodes.iter().enumerate() {
            for &old_v in self.neighbors(old_u) {
                if let Some(&new_v) = mapping.get(&old_v) {
                    if new_u < new_v {
                        edges.push((new_u, new_v));
                    }
                }
            }
        }
        let attrs = self.attributes.select_rows(nodes);
        (
            AttributedGraph::from_edges(nodes.len(), &edges, attrs),
            mapping,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> AttributedGraph {
        let attrs = Dense::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        AttributedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], attrs)
    }

    #[test]
    fn basic_topology() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.attr_dim(), 2);
    }

    #[test]
    fn dedup_and_self_loop_drop() {
        let g = AttributedGraph::from_edges_featureless(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        AttributedGraph::from_edges_featureless(2, &[(0, 5)]);
    }

    #[test]
    fn augmented_adjacency_and_degrees() {
        let g = triangle();
        let a_hat = g.adjacency_with_self_loops();
        assert_eq!(a_hat.get(0, 0), 1.0);
        assert_eq!(a_hat.get(0, 1), 1.0);
        assert_eq!(g.augmented_degrees(), vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn normalized_laplacian_rows() {
        // Triangle: all augmented degrees are 3, so every stored entry is 1/3.
        let g = triangle();
        let c = g.normalized_laplacian();
        for (_, _, v) in c.iter() {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
        // Row sums of C for a regular graph equal 1.
        let sums = c.row_sums();
        for s in sums {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn laplacian_is_symmetric_on_irregular_graph() {
        let g = AttributedGraph::from_edges_featureless(4, &[(0, 1), (1, 2), (1, 3)]);
        let c = g.normalized_laplacian();
        assert!(c.is_symmetric());
        // C(0,1) = 1/sqrt(d̂_0 · d̂_1) = 1/sqrt(2·4).
        assert!((c.get(0, 1) - 1.0 / (8.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn permutation_relabels_consistently() {
        let g = triangle();
        let perm = vec![2, 0, 1]; // old 0 -> new 2, etc.
        let p = g.permute(&perm);
        assert_eq!(p.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(p.has_edge(perm[u], perm[v]));
        }
        for i in 0..3 {
            assert_eq!(p.attributes().row(perm[i]), g.attributes().row(i));
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_invalid_permutation() {
        triangle().permute(&[0, 0, 1]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = AttributedGraph::from_edges_featureless(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (sub, map) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 1); // only (1,2) survives
        assert!(sub.has_edge(map[&1], map[&2]));
        assert!(!sub.has_edge(map[&2], map[&4]));
    }

    #[test]
    fn edges_listing_sorted_unique() {
        let g = triangle();
        let mut e = g.edges();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }
}
