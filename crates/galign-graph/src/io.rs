//! Graph and anchor serialisation.
//!
//! Experiments persist their synthesised inputs as JSON so a run can be
//! inspected or replayed; the format is a plain edge list plus attribute
//! rows, stable across versions.

use crate::anchors::AnchorLinks;
use crate::graph::AttributedGraph;
use galign_matrix::Dense;
use serde::{Deserialize, Serialize};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Serialisable form of an attributed graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphRecord {
    /// Node count.
    pub n: usize,
    /// Undirected edges with `u < v`.
    pub edges: Vec<(usize, usize)>,
    /// One attribute row per node.
    pub attributes: Vec<Vec<f64>>,
}

impl From<&AttributedGraph> for GraphRecord {
    fn from(g: &AttributedGraph) -> Self {
        GraphRecord {
            n: g.node_count(),
            edges: g.edges(),
            attributes: g.attributes().row_iter().map(|r| r.to_vec()).collect(),
        }
    }
}

impl GraphRecord {
    /// Reconstructs the graph.
    ///
    /// # Panics
    /// Panics on malformed records (wrong attribute row count / ragged
    /// rows), mirroring `AttributedGraph::from_edges`.
    pub fn to_graph(&self) -> AttributedGraph {
        let attrs =
            Dense::from_rows(&self.attributes).expect("graph record has ragged attribute rows");
        AttributedGraph::from_edges(self.n, &self.edges, attrs)
    }
}

/// Writes a graph as pretty JSON.
///
/// # Errors
/// Returns IO errors from file creation or serialisation.
pub fn write_graph_json(g: &AttributedGraph, path: &Path) -> std::io::Result<()> {
    let record = GraphRecord::from(g);
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let json = serde_json::to_string(&record)?;
    w.write_all(json.as_bytes())
}

/// Reads a graph written by [`write_graph_json`].
///
/// # Errors
/// Returns IO/parse errors.
pub fn read_graph_json(path: &Path) -> std::io::Result<AttributedGraph> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut buf = String::new();
    r.read_to_string(&mut buf)?;
    let record: GraphRecord = serde_json::from_str(&buf)?;
    Ok(record.to_graph())
}

/// Writes anchor links as JSON.
///
/// # Errors
/// Returns IO errors.
pub fn write_anchors_json(a: &AnchorLinks, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let json = serde_json::to_string(a)?;
    w.write_all(json.as_bytes())
}

/// Reads anchor links written by [`write_anchors_json`].
///
/// # Errors
/// Returns IO/parse errors.
pub fn read_anchors_json(path: &Path) -> std::io::Result<AnchorLinks> {
    let buf = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&buf)?)
}

/// Parses a whitespace-separated edge list (`u v` per line, `#` comments),
/// the format of SNAP / network-repository dumps.
///
/// # Errors
/// Returns [`std::io::Error`] with `InvalidData` on malformed lines.
pub fn parse_edge_list(text: &str) -> std::io::Result<Vec<(usize, usize)>> {
    let mut edges = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> std::io::Result<usize> {
            tok.ok_or_else(|| malformed(lineno))?
                .parse::<usize>()
                .map_err(|_| malformed(lineno))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        edges.push((u, v));
    }
    Ok(edges)
}

fn malformed(lineno: usize) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("malformed edge-list line {}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::rng::SeededRng;

    fn sample() -> AttributedGraph {
        let mut rng = SeededRng::new(1);
        let edges = crate::generators::erdos_renyi_gnm(&mut rng, 20, 40);
        let attrs = crate::generators::binary_attributes(&mut rng, 20, 6, 2);
        AttributedGraph::from_edges(20, &edges, attrs)
    }

    #[test]
    fn graph_json_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("galign-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.json");
        write_graph_json(&g, &path).unwrap();
        let g2 = read_graph_json(&path).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert!(g2.attributes().approx_eq(g.attributes(), 0.0));
        let mut e1 = g.edges();
        let mut e2 = g2.edges();
        e1.sort_unstable();
        e2.sort_unstable();
        assert_eq!(e1, e2);
    }

    #[test]
    fn anchors_json_roundtrip() {
        let a = AnchorLinks::new(vec![(0, 3), (5, 1)]);
        let dir = std::env::temp_dir().join("galign-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.json");
        write_anchors_json(&a, &path).unwrap();
        assert_eq!(read_anchors_json(&path).unwrap(), a);
    }

    #[test]
    fn edge_list_parsing() {
        let text = "# comment\n0 1\n2 3 extra-ignored\n\n% also comment\n4 5\n";
        let edges = parse_edge_list(text).unwrap();
        assert_eq!(edges, vec![(0, 1), (2, 3), (4, 5)]);
        assert!(parse_edge_list("a b").is_err());
        assert!(parse_edge_list("1").is_err());
    }
}
