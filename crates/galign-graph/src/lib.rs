//! Attributed graphs and graph tooling for network alignment.
//!
//! Implements the paper's data model (§II-A): an attributed network
//! `G = (V, A, F)` with a binary symmetric adjacency matrix `A` and a node
//! attribute matrix `F`, plus everything the experiments need around it:
//!
//! * [`AttributedGraph`] and [`builder::GraphBuilder`] — construction and
//!   topology queries, normalised Laplacian `C = D̂^{-1/2} Â D̂^{-1/2}`
//!   (Eq. 1).
//! * [`generators`] — Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
//!   power-law cluster and co-membership random graphs used to synthesise
//!   dataset stand-ins.
//! * [`noise`] — the perturbation procedures of §V-C (edge removal/addition,
//!   binary and real-valued attribute noise) and node permutation (Eq. 8).
//! * [`anchors`] — ground-truth anchor links shared by datasets, aligners
//!   and metrics.
//! * [`components`] — BFS, connected components, k-hop neighbourhoods.
//! * [`io`] — JSON (de)serialisation of graphs and anchor sets.

pub mod anchors;
pub mod builder;
pub mod components;
pub mod generators;
pub mod graph;
pub mod io;
pub mod noise;
pub mod stats;

pub use anchors::AnchorLinks;
pub use builder::GraphBuilder;
pub use graph::AttributedGraph;
