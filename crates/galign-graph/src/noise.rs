//! Perturbation-based network augmentation and adversarial noise (§V-C).
//!
//! The same primitives serve two roles in the paper:
//!
//! 1. **Data augmentation** during training — small perturbations of the
//!    source/target networks teach the model to tolerate consistency
//!    violations (the adaptivity loss, Eq. 9).
//! 2. **Adversarial evaluation** (§VII-D) — the structural-noise and
//!    attribute-noise sweeps of Figs. 3–4 remove edges / corrupt attributes
//!    at rates between 10 % and 50 %.

use crate::graph::AttributedGraph;
use galign_matrix::rng::SeededRng;
use galign_matrix::Dense;
use std::collections::HashSet;

/// Removes each edge independently with probability `p` (the element-wise
/// zero-mask of §V-C).
pub fn remove_edges(rng: &mut SeededRng, g: &AttributedGraph, p: f64) -> AttributedGraph {
    let kept: Vec<(usize, usize)> = g
        .edges()
        .into_iter()
        .filter(|_| !rng.bernoulli(p))
        .collect();
    AttributedGraph::from_edges(g.node_count(), &kept, g.attributes().clone())
}

/// Adds `⌈p·e⌉` random previously-absent edges.
pub fn add_edges(rng: &mut SeededRng, g: &AttributedGraph, p: f64) -> AttributedGraph {
    let n = g.node_count();
    if n < 2 {
        return g.clone();
    }
    let mut edges: HashSet<(usize, usize)> = g.edges().into_iter().collect();
    let target = edges.len() + ((edges.len() as f64) * p).ceil() as usize;
    let max_edges = n * (n - 1) / 2;
    let target = target.min(max_edges);
    let mut guard = 0usize;
    while edges.len() < target && guard < 100 * target.max(1) {
        guard += 1;
        let u = rng.index(n);
        let v = rng.index(n);
        if u != v {
            edges.insert((u.min(v), u.max(v)));
        }
    }
    let mut out: Vec<_> = edges.into_iter().collect();
    out.sort_unstable();
    AttributedGraph::from_edges(n, &out, g.attributes().clone())
}

/// Structural augmentation used during training: removes edges with
/// probability `p_s` and adds the same expected number of random edges, so
/// the perturbed copy violates structural consistency in both directions.
pub fn structural_noise(rng: &mut SeededRng, g: &AttributedGraph, p_s: f64) -> AttributedGraph {
    let removed = remove_edges(rng, g, p_s);
    add_edges(
        rng,
        &removed,
        p_s * g.edge_count() as f64 / removed.edge_count().max(1) as f64,
    )
}

/// Binary attribute noise: with probability `p_a` per node, the positions of
/// the non-zero entries of its attribute vector are re-randomised (the
/// paper's "randomly change the position of non-zero entries").
pub fn binary_attribute_noise(rng: &mut SeededRng, attrs: &Dense, p_a: f64) -> Dense {
    let mut out = attrs.clone();
    let dim = attrs.cols();
    for v in 0..attrs.rows() {
        if !rng.bernoulli(p_a) {
            continue;
        }
        let active = attrs.row(v).iter().filter(|&&x| x != 0.0).count();
        let row = out.row_mut(v);
        row.fill(0.0);
        for j in rng.sample_indices(dim, active.min(dim)) {
            row[j] = 1.0;
        }
    }
    out
}

/// Real-valued attribute noise: each element `F_ij` is shifted by a random
/// amount in `[0, p_a · F_ij]` (the paper's real-valued rule), with a random
/// sign so the perturbation is not systematically inflating.
pub fn real_attribute_noise(rng: &mut SeededRng, attrs: &Dense, p_a: f64) -> Dense {
    let mut out = attrs.clone();
    for v in out.as_mut_slice().iter_mut() {
        let delta = rng.uniform(0.0, 1.0) * p_a * *v;
        let sign = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
        *v += sign * delta;
    }
    out
}

/// True when every stored attribute value is 0 or 1 — selects which noise
/// rule applies (§V-C distinguishes binary from real-valued attributes).
pub fn attributes_are_binary(attrs: &Dense) -> bool {
    attrs.as_slice().iter().all(|&v| v == 0.0 || v == 1.0)
}

/// Attribute noise dispatching on the attribute family.
pub fn attribute_noise(rng: &mut SeededRng, g: &AttributedGraph, p_a: f64) -> AttributedGraph {
    let noisy = if attributes_are_binary(g.attributes()) {
        binary_attribute_noise(rng, g.attributes(), p_a)
    } else {
        real_attribute_noise(rng, g.attributes(), p_a)
    };
    let mut out = g.clone();
    out.set_attributes(noisy);
    out
}

/// Full §V-C augmentation: structural noise at `p_s` plus attribute noise at
/// `p_a`. Node identity is preserved (see DESIGN.md §4.4 on Eq. 8's
/// permutation, which Prop. 1 renders immaterial).
pub fn augment(rng: &mut SeededRng, g: &AttributedGraph, p_s: f64, p_a: f64) -> AttributedGraph {
    let structural = structural_noise(rng, g, p_s);
    attribute_noise(rng, &structural, p_a)
}

/// Builds a noisy alignment problem from one network (§VII-A "synthetic
/// data"): the target is a copy with `p_s` structural and `p_a` attribute
/// noise, and the ground truth is the identity.
pub fn noisy_copy_pair(
    rng: &mut SeededRng,
    g: &AttributedGraph,
    p_s: f64,
    p_a: f64,
) -> (
    AttributedGraph,
    AttributedGraph,
    crate::anchors::AnchorLinks,
) {
    let target = augment(rng, g, p_s, p_a);
    (
        g.clone(),
        target,
        crate::anchors::AnchorLinks::identity(g.node_count()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, binary_attributes};
    use proptest::prelude::*;

    fn sample_graph(seed: u64) -> AttributedGraph {
        let mut rng = SeededRng::new(seed);
        let edges = barabasi_albert(&mut rng, 120, 3);
        let attrs = binary_attributes(&mut rng, 120, 20, 4);
        AttributedGraph::from_edges(120, &edges, attrs)
    }

    #[test]
    fn remove_edges_rate() {
        let g = sample_graph(1);
        let mut rng = SeededRng::new(2);
        let noisy = remove_edges(&mut rng, &g, 0.3);
        let ratio = noisy.edge_count() as f64 / g.edge_count() as f64;
        assert!((ratio - 0.7).abs() < 0.1, "kept ratio {ratio}");
        // Nodes and attributes untouched.
        assert_eq!(noisy.node_count(), g.node_count());
        assert!(noisy.attributes().approx_eq(g.attributes(), 0.0));
    }

    #[test]
    fn remove_edges_extremes() {
        let g = sample_graph(3);
        let mut rng = SeededRng::new(4);
        assert_eq!(remove_edges(&mut rng, &g, 0.0).edge_count(), g.edge_count());
        assert_eq!(remove_edges(&mut rng, &g, 1.0).edge_count(), 0);
    }

    #[test]
    fn add_edges_grows() {
        let g = sample_graph(5);
        let mut rng = SeededRng::new(6);
        let noisy = add_edges(&mut rng, &g, 0.2);
        let expected = g.edge_count() + (g.edge_count() as f64 * 0.2).ceil() as usize;
        assert_eq!(noisy.edge_count(), expected);
        // All original edges retained.
        for (u, v) in g.edges() {
            assert!(noisy.has_edge(u, v));
        }
    }

    #[test]
    fn binary_noise_preserves_cardinality() {
        let g = sample_graph(7);
        let mut rng = SeededRng::new(8);
        let noisy = binary_attribute_noise(&mut rng, g.attributes(), 1.0);
        for v in 0..g.node_count() {
            let before = g.attributes().row(v).iter().filter(|&&x| x != 0.0).count();
            let after = noisy.row(v).iter().filter(|&&x| x != 0.0).count();
            assert_eq!(before, after);
        }
        assert!(attributes_are_binary(&noisy));
    }

    #[test]
    fn binary_noise_zero_rate_is_identity() {
        let g = sample_graph(9);
        let mut rng = SeededRng::new(10);
        let noisy = binary_attribute_noise(&mut rng, g.attributes(), 0.0);
        assert!(noisy.approx_eq(g.attributes(), 0.0));
    }

    #[test]
    fn real_noise_relative_magnitude() {
        let mut rng = SeededRng::new(11);
        let attrs = Dense::filled(10, 4, 2.0);
        let noisy = real_attribute_noise(&mut rng, &attrs, 0.5);
        for (&a, &b) in attrs.as_slice().iter().zip(noisy.as_slice()) {
            assert!((a - b).abs() <= 0.5 * a + 1e-12);
        }
        // Zero entries stay zero.
        let zeros = Dense::zeros(3, 3);
        let nz = real_attribute_noise(&mut rng, &zeros, 0.9);
        assert!(nz.approx_eq(&zeros, 0.0));
    }

    #[test]
    fn attribute_family_detection() {
        assert!(attributes_are_binary(&Dense::filled(2, 2, 1.0)));
        assert!(attributes_are_binary(&Dense::zeros(2, 2)));
        assert!(!attributes_are_binary(&Dense::filled(2, 2, 0.5)));
    }

    #[test]
    fn noisy_copy_pair_identity_truth() {
        let g = sample_graph(12);
        let mut rng = SeededRng::new(13);
        let (s, t, truth) = noisy_copy_pair(&mut rng, &g, 0.1, 0.1);
        assert_eq!(s.node_count(), t.node_count());
        assert_eq!(truth.len(), g.node_count());
        assert_eq!(truth.pairs()[5], (5, 5));
    }

    proptest! {
        #[test]
        fn prop_structural_noise_roughly_preserves_edge_count(seed in 0u64..30, p in 0.05f64..0.4) {
            // Removal + equal-expected addition keeps e within a loose band.
            let g = sample_graph(seed);
            let mut rng = SeededRng::new(seed + 1000);
            let noisy = structural_noise(&mut rng, &g, p);
            let ratio = noisy.edge_count() as f64 / g.edge_count() as f64;
            prop_assert!(ratio > 0.75 && ratio < 1.25, "ratio {}", ratio);
        }

        #[test]
        fn prop_augment_keeps_node_count(seed in 0u64..30) {
            let g = sample_graph(seed);
            let mut rng = SeededRng::new(seed);
            let a = augment(&mut rng, &g, 0.2, 0.2);
            prop_assert_eq!(a.node_count(), g.node_count());
            prop_assert_eq!(a.attr_dim(), g.attr_dim());
        }
    }
}
