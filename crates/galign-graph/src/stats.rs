//! Descriptive graph statistics.
//!
//! Used to validate that synthesised dataset stand-ins sit in the same
//! structural regime as their Table II originals (degree distribution,
//! clustering, assortativity), and exposed for users analysing their own
//! networks before alignment.

use crate::graph::AttributedGraph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Mean degree `2e/n`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Global clustering coefficient (transitivity): `3·triangles / triads`.
    pub clustering: f64,
    /// Degree assortativity (Pearson correlation of endpoint degrees).
    pub assortativity: f64,
}

/// Computes [`GraphStats`] in `O(Σ deg(v)²)`.
pub fn graph_stats(g: &AttributedGraph) -> GraphStats {
    GraphStats {
        nodes: g.node_count(),
        edges: g.edge_count(),
        avg_degree: g.avg_degree(),
        max_degree: g.degrees().into_iter().max().unwrap_or(0),
        clustering: transitivity(g),
        assortativity: degree_assortativity(g),
    }
}

/// Global clustering coefficient: `3 × #triangles / #connected-triples`.
pub fn transitivity(g: &AttributedGraph) -> f64 {
    let mut triangles = 0usize; // counted 6× (ordered)
    let mut triads = 0usize; // open + closed, centred per node
    for v in 0..g.node_count() {
        let nbrs = g.neighbors(v);
        let d = nbrs.len();
        triads += d.saturating_sub(1) * d / 2;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    // Each triangle is counted once per corner = 3 times.
    if triads == 0 {
        0.0
    } else {
        triangles as f64 / triads as f64
    }
}

/// Degree assortativity: Pearson correlation between the degrees of edge
/// endpoints (0 for degenerate graphs).
pub fn degree_assortativity(g: &AttributedGraph) -> f64 {
    let edges = g.edges();
    if edges.is_empty() {
        return 0.0;
    }
    // Each undirected edge contributes both orientations.
    let degs = g.degrees();
    let xs: Vec<f64> = edges
        .iter()
        .flat_map(|&(u, v)| [degs[u] as f64, degs[v] as f64])
        .collect();
    let ys: Vec<f64> = edges
        .iter()
        .flat_map(|&(u, v)| [degs[v] as f64, degs[u] as f64])
        .collect();
    pearson(&xs, &ys)
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Histogram of node degrees; `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &AttributedGraph) -> Vec<usize> {
    let degs = g.degrees();
    let max = degs.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in degs {
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use galign_matrix::rng::SeededRng;

    #[test]
    fn triangle_has_full_clustering() {
        let g = AttributedGraph::from_edges_featureless(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!((transitivity(&g) - 1.0).abs() < 1e-12);
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn star_has_zero_clustering_and_negative_assortativity() {
        let g = AttributedGraph::from_edges_featureless(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(transitivity(&g), 0.0);
        // Hubs connect to leaves: anti-assortative.
        assert!(degree_assortativity(&g) <= 0.0);
    }

    #[test]
    fn path_statistics() {
        let g = AttributedGraph::from_edges_featureless(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(transitivity(&g), 0.0);
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 2, 2]); // two leaves, two middle nodes
    }

    #[test]
    fn small_world_more_clustered_than_random() {
        let mut rng = SeededRng::new(1);
        let n = 200;
        let ws = AttributedGraph::from_edges_featureless(
            n,
            &generators::watts_strogatz(&mut rng, n, 3, 0.05),
        );
        let er = AttributedGraph::from_edges_featureless(
            n,
            &generators::erdos_renyi_gnm(&mut rng, n, ws.edge_count()),
        );
        assert!(
            transitivity(&ws) > 2.0 * transitivity(&er),
            "WS {} vs ER {}",
            transitivity(&ws),
            transitivity(&er)
        );
    }

    #[test]
    fn empty_graph_statistics() {
        let g = AttributedGraph::from_edges_featureless(0, &[]);
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.assortativity, 0.0);
        assert_eq!(degree_histogram(&g), vec![0]);
    }
}
