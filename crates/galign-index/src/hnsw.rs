//! Layered proximity-graph index (HNSW-style).
//!
//! Nodes are inserted one at a time; each draws a geometric level, links
//! into every layer at or below it, and the graph is navigated greedily
//! from a single entry point on the top layer down to a beam search on
//! the base layer. With row-normalised inputs the inner product is a
//! monotone proxy for angular distance, so the classic construction
//! carries over with "closer" = "higher dot product" throughout.
//!
//! Determinism: levels come from a seeded xorshift stream indexed only by
//! insertion order; all heaps break score ties toward the smaller node id
//! (the `select_topk` contract). The same `(vectors, params)` therefore
//! always builds the same graph, and a serialized + re-attached index
//! answers queries identically to the freshly built one.

use crate::{
    dot, record_build, record_search, score, sort_candidates, AnnIndex, Backend, Candidate,
    IndexError, QueryScorer, Result, Rng, Scored, SearchStats, VectorSet,
};
use galign_quant::QuantizedPanel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// HNSW build/search tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswParams {
    /// Max links per node on layers above the base (base layer gets 2·m).
    pub m: usize,
    /// Beam width while inserting (recall of the construction phase).
    pub ef_construction: usize,
    /// Default beam width while searching; the effective beam is
    /// `max(ef_search, k)`.
    pub ef_search: usize,
    /// Seed of the level-assignment stream.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 16,
            ef_construction: 128,
            ef_search: 96,
            seed: 0x5eed_1d01,
        }
    }
}

/// The layered proximity graph.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    vectors: VectorSet,
    params: HnswParams,
    /// Highest layer of each node.
    levels: Vec<u8>,
    /// `links[node][layer]` — neighbor ids, layer `0..=levels[node]`.
    links: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: u8,
    /// Optional quantized view of `vectors` for cheap traversal
    /// ([`AnnIndex::search_quant`]); never serialized, re-attached like the
    /// vectors themselves.
    quant: Option<Arc<QuantizedPanel>>,
}

/// Caps the geometric level draw so adversarial RNG streams cannot
/// allocate unbounded per-node layer vectors.
const MAX_LEVEL: u8 = 24;

impl HnswIndex {
    /// Builds the graph over `vectors` (consumed) with `params`.
    ///
    /// # Errors
    /// [`IndexError::Invalid`] when `m < 2` or `ef_construction == 0`.
    pub fn build(vectors: VectorSet, params: HnswParams) -> Result<Self> {
        if params.m < 2 {
            return Err(IndexError::Invalid("hnsw m must be >= 2".into()));
        }
        if params.ef_construction == 0 {
            return Err(IndexError::Invalid(
                "hnsw ef_construction must be >= 1".into(),
            ));
        }
        let start = Instant::now();
        let n = vectors.len();
        let mut rng = Rng::new(params.seed);
        let mult = 1.0 / (params.m as f64).ln();
        let mut index = HnswIndex {
            vectors,
            params,
            levels: Vec::with_capacity(n),
            links: Vec::with_capacity(n),
            entry: 0,
            max_level: 0,
            quant: None,
        };
        let mut stats = SearchStats::default();
        for i in 0..n {
            let level = ((-rng.f64_unit().ln() * mult) as u64).min(u64::from(MAX_LEVEL)) as u8;
            index.insert(i as u32, level, &mut stats);
        }
        record_build(Backend::Hnsw, n, stats, start.elapsed().as_secs_f64() * 1e3);
        Ok(index)
    }

    /// The build/search parameters in effect.
    #[must_use]
    pub fn params(&self) -> HnswParams {
        self.params
    }

    /// The indexed vectors (used by tests and by serialization checks).
    #[must_use]
    pub fn vectors(&self) -> &VectorSet {
        &self.vectors
    }

    fn max_links(&self, layer: u8) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    fn insert(&mut self, id: u32, level: u8, stats: &mut SearchStats) {
        self.levels.push(level);
        self.links.push((0..=level).map(|_| Vec::new()).collect());
        if id == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }
        let q = self.vectors.row(id as usize).to_vec();
        let scorer = QueryScorer::Exact(&q);
        let mut ep = self.entry;
        // Greedy descent through layers above the new node's level.
        let mut layer = self.max_level;
        while layer > level {
            ep = self.greedy(&scorer, ep, layer, stats);
            layer -= 1;
        }
        // Beam search + connect on every layer the node occupies.
        let mut layer = level.min(self.max_level);
        loop {
            let found = self.search_layer(&scorer, ep, self.params.ef_construction, layer, stats);
            let chosen = self.select_neighbors(&q, &found, self.max_links(layer), stats);
            for &nb in &chosen {
                self.links[id as usize][layer as usize].push(nb);
                self.links[nb as usize][layer as usize].push(id);
                self.shrink(nb, layer, stats);
            }
            if let Some(best) = found.first() {
                ep = best.id;
            }
            if layer == 0 {
                break;
            }
            layer -= 1;
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = id;
        }
    }

    /// Re-selects a node's neighbor list when it grew past the cap.
    fn shrink(&mut self, node: u32, layer: u8, stats: &mut SearchStats) {
        let cap = self.max_links(layer);
        if self.links[node as usize][layer as usize].len() <= cap {
            return;
        }
        let base = self.vectors.row(node as usize).to_vec();
        let mut scored: Vec<Scored> = self.links[node as usize][layer as usize]
            .iter()
            .map(|&nb| Scored {
                score: score(&self.vectors, &base, nb as usize, stats),
                id: nb,
            })
            .collect();
        sort_candidates(&mut scored);
        let kept = self.select_neighbors(&base, &scored, cap, stats);
        self.links[node as usize][layer as usize] = kept;
    }

    /// The HNSW diversity heuristic: walk candidates best-first, keeping
    /// one only when it is closer to the base point than to every
    /// already-kept neighbor — this preserves graph connectivity across
    /// clusters instead of wiring `m` near-duplicates.
    fn select_neighbors(
        &self,
        base: &[f64],
        cands: &[Scored],
        m: usize,
        stats: &mut SearchStats,
    ) -> Vec<u32> {
        let _ = base;
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        for c in cands {
            if chosen.len() >= m {
                break;
            }
            let dominated = chosen.iter().any(|&o| {
                stats.distance_evals += 1;
                dot(
                    self.vectors.row(c.id as usize),
                    self.vectors.row(o as usize),
                ) > c.score
            });
            if !dominated {
                chosen.push(c.id);
            }
        }
        // Backfill: a too-aggressive heuristic on clustered data may keep
        // fewer than m; pad with the best remaining so degree stays high.
        if chosen.len() < m {
            for c in cands {
                if chosen.len() >= m {
                    break;
                }
                if !chosen.contains(&c.id) {
                    chosen.push(c.id);
                }
            }
        }
        chosen
    }

    /// Greedy hill-climb on one layer: follow the best-improving link
    /// until no neighbor beats the current node.
    fn greedy(&self, q: &QueryScorer<'_>, mut ep: u32, layer: u8, stats: &mut SearchStats) -> u32 {
        let mut best = q.score(&self.vectors, ep as usize, stats);
        loop {
            let mut improved = false;
            for &nb in &self.links[ep as usize][layer as usize] {
                let s = q.score(&self.vectors, nb as usize, stats);
                if s > best {
                    best = s;
                    ep = nb;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam (`ef`) search on one layer; returns up to `ef` results sorted
    /// best-first.
    fn search_layer(
        &self,
        q: &QueryScorer<'_>,
        ep: u32,
        ef: usize,
        layer: u8,
        stats: &mut SearchStats,
    ) -> Vec<Scored> {
        let mut visited = vec![false; self.vectors.len()];
        visited[ep as usize] = true;
        let s0 = q.score(&self.vectors, ep as usize, stats);
        // Frontier: best candidate first. Results: worst kept first (so
        // the beam can evict it in O(log ef)).
        let mut frontier = BinaryHeap::from([Scored { score: s0, id: ep }]);
        let mut results: BinaryHeap<Reverse<Scored>> =
            BinaryHeap::from([Reverse(Scored { score: s0, id: ep })]);
        while let Some(cand) = frontier.pop() {
            let worst = results.peek().map_or(f64::NEG_INFINITY, |r| r.0.score);
            if cand.score < worst && results.len() >= ef {
                break;
            }
            for &nb in &self.links[cand.id as usize][layer as usize] {
                if std::mem::replace(&mut visited[nb as usize], true) {
                    continue;
                }
                let s = q.score(&self.vectors, nb as usize, stats);
                let worst = results.peek().map_or(f64::NEG_INFINITY, |r| r.0.score);
                if results.len() < ef || s > worst {
                    let sc = Scored { score: s, id: nb };
                    frontier.push(sc);
                    results.push(Reverse(sc));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Scored> = results.into_iter().map(|Reverse(s)| s).collect();
        sort_candidates(&mut out);
        out
    }

    /// Raw search without telemetry (shared by [`AnnIndex::search`] and
    /// the construction phase's tests).
    #[must_use]
    pub fn search_raw(&self, query: &[f64], k: usize, stats: &mut SearchStats) -> Vec<Candidate> {
        self.search_raw_scored(&QueryScorer::Exact(query), k, stats)
    }

    /// The traversal shared by exact and quantized searches: greedy descent
    /// through the upper layers, then the base-layer beam, all scored
    /// through `scorer`.
    fn search_raw_scored(
        &self,
        scorer: &QueryScorer<'_>,
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<Candidate> {
        if self.vectors.is_empty() || k == 0 {
            return Vec::new();
        }
        debug_assert_eq!(scorer.raw().len(), self.vectors.dim());
        let mut ep = self.entry;
        let mut layer = self.max_level;
        while layer > 0 {
            ep = self.greedy(scorer, ep, layer, stats);
            layer -= 1;
        }
        let ef = self.params.ef_search.max(k);
        self.search_layer(scorer, ep, ef, 0, stats)
            .into_iter()
            .map(|s| Candidate {
                id: s.id as usize,
                approx: s.score,
            })
            .collect()
    }

    pub(crate) fn from_parts(
        vectors: VectorSet,
        params: HnswParams,
        levels: Vec<u8>,
        links: Vec<Vec<Vec<u32>>>,
        entry: u32,
        max_level: u8,
    ) -> Self {
        HnswIndex {
            vectors,
            params,
            levels,
            links,
            entry,
            max_level,
            quant: None,
        }
    }

    pub(crate) fn parts(&self) -> (&[u8], &[Vec<Vec<u32>>], u32, u8) {
        (&self.levels, &self.links, self.entry, self.max_level)
    }
}

impl AnnIndex for HnswIndex {
    fn backend(&self) -> Backend {
        Backend::Hnsw
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn search(&self, query: &[f64], k: usize, stats: &mut SearchStats) -> Vec<Candidate> {
        let before = stats.distance_evals;
        let cands = self.search_raw(query, k, stats);
        record_search(
            SearchStats {
                distance_evals: stats.distance_evals - before,
            },
            cands.len(),
        );
        cands
    }

    fn attach_quant(&mut self, panel: Arc<QuantizedPanel>) -> Result<()> {
        if panel.len() != self.vectors.len() || panel.dim() != self.vectors.dim() {
            return Err(IndexError::Invalid(format!(
                "quantized panel is {}×{}, index is {}×{}",
                panel.len(),
                panel.dim(),
                self.vectors.len(),
                self.vectors.dim()
            )));
        }
        self.quant = Some(panel);
        Ok(())
    }

    fn quant_attached(&self) -> bool {
        self.quant.is_some()
    }

    fn search_quant(&self, query: &[f64], k: usize, stats: &mut SearchStats) -> Vec<Candidate> {
        let Some(panel) = &self.quant else {
            return self.search(query, k, stats);
        };
        let Ok(qq) = panel.quantize_query(query) else {
            return self.search(query, k, stats);
        };
        let before = stats.distance_evals;
        let scorer = QueryScorer::Quant {
            raw: query,
            panel,
            query: qq,
        };
        let cands = self.search_raw_scored(&scorer, k, stats);
        let evals = stats.distance_evals - before;
        galign_quant::record_scan(evals, cands.len() as u64);
        record_search(
            SearchStats {
                distance_evals: evals,
            },
            cands.len(),
        );
        cands
    }

    fn to_bytes(&self) -> Vec<u8> {
        crate::serial::hnsw_to_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_unit_vectors;

    fn brute_topk(vectors: &VectorSet, q: &[f64], k: usize) -> Vec<usize> {
        let mut scored: Vec<Scored> = (0..vectors.len())
            .map(|i| Scored {
                score: dot(q, vectors.row(i)),
                id: i as u32,
            })
            .collect();
        sort_candidates(&mut scored);
        scored.truncate(k);
        scored.into_iter().map(|s| s.id as usize).collect()
    }

    #[test]
    fn params_validation() {
        let v = random_unit_vectors(4, 3, 1);
        assert!(HnswIndex::build(
            v.clone(),
            HnswParams {
                m: 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(HnswIndex::build(
            v,
            HnswParams {
                ef_construction: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn empty_and_tiny_sets() {
        let empty = VectorSet::new(0, 0, vec![]).unwrap();
        let idx = HnswIndex::build(empty, HnswParams::default()).unwrap();
        let mut stats = SearchStats::default();
        assert!(idx.search_raw(&[], 3, &mut stats).is_empty());
        let one = random_unit_vectors(1, 4, 2);
        let q = one.row(0).to_vec();
        let idx = HnswIndex::build(one, HnswParams::default()).unwrap();
        let hits = idx.search_raw(&q, 5, &mut stats);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn exact_on_small_sets() {
        // With ef >= n the beam covers everything: results must equal the
        // brute-force ranking exactly.
        let v = random_unit_vectors(60, 8, 3);
        let idx = HnswIndex::build(
            v.clone(),
            HnswParams {
                ef_search: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let mut stats = SearchStats::default();
        for qi in 0..10 {
            let q = v.row(qi).to_vec();
            let got: Vec<usize> = idx
                .search_raw(&q, 5, &mut stats)
                .into_iter()
                .take(5)
                .map(|c| c.id)
                .collect();
            assert_eq!(got, brute_topk(&v, &q, 5), "query {qi}");
        }
    }

    #[test]
    fn build_is_deterministic() {
        let v = random_unit_vectors(200, 8, 7);
        let a = HnswIndex::build(v.clone(), HnswParams::default()).unwrap();
        let b = HnswIndex::build(v, HnswParams::default()).unwrap();
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.links, b.links);
        assert_eq!(a.entry, b.entry);
    }

    fn quant_of(v: &VectorSet, mode: galign_quant::QuantMode) -> Arc<QuantizedPanel> {
        let rows: Vec<&[f64]> = (0..v.len()).map(|i| v.row(i)).collect();
        Arc::new(QuantizedPanel::encode(mode, v.dim(), rows).unwrap())
    }

    #[test]
    fn quantized_traversal_keeps_recall_and_falls_back_cleanly() {
        let v = random_unit_vectors(300, 8, 21);
        let mut idx = HnswIndex::build(v.clone(), HnswParams::default()).unwrap();
        let mut stats = SearchStats::default();
        // No panel attached: search_quant must be the exact search.
        assert!(!idx.quant_attached());
        let q = v.row(7).to_vec();
        assert_eq!(
            idx.search(&q, 10, &mut stats),
            idx.search_quant(&q, 10, &mut stats)
        );
        for mode in [galign_quant::QuantMode::Int8, galign_quant::QuantMode::F16] {
            idx.attach_quant(quant_of(&v, mode)).unwrap();
            assert!(idx.quant_attached());
            let (mut hit, mut total) = (0usize, 0usize);
            for qi in 0..20 {
                let q = v.row(qi * 13).to_vec();
                let truth = brute_topk(&v, &q, 10);
                let cands: Vec<usize> = idx
                    .search_quant(&q, 10, &mut stats)
                    .into_iter()
                    .map(|c| c.id)
                    .collect();
                total += truth.len();
                hit += truth.iter().filter(|t| cands.contains(t)).count();
            }
            let recall = hit as f64 / total as f64;
            assert!(recall >= 0.9, "{} traversal recall {recall}", mode.name());
        }
        // Shape mismatches are rejected.
        let wrong = random_unit_vectors(300, 4, 22);
        assert!(idx
            .attach_quant(quant_of(&wrong, galign_quant::QuantMode::Int8))
            .is_err());
        let short = random_unit_vectors(5, 8, 23);
        assert!(idx
            .attach_quant(quant_of(&short, galign_quant::QuantMode::Int8))
            .is_err());
    }

    #[test]
    fn search_is_sublinear_at_moderate_n() {
        let v = random_unit_vectors(2000, 16, 11);
        let idx = HnswIndex::build(v.clone(), HnswParams::default()).unwrap();
        let mut stats = SearchStats::default();
        let queries = 20usize;
        for qi in 0..queries {
            let q = v.row(qi * 97).to_vec();
            let hits = idx.search_raw(&q, 10, &mut stats);
            assert!(!hits.is_empty());
        }
        // n=2000 is small enough that the beam covers a sizeable fraction;
        // the strong (< 0.2·n) contract is asserted at n=10k by exp_index.
        let mean = stats.distance_evals as f64 / queries as f64;
        assert!(
            mean < 0.75 * 2000.0,
            "mean {mean} distance evals is not sublinear in n=2000"
        );
    }
}
