//! Inverted-file cluster-probe index.
//!
//! Build: k-means-lite (a few Lloyd rounds) over the vectors. Because
//! rows are L2-normalised, assigning to the centroid maximising
//! `⟨x, c⟩ − ‖c‖²/2` is equivalent to minimising Euclidean distance, so
//! the whole build runs on the same inner-product kernel as search.
//!
//! Search: rank centroids by `⟨q, c⟩`, scan the `nprobe` best cells
//! exhaustively. Cost per query ≈ `k_clusters + nprobe · n / k_clusters`
//! distance evaluations — minimised around `k_clusters ≈ √(n·nprobe)`,
//! which is what [`IvfParams::default_for`] picks.

use crate::{
    dot, record_build, record_search, sort_candidates, AnnIndex, Backend, Candidate, IndexError,
    QueryScorer, Result, Rng, Scored, SearchStats, VectorSet,
};
use galign_quant::QuantizedPanel;
use std::sync::Arc;
use std::time::Instant;

/// IVF build/search tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfParams {
    /// Number of k-means cells.
    pub clusters: usize,
    /// Number of cells scanned per query.
    pub nprobe: usize,
    /// Lloyd refinement rounds.
    pub iters: usize,
    /// Seed for centroid initialisation.
    pub seed: u64,
}

impl IvfParams {
    /// Balanced defaults for a set of `n` vectors: `clusters ≈ √(8n)`
    /// (so probing 8 cells touches ≈ `√(8n)·√n/√(8n)·8 = 8n/clusters`
    /// vectors — about the same work as the centroid scan), clamped to
    /// keep tiny sets exact.
    #[must_use]
    pub fn default_for(n: usize) -> Self {
        let clusters = ((8 * n.max(1)) as f64).sqrt().ceil() as usize;
        IvfParams {
            clusters: clusters.clamp(1, n.max(1)),
            nprobe: 8,
            iters: 6,
            seed: 0x5eed_1d02,
        }
    }
}

/// The cluster-probe index.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    vectors: VectorSet,
    params: IvfParams,
    /// Row-major `clusters × dim` centroid matrix.
    centroids: Vec<f64>,
    /// `lists[c]` — ids assigned to centroid `c`, ascending.
    lists: Vec<Vec<u32>>,
    /// Optional quantized view of `vectors` for cheap cell scans
    /// ([`AnnIndex::search_quant`]); never serialized, re-attached like the
    /// vectors themselves.
    quant: Option<Arc<QuantizedPanel>>,
}

impl IvfIndex {
    /// Builds the index over `vectors` (consumed) with `params`.
    ///
    /// # Errors
    /// [`IndexError::Invalid`] when `clusters == 0`, `nprobe == 0`, or
    /// `clusters > n` for a non-empty set.
    pub fn build(vectors: VectorSet, params: IvfParams) -> Result<Self> {
        if params.clusters == 0 || params.nprobe == 0 {
            return Err(IndexError::Invalid(
                "ivf clusters and nprobe must be >= 1".into(),
            ));
        }
        if !vectors.is_empty() && params.clusters > vectors.len() {
            return Err(IndexError::Invalid(format!(
                "ivf clusters {} exceeds vector count {}",
                params.clusters,
                vectors.len()
            )));
        }
        let start = Instant::now();
        let n = vectors.len();
        let dim = vectors.dim();
        let k = params.clusters;
        let mut stats = SearchStats::default();
        let mut centroids = vec![0.0; k * dim];
        let mut assign = vec![0u32; n];
        if n > 0 {
            // Seed centroids from distinct vectors (evenly strided with a
            // random offset — cheap, deterministic, duplicate-free).
            let mut rng = Rng::new(params.seed);
            let offset = rng.below(n);
            for (c, chunk) in centroids.chunks_exact_mut(dim).enumerate() {
                let src = (offset + c * n / k) % n;
                chunk.copy_from_slice(vectors.row(src));
            }
            for _ in 0..params.iters {
                // Assignment: argmax ⟨x,c⟩ − ‖c‖²/2 (== nearest centroid).
                let half_sq: Vec<f64> = centroids
                    .chunks_exact(dim)
                    .map(|c| 0.5 * dot(c, c))
                    .collect();
                for (i, slot) in assign.iter_mut().enumerate() {
                    let x = vectors.row(i);
                    let mut best = f64::NEG_INFINITY;
                    for (c, centroid) in centroids.chunks_exact(dim).enumerate() {
                        stats.distance_evals += 1;
                        let s = dot(x, centroid) - half_sq[c];
                        if s > best {
                            best = s;
                            *slot = c as u32;
                        }
                    }
                }
                // Update: mean of members; empty cells re-seed from the
                // stream so no cell is wasted.
                centroids.fill(0.0);
                let mut counts = vec![0usize; k];
                for (i, &c) in assign.iter().enumerate() {
                    counts[c as usize] += 1;
                    let base = c as usize * dim;
                    for (d, v) in vectors.row(i).iter().enumerate() {
                        centroids[base + d] += v;
                    }
                }
                for (c, count) in counts.iter().enumerate() {
                    let base = c * dim;
                    if *count > 0 {
                        let inv = 1.0 / *count as f64;
                        for slot in &mut centroids[base..base + dim] {
                            *slot *= inv;
                        }
                    } else {
                        centroids[base..base + dim].copy_from_slice(vectors.row(rng.below(n)));
                    }
                }
            }
        }
        let mut lists = vec![Vec::new(); k];
        for (i, &c) in assign.iter().enumerate() {
            lists[c as usize].push(i as u32);
        }
        let index = IvfIndex {
            vectors,
            params,
            centroids,
            lists,
            quant: None,
        };
        record_build(Backend::Ivf, n, stats, start.elapsed().as_secs_f64() * 1e3);
        Ok(index)
    }

    /// The build/search parameters in effect.
    #[must_use]
    pub fn params(&self) -> IvfParams {
        self.params
    }

    /// The indexed vectors.
    #[must_use]
    pub fn vectors(&self) -> &VectorSet {
        &self.vectors
    }

    /// Raw search without telemetry.
    #[must_use]
    pub fn search_raw(&self, query: &[f64], k: usize, stats: &mut SearchStats) -> Vec<Candidate> {
        self.search_raw_scored(&QueryScorer::Exact(query), k, stats)
    }

    /// The probe shared by exact and quantized searches. Centroid ranking
    /// always uses the raw f64 query (centroids are means, not indexed
    /// rows, so there is nothing quantized to score them against); only
    /// the per-cell row scans go through `scorer`.
    fn search_raw_scored(
        &self,
        scorer: &QueryScorer<'_>,
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<Candidate> {
        if self.vectors.is_empty() || k == 0 {
            return Vec::new();
        }
        let query = scorer.raw();
        debug_assert_eq!(query.len(), self.vectors.dim());
        let dim = self.vectors.dim();
        // Rank every centroid by raw inner product with the query (the
        // −‖c‖²/2 correction only matters for assignment, not probing
        // order on a fixed query).
        let mut ranked: Vec<Scored> = self
            .centroids
            .chunks_exact(dim)
            .enumerate()
            .map(|(c, centroid)| {
                stats.distance_evals += 1;
                Scored {
                    score: dot(query, centroid),
                    id: c as u32,
                }
            })
            .collect();
        sort_candidates(&mut ranked);
        let mut hits: Vec<Scored> = Vec::new();
        for cell in ranked.iter().take(self.params.nprobe) {
            for &id in &self.lists[cell.id as usize] {
                hits.push(Scored {
                    score: scorer.score(&self.vectors, id as usize, stats),
                    id,
                });
            }
        }
        sort_candidates(&mut hits);
        // Keep a re-rank margin: all probed vectors up to 4k candidates.
        hits.truncate((4 * k).max(32));
        hits.into_iter()
            .map(|s| Candidate {
                id: s.id as usize,
                approx: s.score,
            })
            .collect()
    }

    pub(crate) fn from_parts(
        vectors: VectorSet,
        params: IvfParams,
        centroids: Vec<f64>,
        lists: Vec<Vec<u32>>,
    ) -> Self {
        IvfIndex {
            vectors,
            params,
            centroids,
            lists,
            quant: None,
        }
    }

    pub(crate) fn parts(&self) -> (&[f64], &[Vec<u32>]) {
        (&self.centroids, &self.lists)
    }
}

impl AnnIndex for IvfIndex {
    fn backend(&self) -> Backend {
        Backend::Ivf
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn search(&self, query: &[f64], k: usize, stats: &mut SearchStats) -> Vec<Candidate> {
        let before = stats.distance_evals;
        let cands = self.search_raw(query, k, stats);
        record_search(
            SearchStats {
                distance_evals: stats.distance_evals - before,
            },
            cands.len(),
        );
        cands
    }

    fn attach_quant(&mut self, panel: Arc<QuantizedPanel>) -> Result<()> {
        if panel.len() != self.vectors.len() || panel.dim() != self.vectors.dim() {
            return Err(IndexError::Invalid(format!(
                "quantized panel is {}×{}, index is {}×{}",
                panel.len(),
                panel.dim(),
                self.vectors.len(),
                self.vectors.dim()
            )));
        }
        self.quant = Some(panel);
        Ok(())
    }

    fn quant_attached(&self) -> bool {
        self.quant.is_some()
    }

    fn search_quant(&self, query: &[f64], k: usize, stats: &mut SearchStats) -> Vec<Candidate> {
        let Some(panel) = &self.quant else {
            return self.search(query, k, stats);
        };
        let Ok(qq) = panel.quantize_query(query) else {
            return self.search(query, k, stats);
        };
        let before = stats.distance_evals;
        let scorer = QueryScorer::Quant {
            raw: query,
            panel,
            query: qq,
        };
        let cands = self.search_raw_scored(&scorer, k, stats);
        let evals = stats.distance_evals - before;
        galign_quant::record_scan(evals, cands.len() as u64);
        record_search(
            SearchStats {
                distance_evals: evals,
            },
            cands.len(),
        );
        cands
    }

    fn to_bytes(&self) -> Vec<u8> {
        crate::serial::ivf_to_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_unit_vectors;

    #[test]
    fn params_validation() {
        let v = random_unit_vectors(4, 3, 1);
        let bad = IvfParams {
            clusters: 0,
            nprobe: 8,
            iters: 2,
            seed: 1,
        };
        assert!(IvfIndex::build(v.clone(), bad).is_err());
        let too_many = IvfParams {
            clusters: 9,
            nprobe: 1,
            iters: 2,
            seed: 1,
        };
        assert!(IvfIndex::build(v, too_many).is_err());
    }

    #[test]
    fn default_params_scale_with_n() {
        let p = IvfParams::default_for(10_000);
        assert!(p.clusters >= 64 && p.clusters <= 1024);
        assert_eq!(IvfParams::default_for(0).clusters, 1);
        assert_eq!(
            IvfParams::default_for(3).clusters.min(3),
            IvfParams::default_for(3).clusters
        );
    }

    #[test]
    fn every_vector_lands_in_exactly_one_list() {
        let v = random_unit_vectors(300, 8, 5);
        let idx = IvfIndex::build(v, IvfParams::default_for(300)).unwrap();
        let mut seen = vec![0usize; 300];
        for list in &idx.lists {
            for &id in list {
                seen[id as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn probe_all_cells_is_exact() {
        let v = random_unit_vectors(120, 8, 9);
        let params = IvfParams {
            clusters: 10,
            nprobe: 10,
            iters: 4,
            seed: 3,
        };
        let idx = IvfIndex::build(v.clone(), params).unwrap();
        let mut stats = SearchStats::default();
        for qi in 0..8 {
            let q = v.row(qi * 13).to_vec();
            let hits = idx.search_raw(&q, 5, &mut stats);
            // nprobe == clusters scans everything: the best hit must be
            // the query's own row (score ≈ 1 on unit vectors).
            assert_eq!(hits[0].id, qi * 13);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let v = random_unit_vectors(250, 8, 13);
        let p = IvfParams::default_for(250);
        let a = IvfIndex::build(v.clone(), p).unwrap();
        let b = IvfIndex::build(v, p).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.lists, b.lists);
    }

    #[test]
    fn quantized_probe_keeps_recall_and_falls_back_cleanly() {
        let v = random_unit_vectors(300, 8, 31);
        let mut idx = IvfIndex::build(v.clone(), IvfParams::default_for(300)).unwrap();
        let mut stats = SearchStats::default();
        assert!(!idx.quant_attached());
        let q = v.row(3).to_vec();
        assert_eq!(
            idx.search(&q, 10, &mut stats),
            idx.search_quant(&q, 10, &mut stats)
        );
        let brute_topk = |q: &[f64], k: usize| -> Vec<usize> {
            let mut scored: Vec<Scored> = (0..v.len())
                .map(|i| Scored {
                    score: dot(q, v.row(i)),
                    id: i as u32,
                })
                .collect();
            sort_candidates(&mut scored);
            scored.truncate(k);
            scored.into_iter().map(|s| s.id as usize).collect()
        };
        for mode in [galign_quant::QuantMode::Int8, galign_quant::QuantMode::F16] {
            let rows: Vec<&[f64]> = (0..v.len()).map(|i| v.row(i)).collect();
            let panel = Arc::new(QuantizedPanel::encode(mode, v.dim(), rows).unwrap());
            idx.attach_quant(panel).unwrap();
            assert!(idx.quant_attached());
            let (mut hit, mut total) = (0usize, 0usize);
            for qi in 0..20 {
                let q = v.row(qi * 13).to_vec();
                let truth = brute_topk(&q, 10);
                let cands: Vec<usize> = idx
                    .search_quant(&q, 10, &mut stats)
                    .into_iter()
                    .map(|c| c.id)
                    .collect();
                total += truth.len();
                hit += truth.iter().filter(|t| cands.contains(t)).count();
            }
            let recall = hit as f64 / total as f64;
            assert!(recall >= 0.85, "{} probe recall {recall}", mode.name());
        }
        let wrong = random_unit_vectors(300, 4, 32);
        let rows: Vec<&[f64]> = (0..wrong.len()).map(|i| wrong.row(i)).collect();
        let bad = Arc::new(
            QuantizedPanel::encode(galign_quant::QuantMode::Int8, wrong.dim(), rows).unwrap(),
        );
        assert!(idx.attach_quant(bad).is_err());
    }

    #[test]
    fn probing_is_sublinear() {
        let v = random_unit_vectors(2000, 16, 17);
        let idx = IvfIndex::build(v.clone(), IvfParams::default_for(2000)).unwrap();
        let mut stats = SearchStats::default();
        let queries = 20u32;
        for qi in 0..queries as usize {
            let q = v.row(qi * 97).to_vec();
            assert!(!idx.search_raw(&q, 10, &mut stats).is_empty());
        }
        let mean = stats.distance_evals as f64 / f64::from(queries);
        assert!(
            mean < 0.5 * 2000.0,
            "mean {mean} distance evals is not sublinear in n=2000"
        );
    }
}
