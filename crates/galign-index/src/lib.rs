//! # galign-index
//!
//! Approximate nearest-neighbor (ANN) retrieval for alignment serving.
//!
//! The exact serving path scores a query row against **all** `n` target
//! nodes (`O(n·d·L)` per query through the blocked panel GEMM). The
//! GAlign similarity `S = Σ_l θ⁽ˡ⁾ H_s⁽ˡ⁾ H_t⁽ˡ⁾ᵀ` (paper Eq. 11–12) is a
//! pure inner-product top-k problem, so an ANN index makes it sublinear:
//! concatenate the θ-scaled source row into one query vector and the raw
//! target rows into one vector per node, and
//! `⟨concat(θ_l·s_l), concat(t_l)⟩ = Σ_l θ_l⟨s_l, t_l⟩` exactly. Because
//! every layer is row-L2-normalised, every concatenated target vector has
//! the same norm (√L up to zero rows), so maximum-inner-product ordering
//! coincides with cosine/angular ordering and proximity-graph search is
//! well behaved.
//!
//! Two backends implement the one [`AnnIndex`] trait:
//!
//! * [`hnsw::HnswIndex`] — a layered proximity graph (HNSW-style):
//!   greedy descent through sparse upper layers, then a beam (`ef`)
//!   search on the base layer. Logarithmic-ish distance evaluations per
//!   query, the default backend.
//! * [`ivf::IvfIndex`] — inverted-file cluster probe: k-means-lite
//!   centroids, queries scan the `nprobe` closest cells. Simpler, cheap
//!   to build, a useful cross-check of the graph index.
//!
//! Both return **candidates with approximate scores**; callers re-rank
//! the candidate set exactly (galign-serve does this through
//! `simblock::select_topk`) so returned scores are bit-identical to the
//! exact engine for every hit both return. Searches count their distance
//! evaluations in [`SearchStats`] — the sublinearity proof — and feed the
//! `index.search.*` / `index.build.*` telemetry.
//!
//! Serialization ([`AnnIndex::to_bytes`] / [`load`]) stores the *structure
//! only* (graph links / cluster lists) plus an FNV-1a checksum of the
//! vectors it was built over; the loader re-attaches vectors rebuilt from
//! the serving artifact and verifies the checksum, so the embedded index
//! never duplicates the embeddings it indexes.
//!
//! This crate is std-only (its only dependency is `galign-telemetry`,
//! itself std-only): vectors are plain `&[f64]` rows, determinism comes
//! from an internal seeded xorshift, and no rayon/BLAS is involved —
//! search is per-query cheap by design.

pub mod hnsw;
pub mod ivf;
pub mod serial;

use std::fmt;

pub use hnsw::{HnswIndex, HnswParams};
pub use ivf::{IvfIndex, IvfParams};

/// One ANN candidate: a target node id plus the backend's approximate
/// score (the raw concatenated inner product — exact up to FP accumulation
/// order, which is why callers re-rank before returning scores).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Target-network node id.
    pub id: usize,
    /// Approximate inner-product score used for traversal ordering.
    pub approx: f64,
}

/// Sorted, deduplicated union of several queries' candidate id sets — the
/// shared-candidate gather set of a coalesced multi-query re-rank: the
/// serving tier batches concurrent ANN queries, gathers the union's target
/// rows once into a contiguous block, and re-ranks every query against its
/// own candidates inside that block. Ascending order is load-bearing: the
/// exact re-rank walks candidates in ascending target-id order so the
/// `select_topk` tie contract maps straight back to target ids.
#[must_use]
pub fn union_candidate_ids(per_query: &[Vec<Candidate>]) -> Vec<usize> {
    let mut ids: Vec<usize> = per_query
        .iter()
        .flat_map(|cands| cands.iter().map(|c| c.id))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Per-query search accounting. `distance_evals` is the sublinearity
/// contract: an exact scan costs exactly `n` evaluations, so a mean well
/// below `n` *is* the speedup.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Query↔vector (and centroid) inner products evaluated.
    pub distance_evals: u64,
}

/// Which ANN backend an index uses (stable tags — serialized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Layered proximity graph ([`hnsw::HnswIndex`]).
    Hnsw,
    /// Inverted-file cluster probe ([`ivf::IvfIndex`]).
    Ivf,
}

impl Backend {
    /// The stable serialized tag.
    #[must_use]
    pub fn tag(self) -> u32 {
        match self {
            Backend::Hnsw => 1,
            Backend::Ivf => 2,
        }
    }

    /// Parses a serialized tag.
    #[must_use]
    pub fn from_tag(tag: u32) -> Option<Backend> {
        match tag {
            1 => Some(Backend::Hnsw),
            2 => Some(Backend::Ivf),
            _ => None,
        }
    }

    /// Parses a CLI spelling (`"hnsw"` / `"ivf"`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Backend> {
        match name {
            "hnsw" => Some(Backend::Hnsw),
            "ivf" => Some(Backend::Ivf),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Hnsw => "hnsw",
            Backend::Ivf => "ivf",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Index construction / deserialization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// Inconsistent inputs (shape mismatches, empty vector sets).
    Invalid(String),
    /// A serialized index failed validation (truncation, checksum,
    /// unknown backend, or vectors that do not match the ones the index
    /// was built over).
    Corrupt(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Invalid(msg) => write!(f, "invalid index input: {msg}"),
            IndexError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, IndexError>;

/// The indexed vectors: `n` rows of `dim` floats, row-major. Built by the
/// caller from the concatenated (row-normalised) target embedding layers.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSet {
    n: usize,
    dim: usize,
    data: Vec<f64>,
}

impl VectorSet {
    /// Wraps a row-major buffer of `n` rows by `dim` columns.
    ///
    /// # Errors
    /// [`IndexError::Invalid`] when the buffer length disagrees with the
    /// shape or `dim` is zero while `n` is not.
    pub fn new(n: usize, dim: usize, data: Vec<f64>) -> Result<Self> {
        if n > 0 && dim == 0 {
            return Err(IndexError::Invalid("vectors must have dim >= 1".into()));
        }
        if data.len() != n * dim {
            return Err(IndexError::Invalid(format!(
                "buffer of {} floats cannot back {n} x {dim} vectors",
                data.len()
            )));
        }
        Ok(VectorSet { n, dim, data })
    }

    /// Number of vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Vector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// When `i >= len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// FNV-1a checksum of the raw vector bytes — stored in serialized
    /// indexes so a structure is never re-attached to different vectors.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        serial::fnv1a_f64(&self.data)
    }
}

/// Inner product between a query and a stored row, counting the
/// evaluation (the unit of search cost).
#[inline]
pub(crate) fn score(vectors: &VectorSet, q: &[f64], i: usize, stats: &mut SearchStats) -> f64 {
    stats.distance_evals += 1;
    dot(q, vectors.row(i))
}

/// How a traversal scores the query against stored rows: against the f64
/// vectors (exact inner products) or against an attached quantized panel
/// (~8× cheaper in bytes for int8). Traversal ordering is heuristic either
/// way — callers re-rank candidates exactly — so swapping the scorer
/// changes which candidates surface, never the correctness contract.
pub(crate) enum QueryScorer<'a> {
    /// Full-precision scoring against the [`VectorSet`] rows.
    Exact(&'a [f64]),
    /// First-pass scoring against a quantized panel; `raw` stays available
    /// for the parts of traversal that keep f64 math (IVF centroid
    /// ranking).
    Quant {
        raw: &'a [f64],
        panel: &'a galign_quant::QuantizedPanel,
        query: galign_quant::QuantizedQuery,
    },
}

impl QueryScorer<'_> {
    /// The raw f64 query.
    pub(crate) fn raw(&self) -> &[f64] {
        match self {
            QueryScorer::Exact(q) => q,
            QueryScorer::Quant { raw, .. } => raw,
        }
    }

    /// Scores the query against row `i`, counting one distance evaluation.
    pub(crate) fn score(&self, vectors: &VectorSet, i: usize, stats: &mut SearchStats) -> f64 {
        match self {
            QueryScorer::Exact(q) => score(vectors, q, i, stats),
            QueryScorer::Quant { panel, query, .. } => {
                stats.distance_evals += 1;
                panel.approx_dot(query, i)
            }
        }
    }
}

/// Plain sequential dot product (both backends and the checksum share it).
#[inline]
#[must_use]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// A graph-or-cluster ANN index over one [`VectorSet`].
///
/// Implementations must be `Send + Sync` (serving fans queries across
/// worker threads) and deterministic: the same build inputs produce the
/// same structure, and the same query produces the same candidates.
pub trait AnnIndex: Send + Sync {
    /// Which backend this is.
    fn backend(&self) -> Backend;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// True when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indexed vector dimensionality.
    fn dim(&self) -> usize;

    /// Returns candidate ids (with approximate scores, best first) for a
    /// top-`k` query. The candidate set is intentionally larger than `k`
    /// (the backend's beam/probe width) so exact re-ranking has slack;
    /// callers must re-rank and truncate. `stats` accumulates the
    /// distance evaluations spent.
    fn search(&self, query: &[f64], k: usize, stats: &mut SearchStats) -> Vec<Candidate>;

    /// Attaches a quantized panel over the same rows so traversal can walk
    /// quantized memory instead of the f64 vectors (see
    /// [`AnnIndex::search_quant`]). The panel must cover exactly this
    /// index's vectors (`len() × dim()`); panels are *not* serialized with
    /// the structure — callers re-attach after [`load`], the same way
    /// vectors are re-attached.
    ///
    /// # Errors
    /// [`IndexError::Invalid`] when the panel shape disagrees with the
    /// indexed vectors, or when the backend does not support quantized
    /// traversal (the default).
    fn attach_quant(&mut self, panel: std::sync::Arc<galign_quant::QuantizedPanel>) -> Result<()> {
        let _ = panel;
        Err(IndexError::Invalid(
            "backend does not support quantized traversal".into(),
        ))
    }

    /// True when a quantized panel is attached.
    fn quant_attached(&self) -> bool {
        false
    }

    /// Like [`AnnIndex::search`], but traversal scores candidates against
    /// the attached quantized panel when one is present (falling back to
    /// the exact search when none is attached or the query cannot be
    /// quantized). Candidate *selection* may differ from the exact-scored
    /// traversal; the exact re-rank contract downstream is unchanged.
    fn search_quant(&self, query: &[f64], k: usize, stats: &mut SearchStats) -> Vec<Candidate> {
        self.search(query, k, stats)
    }

    /// Serializes the index *structure* (not the vectors) with the
    /// checksum of the vectors it was built over. See [`load`].
    fn to_bytes(&self) -> Vec<u8>;
}

/// Deserializes an index and re-attaches `vectors` (rebuilt by the caller
/// from the serving artifact). The stored n/dim/checksum must match the
/// supplied vectors exactly.
///
/// # Errors
/// [`IndexError::Corrupt`] on truncation, bad magic/version/backend,
/// checksum mismatch, or a vector set that differs from build time.
pub fn load(bytes: &[u8], vectors: VectorSet) -> Result<Box<dyn AnnIndex>> {
    serial::load(bytes, vectors)
}

/// Records one search in the global telemetry (`index.search.queries`,
/// `index.search.distance_evals`, `index.search.candidates`), gated on
/// `galign_telemetry::metrics_enabled()`.
pub(crate) fn record_search(stats: SearchStats, candidates: usize) {
    if galign_telemetry::metrics_enabled() {
        galign_telemetry::counter_add("index.search.queries", 1);
        galign_telemetry::counter_add("index.search.distance_evals", stats.distance_evals);
        galign_telemetry::histogram_record("index.search.candidates", candidates as f64);
    }
}

/// Records one build in the global telemetry (`index.build.nodes`,
/// `index.build.distance_evals`, `index.build.ms`).
pub(crate) fn record_build(backend: Backend, nodes: usize, stats: SearchStats, ms: f64) {
    if galign_telemetry::metrics_enabled() {
        galign_telemetry::counter_add("index.build.nodes", nodes as u64);
        galign_telemetry::counter_add("index.build.distance_evals", stats.distance_evals);
        galign_telemetry::histogram_record("index.build.ms", ms);
    }
    galign_telemetry::debug!(
        "index",
        "built {backend} index over {nodes} vectors in {ms:.1} ms ({} distance evals)",
        stats.distance_evals
    );
}

/// Deterministic xorshift64* stream — the crate's only randomness source
/// (HNSW level assignment, IVF seeding). Never zero-seeded.
#[derive(Debug, Clone)]
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in (0, 1] — never exactly zero, so `ln` is safe.
    pub(crate) fn f64_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Ordering key for (score, id) pairs: by score via `total_cmp`, ties by
/// *smaller id first* — the same contract as `simblock::select_topk`, so
/// candidate ordering is deterministic even on equal scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Scored {
    pub score: f64,
    pub id: u32,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Sorts candidates best-first (descending score, ties toward smaller id)
/// — the presentation order both backends return.
pub(crate) fn sort_candidates(cands: &mut [Scored]) {
    cands.sort_by(|a, b| b.cmp(a));
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::{Rng, VectorSet};

    /// Seeded set of `n` random L2-normalised rows — the standard fixture
    /// for backend and serialization tests.
    pub(crate) fn random_unit_vectors(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = Rng::new(seed);
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n {
            let row: Vec<f64> = (0..dim).map(|_| rng.f64_unit() * 2.0 - 1.0).collect();
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
            data.extend(row.into_iter().map(|v| v / norm));
        }
        VectorSet::new(n, dim, data).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_set_validation_and_access() {
        let v = VectorSet::new(2, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v.dim(), 3);
        assert_eq!(v.row(1), &[0.0, 1.0, 0.0]);
        assert!(!v.is_empty());
        assert!(VectorSet::new(2, 3, vec![0.0; 5]).is_err());
        assert!(VectorSet::new(2, 0, vec![]).is_err());
        assert!(VectorSet::new(0, 0, vec![]).unwrap().is_empty());
    }

    #[test]
    fn checksum_is_content_sensitive() {
        let a = VectorSet::new(1, 2, vec![1.0, 2.0]).unwrap();
        let b = VectorSet::new(1, 2, vec![1.0, 2.0]).unwrap();
        let c = VectorSet::new(1, 2, vec![1.0, 2.5]).unwrap();
        assert_eq!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    fn backend_tags_roundtrip() {
        for b in [Backend::Hnsw, Backend::Ivf] {
            assert_eq!(Backend::from_tag(b.tag()), Some(b));
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_tag(99), None);
        assert_eq!(Backend::from_name("flat"), None);
    }

    #[test]
    fn scored_orders_like_select_topk() {
        let mut v = [
            Scored { score: 1.0, id: 5 },
            Scored { score: 2.0, id: 9 },
            Scored { score: 2.0, id: 3 },
            Scored { score: 0.5, id: 0 },
        ];
        sort_candidates(&mut v);
        let ids: Vec<u32> = v.iter().map(|s| s.id).collect();
        // Descending score; the 2.0 tie breaks toward the smaller id.
        assert_eq!(ids, vec![3, 9, 5, 0]);
    }

    #[test]
    fn rng_is_deterministic_and_unit_open() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let u = a.f64_unit();
            assert!(u > 0.0 && u <= 1.0);
            assert!(a.below(7) < 7);
        }
    }
}
