//! Structure-only index serialization.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "GALNIDX1" (8)  version u32  backend u32
//! n u64  dim u64  vector-checksum u64      // identity of the build-time vectors
//! <backend params>  <backend structure>
//! file-checksum u64                        // FNV-1a of everything above
//! ```
//!
//! Vectors are deliberately **not** stored: the serving artifact already
//! holds the embedding layers the index was built over, so the loader
//! re-derives the [`VectorSet`] and this module only verifies (via the
//! embedded FNV-1a of the raw vector bytes) that the re-attached vectors
//! are bit-identical to the build-time ones. A graph wired for different
//! vectors is silently wrong, so any mismatch is [`IndexError::Corrupt`].

use crate::{
    hnsw::{HnswIndex, HnswParams},
    ivf::{IvfIndex, IvfParams},
    AnnIndex, Backend, IndexError, Result, VectorSet,
};

/// Serialized-index magic.
pub const MAGIC: [u8; 8] = *b"GALNIDX1";

/// Serialized-index format version.
pub const FORMAT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over raw bytes (same constants as the artifact store's).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over the little-endian bytes of an `f64` slice.
#[must_use]
pub fn fnv1a_f64(values: &[f64]) -> u64 {
    let mut h = FNV_OFFSET;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

struct Writer(Vec<u8>);

impl Writer {
    fn header(backend: Backend, vectors: &VectorSet) -> Self {
        let mut w = Writer(Vec::new());
        w.0.extend_from_slice(&MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(backend.tag());
        w.u64(vectors.len() as u64);
        w.u64(vectors.dim() as u64);
        w.u64(vectors.checksum());
        w
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn ids(&mut self, ids: &[u32]) {
        self.u32(ids.len() as u32);
        for &id in ids {
            self.u32(id);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a(&self.0);
        self.u64(checksum);
        self.0
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| IndexError::Corrupt("truncated index bytes".into()))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn ids(&mut self, max_id: usize) -> Result<Vec<u32>> {
        let len = self.u32()? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let id = self.u32()?;
            if id as usize >= max_id {
                return Err(IndexError::Corrupt(format!(
                    "node id {id} out of range (n = {max_id})"
                )));
            }
            out.push(id);
        }
        Ok(out)
    }
}

pub(crate) fn hnsw_to_bytes(index: &HnswIndex) -> Vec<u8> {
    let mut w = Writer::header(Backend::Hnsw, index.vectors());
    let p = index.params();
    w.u64(p.m as u64);
    w.u64(p.ef_construction as u64);
    w.u64(p.ef_search as u64);
    w.u64(p.seed);
    let (levels, links, entry, max_level) = index.parts();
    w.u32(entry);
    w.u32(u32::from(max_level));
    w.0.extend_from_slice(levels);
    for per_node in links {
        for layer in per_node {
            w.ids(layer);
        }
    }
    w.finish()
}

pub(crate) fn ivf_to_bytes(index: &IvfIndex) -> Vec<u8> {
    let mut w = Writer::header(Backend::Ivf, index.vectors());
    let p = index.params();
    w.u64(p.clusters as u64);
    w.u64(p.nprobe as u64);
    w.u64(p.iters as u64);
    w.u64(p.seed);
    let (centroids, lists) = index.parts();
    for &v in centroids {
        w.f64(v);
    }
    for list in lists {
        w.ids(list);
    }
    w.finish()
}

/// Deserializes an index and re-attaches `vectors`. See [`crate::load`].
pub(crate) fn load(bytes: &[u8], vectors: VectorSet) -> Result<Box<dyn AnnIndex>> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(IndexError::Corrupt("index bytes too short".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(IndexError::Corrupt("index checksum mismatch".into()));
    }
    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    if r.take(8)? != MAGIC {
        return Err(IndexError::Corrupt("bad index magic".into()));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(IndexError::Corrupt(format!(
            "unsupported index format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let backend = Backend::from_tag(r.u32()?)
        .ok_or_else(|| IndexError::Corrupt("unknown index backend tag".into()))?;
    let n = r.u64()? as usize;
    let dim = r.u64()? as usize;
    let checksum = r.u64()?;
    if n != vectors.len() || dim != vectors.dim() {
        return Err(IndexError::Corrupt(format!(
            "index was built over {n} x {dim} vectors but {} x {} were supplied",
            vectors.len(),
            vectors.dim()
        )));
    }
    if checksum != vectors.checksum() {
        return Err(IndexError::Corrupt(
            "supplied vectors differ from the ones the index was built over".into(),
        ));
    }
    match backend {
        Backend::Hnsw => {
            let params = HnswParams {
                m: r.u64()? as usize,
                ef_construction: r.u64()? as usize,
                ef_search: r.u64()? as usize,
                seed: r.u64()?,
            };
            let entry = r.u32()?;
            let max_level = r.u32()?;
            if max_level > 255 || (n > 0 && entry as usize >= n) {
                return Err(IndexError::Corrupt("bad hnsw entry point".into()));
            }
            let levels = r.take(n)?.to_vec();
            let mut links = Vec::with_capacity(n);
            for &level in &levels {
                let mut per_node = Vec::with_capacity(level as usize + 1);
                for _ in 0..=level {
                    per_node.push(r.ids(n)?);
                }
                links.push(per_node);
            }
            expect_end(&r)?;
            Ok(Box::new(HnswIndex::from_parts(
                vectors,
                params,
                levels,
                links,
                entry,
                max_level as u8,
            )))
        }
        Backend::Ivf => {
            let params = IvfParams {
                clusters: r.u64()? as usize,
                nprobe: r.u64()? as usize,
                iters: r.u64()? as usize,
                seed: r.u64()?,
            };
            let mut centroids = Vec::with_capacity(params.clusters * dim);
            for _ in 0..params.clusters * dim {
                centroids.push(r.f64()?);
            }
            let mut lists = Vec::with_capacity(params.clusters);
            for _ in 0..params.clusters {
                lists.push(r.ids(n)?);
            }
            expect_end(&r)?;
            Ok(Box::new(IvfIndex::from_parts(
                vectors, params, centroids, lists,
            )))
        }
    }
}

fn expect_end(r: &Reader<'_>) -> Result<()> {
    if r.pos == r.bytes.len() {
        Ok(())
    } else {
        Err(IndexError::Corrupt(
            "trailing bytes after index body".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_unit_vectors;
    use crate::SearchStats;

    fn roundtrip(backend: Backend) -> (Box<dyn AnnIndex>, VectorSet, Vec<u8>) {
        let v = random_unit_vectors(150, 8, 21);
        let index: Box<dyn AnnIndex> = match backend {
            Backend::Hnsw => Box::new(HnswIndex::build(v.clone(), HnswParams::default()).unwrap()),
            Backend::Ivf => {
                Box::new(IvfIndex::build(v.clone(), IvfParams::default_for(150)).unwrap())
            }
        };
        let bytes = index.to_bytes();
        (index, v, bytes)
    }

    #[test]
    fn roundtrip_preserves_search_results() {
        for backend in [Backend::Hnsw, Backend::Ivf] {
            let (original, v, bytes) = roundtrip(backend);
            let loaded = crate::load(&bytes, v.clone()).unwrap();
            assert_eq!(loaded.backend(), backend);
            assert_eq!(loaded.len(), 150);
            assert_eq!(loaded.dim(), 8);
            let mut s1 = SearchStats::default();
            let mut s2 = SearchStats::default();
            for qi in 0..10 {
                let q = v.row(qi * 11).to_vec();
                let a = original.search(&q, 5, &mut s1);
                let b = loaded.search(&q, 5, &mut s2);
                assert_eq!(a.len(), b.len(), "{backend}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.approx.to_bits(), y.approx.to_bits());
                }
            }
            assert_eq!(s1.distance_evals, s2.distance_evals);
        }
    }

    #[test]
    fn wrong_vectors_are_rejected() {
        let (_, _, bytes) = roundtrip(Backend::Hnsw);
        let other = random_unit_vectors(150, 8, 22);
        let err = crate::load(&bytes, other).err().expect("must reject");
        assert!(matches!(err, IndexError::Corrupt(_)), "{err}");
        let short = random_unit_vectors(140, 8, 21);
        assert!(crate::load(&bytes, short).is_err());
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let (_, v, bytes) = roundtrip(Backend::Ivf);
        for pos in (0..bytes.len()).step_by(37) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                crate::load(&bad, v.clone()).is_err(),
                "corruption at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_and_bad_header_are_rejected() {
        let (_, v, bytes) = roundtrip(Backend::Hnsw);
        assert!(crate::load(&bytes[..bytes.len() / 2], v.clone()).is_err());
        assert!(crate::load(&[], v.clone()).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let tail = wrong_version.len() - 8;
        let fixed = fnv1a(&wrong_version[..tail]);
        wrong_version[tail..].copy_from_slice(&fixed.to_le_bytes());
        let err = crate::load(&wrong_version, v).err().expect("must reject");
        assert!(err.to_string().contains("version"), "{err}");
    }
}
