//! Recall floor on a seeded 2k-node fixture (the CI `index` job gate):
//! both backends must reach recall@10 >= 0.95 against brute force, and
//! must do so while evaluating well under n distances per query.

use galign_index::{AnnIndex, HnswIndex, HnswParams, IvfIndex, IvfParams, SearchStats, VectorSet};

const N: usize = 2000;
const DIM: usize = 64;
const QUERIES: usize = 100;
const K: usize = 10;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn unit(state: &mut u64) -> f64 {
    ((xorshift(state) >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// Clustered fixture: CLUSTERS random centers, each row = center + noise,
/// re-normalised. GCN embeddings concentrate around community centroids,
/// so this is the representative workload; uniform random vectors at
/// d=64 have no neighborhood structure for any ANN method to recover.
const CLUSTERS: usize = 40;
const NOISE: f64 = 0.25;

fn fixture(seed: u64) -> VectorSet {
    let mut state = seed | 1;
    let mut centers = Vec::with_capacity(CLUSTERS * DIM);
    for _ in 0..CLUSTERS {
        let row: Vec<f64> = (0..DIM).map(|_| unit(&mut state) * 2.0 - 1.0).collect();
        let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
        centers.extend(row.into_iter().map(|v| v / norm));
    }
    let mut data = Vec::with_capacity(N * DIM);
    for i in 0..N {
        let c = &centers[(i % CLUSTERS) * DIM..(i % CLUSTERS + 1) * DIM];
        let row: Vec<f64> = c
            .iter()
            .map(|&v| v + NOISE * (unit(&mut state) * 2.0 - 1.0))
            .collect();
        let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
        data.extend(row.into_iter().map(|v| v / norm));
    }
    VectorSet::new(N, DIM, data).unwrap()
}

fn brute_topk(vectors: &VectorSet, q: &[f64], k: usize) -> Vec<usize> {
    let mut scored: Vec<(f64, usize)> = (0..vectors.len())
        .map(|i| {
            (
                q.iter()
                    .zip(vectors.row(i))
                    .map(|(a, b)| a * b)
                    .sum::<f64>(),
                i,
            )
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, i)| i).collect()
}

fn recall_of(index: &dyn AnnIndex, vectors: &VectorSet) -> (f64, f64) {
    let mut state = 0x00dd_5eed_u64;
    let mut overlap = 0usize;
    let mut stats = SearchStats::default();
    for _ in 0..QUERIES {
        let qi = (xorshift(&mut state) % N as u64) as usize;
        let q = vectors.row(qi).to_vec();
        let truth = brute_topk(vectors, &q, K);
        let got: Vec<usize> = index
            .search(&q, K, &mut stats)
            .into_iter()
            .map(|c| c.id)
            .collect();
        overlap += truth.iter().filter(|t| got.contains(t)).count();
    }
    let recall = overlap as f64 / (QUERIES * K) as f64;
    let mean_evals = stats.distance_evals as f64 / QUERIES as f64;
    (recall, mean_evals)
}

const SEED: u64 = 0xf1f1_2000;

#[test]
fn hnsw_recall_at_10_meets_floor() {
    let v = fixture(SEED);
    let index = HnswIndex::build(v.clone(), HnswParams::default()).unwrap();
    let (recall, mean_evals) = recall_of(&index, &v);
    assert!(recall >= 0.95, "hnsw recall@10 = {recall:.3} < 0.95");
    assert!(
        mean_evals < 0.5 * N as f64,
        "hnsw mean distance evals {mean_evals:.0} not sublinear at n={N}"
    );
}

#[test]
fn ivf_recall_at_10_meets_floor() {
    let v = fixture(SEED);
    let index = IvfIndex::build(v.clone(), IvfParams::default_for(N)).unwrap();
    let (recall, mean_evals) = recall_of(&index, &v);
    assert!(recall >= 0.95, "ivf recall@10 = {recall:.3} < 0.95");
    assert!(
        mean_evals < 0.5 * N as f64,
        "ivf mean distance evals {mean_evals:.0} not sublinear at n={N}"
    );
}
