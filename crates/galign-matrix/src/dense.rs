//! Row-major dense `f64` matrices with rayon-parallel kernels.
//!
//! [`Dense`] is the workhorse type of the whole workspace: GCN activations,
//! weight matrices, embeddings, and alignment-score blocks are all `Dense`.
//! Kernels use the cache-friendly `ikj` loop order and parallelise over
//! output rows, which is the right trade-off for the tall-skinny matrices
//! (n×d with n ≫ d) this project manipulates.

use crate::error::{MatrixError, Result};
use rayon::prelude::*;

/// Minimum number of rows before a kernel bothers spawning rayon tasks.
const PAR_THRESHOLD: usize = 64;

/// A row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// Creates a `rows`×`cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows`×`cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Dense {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Dense::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a square matrix with `diag` on the diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Dense::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidInput`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidInput(format!(
                "buffer of length {} cannot back a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Dense { rows, cols, data })
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidInput`] on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Dense::zeros(0, 0));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(MatrixError::InvalidInput("ragged rows".into()));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Dense {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Dense { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element at `(i, j)` without bounds diagnostics (panics like slice
    /// indexing on violation).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Checked element access.
    ///
    /// # Errors
    /// Returns [`MatrixError::IndexOutOfBounds`] when `(i, j)` is outside the
    /// matrix.
    pub fn try_get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (i, j),
                shape: self.shape(),
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Immutable slice over row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable slice over row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Returns a new matrix holding the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Dense {
        let mut out = Dense::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Dense {
        let mut out = Dense::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    fn require_same_shape(&self, other: &Dense, op: &'static str) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MatrixError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(())
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Dense) -> Result<Dense> {
        self.require_same_shape(other, "add")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Dense) -> Result<Dense> {
        self.require_same_shape(other, "sub")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place `self += alpha * other` (BLAS `axpy`).
    pub fn axpy(&mut self, alpha: f64, other: &Dense) -> Result<()> {
        self.require_same_shape(other, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scaled copy `alpha * self`.
    pub fn scale(&self, alpha: f64) -> Dense {
        Dense {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * alpha).collect(),
        }
    }

    /// In-place scaling.
    pub fn scale_inplace(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Dense) -> Result<Dense> {
        self.require_same_shape(other, "hadamard")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Ok(Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Dense {
        Dense {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Matrix product `self * other`, parallelised over output rows.
    ///
    /// # Errors
    /// Returns [`MatrixError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Dense) -> Result<Dense> {
        if self.cols != other.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        if galign_telemetry::metrics_enabled() {
            galign_telemetry::counter_add("matrix.gemm.calls", 1);
            galign_telemetry::counter_add("matrix.gemm.flops", (2 * m * k * n) as u64);
            galign_telemetry::counter_add("matrix.alloc.elems", (m * n) as u64);
        }
        let mut out = Dense::zeros(m, n);
        let body = |(i, out_row): (usize, &mut [f64])| {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b;
                }
            }
        };
        if m >= PAR_THRESHOLD {
            out.data
                .par_chunks_exact_mut(n.max(1))
                .enumerate()
                .for_each(body);
        } else {
            out.data
                .chunks_exact_mut(n.max(1))
                .enumerate()
                .for_each(body);
        }
        Ok(out)
    }

    /// Reference (sequential, naive) matrix product used to cross-check the
    /// fast kernel in tests.
    pub fn matmul_naive(&self, other: &Dense) -> Result<Dense> {
        if self.cols != other.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "matmul_naive",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Dense::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0;
                for p in 0..self.cols {
                    acc += self.get(i, p) * other.get(p, j);
                }
                out.set(i, j, acc);
            }
        }
        Ok(out)
    }

    /// Product with a transposed right operand: `self * otherᵀ`.
    ///
    /// Both operands are read row-wise, which makes this the preferred kernel
    /// for similarity matrices `H_s H_tᵀ` (Eq. 11 of the paper).
    pub fn matmul_bt(&self, other: &Dense) -> Result<Dense> {
        if self.cols != other.cols {
            return Err(MatrixError::ShapeMismatch {
                op: "matmul_bt",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.rows);
        if galign_telemetry::metrics_enabled() {
            galign_telemetry::counter_add("matrix.gemm.calls", 1);
            galign_telemetry::counter_add("matrix.gemm.flops", (2 * m * k * n) as u64);
            galign_telemetry::counter_add("matrix.alloc.elems", (m * n) as u64);
        }
        let mut out = Dense::zeros(m, n);
        let body = |(i, out_row): (usize, &mut [f64])| {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                *o = dot(a_row, b_row);
            }
        };
        if m >= PAR_THRESHOLD {
            out.data
                .par_chunks_exact_mut(n.max(1))
                .enumerate()
                .for_each(body);
        } else {
            out.data
                .chunks_exact_mut(n.max(1))
                .enumerate()
                .for_each(body);
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (`cols`×`cols`), computed by accumulating
    /// rank-1 row updates — `O(n d²)` with only a `d²` temporary.
    pub fn gram(&self) -> Dense {
        let d = self.cols;
        if galign_telemetry::metrics_enabled() {
            galign_telemetry::counter_add("matrix.gemm.calls", 1);
            galign_telemetry::counter_add("matrix.gemm.flops", (2 * self.rows * d * d) as u64);
            galign_telemetry::counter_add("matrix.alloc.elems", (d * d) as u64);
        }
        let fold_rows = |acc: Vec<f64>, rows: &[f64]| {
            let mut acc = acc;
            for row in rows.chunks_exact(d.max(1)) {
                for (a, &ra) in row.iter().enumerate() {
                    if ra == 0.0 {
                        continue;
                    }
                    let out = &mut acc[a * d..(a + 1) * d];
                    for (o, &rb) in out.iter_mut().zip(row) {
                        *o += ra * rb;
                    }
                }
            }
            acc
        };
        let data = if self.rows >= PAR_THRESHOLD {
            self.data
                .par_chunks(d.max(1) * 32)
                .fold(|| vec![0.0; d * d], &fold_rows)
                .reduce(
                    || vec![0.0; d * d],
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                        a
                    },
                )
        } else {
            fold_rows(vec![0.0; d * d], &self.data)
        };
        Dense {
            rows: d,
            cols: d,
            data,
        }
    }

    /// Frobenius norm `‖self‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum element (`NEG_INFINITY` for an empty matrix).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Frobenius inner product `⟨self, other⟩`.
    pub fn frobenius_dot(&self, other: &Dense) -> Result<f64> {
        self.require_same_shape(other, "frobenius_dot")?;
        Ok(dot(&self.data, &other.data))
    }

    /// L2 norm of each row.
    pub fn row_norms(&self) -> Vec<f64> {
        self.row_iter().map(|r| dot(r, r).sqrt()).collect()
    }

    /// Returns a copy whose rows are L2-normalised; zero rows are left as-is.
    pub fn normalize_rows(&self) -> Dense {
        let mut out = self.clone();
        for row in out.data.chunks_exact_mut(self.cols.max(1)) {
            let n = dot(row, row).sqrt();
            if n > 0.0 {
                for v in row.iter_mut() {
                    *v /= n;
                }
            }
        }
        out
    }

    /// `(argmax, max)` of row `i`; `None` for zero-width matrices.
    pub fn row_argmax(&self, i: usize) -> Option<(usize, f64)> {
        let row = self.row(i);
        let mut best: Option<(usize, f64)> = None;
        for (j, &v) in row.iter().enumerate() {
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some((j, v));
            }
        }
        best
    }

    /// Indices of the `q` largest entries of row `i`, descending by value.
    pub fn row_topk(&self, i: usize, q: usize) -> Vec<usize> {
        top_k_indices(self.row(i), q)
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hstack(&self, other: &Dense) -> Result<Dense> {
        if self.rows != other.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Dense::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Vertical concatenation.
    pub fn vstack(&self, other: &Dense) -> Result<Dense> {
        if self.cols != other.cols {
            return Err(MatrixError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Dense {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Serialises the element buffer as little-endian `f64` bytes
    /// (row-major, `rows * cols * 8` bytes). The shape is deliberately not
    /// part of the encoding — callers embed it in their own framing (the
    /// `galign-serve` artifact format stores `rows`/`cols` alongside).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 8);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Rebuilds a matrix from [`Dense::to_le_bytes`] output.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidInput`] when `bytes.len()` is not
    /// exactly `rows * cols * 8`.
    pub fn from_le_bytes(rows: usize, cols: usize, bytes: &[u8]) -> Result<Self> {
        if bytes.len() != rows * cols * 8 {
            return Err(MatrixError::InvalidInput(format!(
                "{} bytes cannot back a {rows}x{cols} f64 matrix (want {})",
                bytes.len(),
                rows * cols * 8
            )));
        }
        let data = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        Dense::from_vec(rows, cols, data)
    }

    /// True when every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Dense, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Indices of the `q` largest values in `values`, descending.
///
/// Uses a linear scan with a small sorted buffer — `q` is tiny (≤ 10 for
/// Success@q) compared to row length, so this beats a full sort.
pub fn top_k_indices(values: &[f64], q: usize) -> Vec<usize> {
    let q = q.min(values.len());
    if q == 0 {
        return Vec::new();
    }
    let mut best: Vec<(usize, f64)> = Vec::with_capacity(q + 1);
    for (j, &v) in values.iter().enumerate() {
        if best.len() < q || v > best.last().expect("non-empty when len >= q > 0").1 {
            let pos = best
                .iter()
                .position(|&(_, bv)| v > bv)
                .unwrap_or(best.len());
            best.insert(pos, (j, v));
            if best.len() > q {
                best.pop();
            }
        }
    }
    best.into_iter().map(|(j, _)| j).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use proptest::prelude::*;

    fn m(rows: &[&[f64]]) -> Dense {
        Dense::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.shape(), (2, 2));
        assert_eq!(a.get(1, 0), 3.0);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
        assert!(a.try_get(2, 0).is_err());
        assert!(Dense::from_vec(2, 2, vec![1.0]).is_err());
        assert!(Dense::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_and_diag() {
        let i = Dense::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        let d = Dense::from_diag(&[2.0, 5.0]);
        assert_eq!(d.get(1, 1), 5.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.add(&b).unwrap(), m(&[&[6.0, 8.0], &[10.0, 12.0]]));
        assert_eq!(b.sub(&a).unwrap(), m(&[&[4.0, 4.0], &[4.0, 4.0]]));
        assert_eq!(a.scale(2.0), m(&[&[2.0, 4.0], &[6.0, 8.0]]));
        assert_eq!(a.hadamard(&b).unwrap(), m(&[&[5.0, 12.0], &[21.0, 32.0]]));
        let mut c = a.clone();
        c.axpy(0.5, &b).unwrap();
        assert!(c.approx_eq(&m(&[&[3.5, 5.0], &[6.5, 8.0]]), 1e-12));
        let wrong = Dense::zeros(3, 3);
        assert!(a.add(&wrong).is_err());
    }

    #[test]
    fn matmul_small() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = m(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m(&[&[58.0, 64.0], &[139.0, 154.0]]));
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matmul_bt_matches_transpose() {
        let mut rng = SeededRng::new(7);
        let a = rng.uniform_matrix(13, 5, -1.0, 1.0);
        let b = rng.uniform_matrix(9, 5, -1.0, 1.0);
        let fast = a.matmul_bt(&b).unwrap();
        let slow = a.matmul_naive(&b.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-10));
    }

    #[test]
    fn gram_matches_definition() {
        let mut rng = SeededRng::new(11);
        let a = rng.uniform_matrix(70, 6, -2.0, 2.0);
        let g = a.gram();
        let reference = a.transpose().matmul_naive(&a).unwrap();
        assert!(g.approx_eq(&reference, 1e-9));
    }

    #[test]
    fn transpose_involution() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn norms_and_reductions() {
        let a = m(&[&[3.0, 4.0], &[0.0, 0.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.frobenius_norm_sq(), 25.0);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.row_norms(), vec![5.0, 0.0]);
    }

    #[test]
    fn normalize_rows_keeps_zero_rows() {
        let a = m(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let n = a.normalize_rows();
        assert!((dot(n.row(0), n.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn row_argmax_and_topk() {
        let a = m(&[&[0.1, 0.9, 0.5, 0.9]]);
        // First maximal element wins on ties.
        assert_eq!(a.row_argmax(0), Some((1, 0.9)));
        assert_eq!(a.row_topk(0, 3), vec![1, 3, 2]);
        assert_eq!(top_k_indices(&[], 4), Vec::<usize>::new());
        assert_eq!(top_k_indices(&[1.0, 2.0], 10), vec![1, 0]);
    }

    #[test]
    fn stacking() {
        let a = m(&[&[1.0], &[2.0]]);
        let b = m(&[&[3.0], &[4.0]]);
        assert_eq!(a.hstack(&b).unwrap(), m(&[&[1.0, 3.0], &[2.0, 4.0]]));
        assert_eq!(a.vstack(&b).unwrap(), m(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
        assert!(a.hstack(&Dense::zeros(3, 1)).is_err());
        assert!(a.vstack(&Dense::zeros(1, 2)).is_err());
    }

    #[test]
    fn le_bytes_roundtrip_is_bit_exact() {
        let mut rng = SeededRng::new(21);
        let a = rng.uniform_matrix(7, 5, -1e9, 1e9);
        let bytes = a.to_le_bytes();
        assert_eq!(bytes.len(), 7 * 5 * 8);
        let back = Dense::from_le_bytes(7, 5, &bytes).unwrap();
        // Bit-exact, not just approximate: compare the raw representations.
        for (x, y) in a.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(Dense::from_le_bytes(7, 5, &bytes[..8]).is_err());
        assert!(Dense::from_le_bytes(2, 2, &bytes).is_err());
    }

    #[test]
    fn select_rows_reorders() {
        let a = m(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s, m(&[&[3.0, 3.0], &[1.0, 1.0]]));
    }

    proptest! {
        #[test]
        fn prop_matmul_matches_naive(seed in 0u64..1000, mm in 1usize..40, kk in 1usize..20, nn in 1usize..40) {
            let mut rng = SeededRng::new(seed);
            let a = rng.uniform_matrix(mm, kk, -1.0, 1.0);
            let b = rng.uniform_matrix(kk, nn, -1.0, 1.0);
            let fast = a.matmul(&b).unwrap();
            let slow = a.matmul_naive(&b).unwrap();
            prop_assert!(fast.approx_eq(&slow, 1e-9));
        }

        #[test]
        fn prop_parallel_matmul_large_rows(seed in 0u64..50) {
            // Exercise the rayon path (rows >= PAR_THRESHOLD).
            let mut rng = SeededRng::new(seed);
            let a = rng.uniform_matrix(80, 7, -1.0, 1.0);
            let b = rng.uniform_matrix(7, 5, -1.0, 1.0);
            prop_assert!(a.matmul(&b).unwrap().approx_eq(&a.matmul_naive(&b).unwrap(), 1e-9));
            let c = rng.uniform_matrix(80, 7, -1.0, 1.0);
            prop_assert!(a.matmul_bt(&c).unwrap().approx_eq(&a.matmul_naive(&c.transpose()).unwrap(), 1e-9));
        }

        #[test]
        fn prop_frobenius_triangle_inequality(seed in 0u64..200) {
            let mut rng = SeededRng::new(seed);
            let a = rng.uniform_matrix(6, 6, -1.0, 1.0);
            let b = rng.uniform_matrix(6, 6, -1.0, 1.0);
            let lhs = a.add(&b).unwrap().frobenius_norm();
            prop_assert!(lhs <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
        }

        #[test]
        fn prop_topk_sorted_desc(values in proptest::collection::vec(-1.0f64..1.0, 0..30), q in 0usize..10) {
            let idx = top_k_indices(&values, q);
            prop_assert_eq!(idx.len(), q.min(values.len()));
            for w in idx.windows(2) {
                prop_assert!(values[w[0]] >= values[w[1]]);
            }
            // Every excluded value is <= the smallest included one.
            if let Some(&last) = idx.last() {
                for (j, &v) in values.iter().enumerate() {
                    if !idx.contains(&j) {
                        prop_assert!(v <= values[last] + 1e-12);
                    }
                }
            }
        }
    }
}
