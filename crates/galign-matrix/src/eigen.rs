//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Small symmetric eigenproblems appear in two places in the reproduction:
//! REGAL's Nyström low-rank factorisation (a `p×p` landmark Gram matrix with
//! `p ≈ 10·log n`) and PCA in `galign-viz`. Cyclic Jacobi is simple, robust
//! and plenty fast at those sizes (`O(n³)` per sweep with tiny constants).

use crate::dense::Dense;
use crate::error::{MatrixError, Result};

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as *columns*, aligned with `values`.
    pub vectors: Dense,
}

/// Computes all eigenpairs of a symmetric matrix using cyclic Jacobi
/// rotations.
///
/// # Errors
/// * [`MatrixError::ShapeMismatch`] for a non-square input.
/// * [`MatrixError::NoConvergence`] if the off-diagonal mass does not drop
///   below tolerance within `max_sweeps` sweeps (does not occur for
///   well-posed symmetric input).
pub fn sym_eigen(a: &Dense, max_sweeps: usize) -> Result<SymEigen> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MatrixError::ShapeMismatch {
            op: "sym_eigen",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    if n == 0 {
        return Ok(SymEigen {
            values: Vec::new(),
            vectors: Dense::zeros(0, 0),
        });
    }
    let mut m = a.clone();
    let mut v = Dense::identity(n);
    let tol = 1e-12 * a.frobenius_norm().max(1.0);

    let off_diag_norm = |m: &Dense| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m.get(i, j) * m.get(i, j);
                }
            }
        }
        s.sqrt()
    };

    let mut converged = false;
    for _ in 0..max_sweeps {
        if off_diag_norm(&m) <= tol {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Standard Jacobi rotation angle: tan(2φ) = 2·a_pq / (a_pp − a_qq).
                let phi = 0.5 * (2.0 * apq).atan2(app - aqq);
                let (s, c) = phi.sin_cos();
                // Apply rotation G(p, q, φ) on both sides: M ← Gᵀ M G.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp + s * mkq);
                    m.set(k, q, -s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk + s * mqk);
                    m.set(q, k, -s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp + s * vkq);
                    v.set(k, q, -s * vkp + c * vkq);
                }
            }
        }
    }
    if !converged && off_diag_norm(&m) > tol {
        return Err(MatrixError::NoConvergence {
            op: "sym_eigen",
            iters: max_sweeps,
        });
    }

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m.get(j, j).partial_cmp(&m.get(i, i)).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m.get(i, i)).collect();
    let mut vectors = Dense::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for k in 0..n {
            vectors.set(k, new_col, v.get(k, old_col));
        }
    }
    Ok(SymEigen { values, vectors })
}

/// Symmetric matrix square-root-pseudo-inverse `A^{+1/2}` from the
/// eigendecomposition, zeroing modes with eigenvalue below `cutoff`.
///
/// REGAL's xNetMF uses `W^{1/2}` of the landmark pseudo-inverse; computing
/// it spectrally keeps the factorisation stable when landmarks are nearly
/// collinear.
///
/// # Errors
/// Propagates [`sym_eigen`] failures.
pub fn sqrt_pinv(a: &Dense, cutoff: f64) -> Result<Dense> {
    let eig = sym_eigen(a, 100)?;
    let n = a.rows();
    let mut scaled = eig.vectors.clone();
    for j in 0..n {
        let lam = eig.values[j];
        let f = if lam > cutoff { lam.powf(-0.25) } else { 0.0 };
        for i in 0..n {
            scaled.set(i, j, scaled.get(i, j) * f);
        }
    }
    // A^{+1/2} = V Λ^{-1/2} Vᵀ = (V Λ^{-1/4})(V Λ^{-1/4})ᵀ.
    scaled.matmul_bt(&scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use proptest::prelude::*;

    fn random_symmetric(rng: &mut SeededRng, n: usize) -> Dense {
        let a = rng.uniform_matrix(n, n, -1.0, 1.0);
        a.add(&a.transpose()).unwrap().scale(0.5)
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Dense::from_diag(&[3.0, -1.0, 7.0]);
        let eig = sym_eigen(&a, 50).unwrap();
        assert_eq!(eig.values, vec![7.0, 3.0, -1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Dense::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = sym_eigen(&a, 50).unwrap();
        assert!((eig.values[0] - 3.0).abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_square() {
        assert!(sym_eigen(&Dense::zeros(2, 3), 10).is_err());
    }

    #[test]
    fn empty_matrix() {
        let eig = sym_eigen(&Dense::zeros(0, 0), 10).unwrap();
        assert!(eig.values.is_empty());
    }

    #[test]
    fn sqrt_pinv_of_spd_matrix() {
        let mut rng = SeededRng::new(5);
        let b = rng.uniform_matrix(5, 5, -1.0, 1.0);
        let mut a = b.gram();
        for i in 0..5 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let r = sqrt_pinv(&a, 1e-10).unwrap();
        // r * r ≈ A^{-1}  =>  A * r * r ≈ I.
        let prod = a.matmul(&r).unwrap().matmul(&r).unwrap();
        assert!(prod.approx_eq(&Dense::identity(5), 1e-7));
    }

    #[test]
    fn sqrt_pinv_drops_null_modes() {
        // Rank-1 matrix: pseudo-inverse must not blow up on the null space.
        let v = Dense::from_vec(3, 1, vec![1.0, 2.0, 2.0]).unwrap();
        let a = v.matmul_bt(&v).unwrap(); // vvᵀ, eigenvalue 9 with 2 zeros
        let r = sqrt_pinv(&a, 1e-8).unwrap();
        assert!(r.frobenius_norm().is_finite());
        // On the range of A: A r² v = v.
        let arrv = a
            .matmul(&r)
            .unwrap()
            .matmul(&r)
            .unwrap()
            .matmul(&v)
            .unwrap();
        assert!(arrv.approx_eq(&v, 1e-7));
    }

    proptest! {
        #[test]
        fn prop_reconstruction(seed in 0u64..100, n in 1usize..8) {
            let mut rng = SeededRng::new(seed);
            let a = random_symmetric(&mut rng, n);
            let eig = sym_eigen(&a, 100).unwrap();
            // Reconstruct A = V diag(λ) Vᵀ.
            let lam = Dense::from_diag(&eig.values);
            let rec = eig.vectors.matmul(&lam).unwrap().matmul(&eig.vectors.transpose()).unwrap();
            prop_assert!(rec.approx_eq(&a, 1e-8));
            // Eigenvectors orthonormal.
            let vtv = eig.vectors.gram();
            prop_assert!(vtv.approx_eq(&Dense::identity(n), 1e-8));
            // Values descending.
            for w in eig.values.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
        }

        #[test]
        fn prop_trace_preserved(seed in 0u64..100, n in 1usize..8) {
            let mut rng = SeededRng::new(seed);
            let a = random_symmetric(&mut rng, n);
            let eig = sym_eigen(&a, 100).unwrap();
            let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
            let sum: f64 = eig.values.iter().sum();
            prop_assert!((trace - sum).abs() < 1e-9);
        }
    }
}
