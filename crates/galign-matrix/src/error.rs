//! Error type shared by the linear-algebra kernels.

use std::fmt;

/// Convenient alias for fallible matrix operations.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// Errors raised by dense/sparse kernels and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// Offending (row, col).
        index: (usize, usize),
        /// Matrix shape.
        shape: (usize, usize),
    },
    /// The matrix is not positive definite (Cholesky) or singular (solve).
    NotPositiveDefinite {
        /// Pivot index at which factorisation failed.
        pivot: usize,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Routine name.
        op: &'static str,
        /// Iterations performed.
        iters: usize,
    },
    /// Input data was malformed (e.g. CSR triplets out of range).
    InvalidInput(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            MatrixError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite (pivot {pivot})")
            }
            MatrixError::NoConvergence { op, iters } => {
                write!(f, "{op} did not converge after {iters} iterations")
            }
            MatrixError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = MatrixError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matmul: lhs is 2x3, rhs is 4x5"
        );
    }

    #[test]
    fn display_other_variants() {
        assert!(MatrixError::NotPositiveDefinite { pivot: 3 }
            .to_string()
            .contains("pivot 3"));
        assert!(MatrixError::NoConvergence {
            op: "jacobi",
            iters: 100
        }
        .to_string()
        .contains("jacobi"));
        assert!(MatrixError::InvalidInput("bad".into())
            .to_string()
            .contains("bad"));
        assert!(MatrixError::IndexOutOfBounds {
            index: (9, 9),
            shape: (3, 3)
        }
        .to_string()
        .contains("out of bounds"));
    }
}
