//! Dense and sparse linear-algebra kernels for the GAlign reproduction.
//!
//! This crate is the numerical substrate of the workspace: everything the
//! paper delegates to numpy / PyTorch tensor kernels is implemented here on
//! plain `f64` storage:
//!
//! * [`Dense`] — row-major dense matrices with rayon-parallel GEMM,
//!   Gram products, row normalisation and reductions.
//! * [`Csr`] — compressed-sparse-row matrices (adjacency matrices,
//!   normalised Laplacians) with parallel sparse×dense products.
//! * [`solve`] — Cholesky factorisation and least-squares solves (used by
//!   the PALE baseline's linear mapping).
//! * [`eigen`] — cyclic Jacobi symmetric eigendecomposition (used by
//!   REGAL's Nyström factorisation and by PCA in `galign-viz`).
//! * [`rng`] — deterministic, seedable random initialisers (Xavier/Glorot,
//!   uniform, Gaussian via Box–Muller).
//! * [`simblock`] — blocked streaming similarity engine: the
//!   [`ScoreProvider`] trait plus fused top-k / argmax / row-max reductions
//!   that score θ-weighted multi-order embeddings block-at-a-time in
//!   `O(block · n)` memory.
//!
//! Design notes: matrices are small enough (≤ ~10⁴ rows) that a cache-blocked
//! `f64` GEMM with rayon row-parallelism is adequate; we deliberately avoid
//! BLAS bindings to keep the reproduction self-contained and portable.

pub mod dense;
pub mod eigen;
pub mod error;
pub mod rng;
pub mod simblock;
pub mod solve;
pub mod sparse;

pub use dense::Dense;
pub use error::{MatrixError, Result};
pub use simblock::{ScoreProvider, SimPanel};
pub use sparse::{Coo, Csr};

/// Absolute tolerance used by approximate comparisons in tests and solvers.
pub const EPS: f64 = 1e-9;
