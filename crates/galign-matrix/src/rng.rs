//! Deterministic random number generation and matrix initialisers.
//!
//! All stochastic components of the reproduction (weight initialisation,
//! graph generators, noise injection, walk sampling) draw from
//! [`SeededRng`], a thin wrapper over ChaCha8 so that every experiment is
//! reproducible bit-for-bit from its seed.

use crate::dense::Dense;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seedable RNG with matrix-shaped convenience samplers.
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: ChaCha8Rng,
}

impl SeededRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG; used to give each subsystem its own
    /// stream so adding randomness in one place does not shift another.
    pub fn fork(&mut self, salt: u64) -> SeededRng {
        let s = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(s)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`; panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from the open interval.
        let u1: f64 = loop {
            let u = self.inner.gen::<f64>();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Matrix of i.i.d. uniform samples in `[lo, hi)`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, lo: f64, hi: f64) -> Dense {
        Dense::from_fn(rows, cols, |_, _| self.uniform(lo, hi))
    }

    /// Matrix of i.i.d. standard normal samples scaled by `std`.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, std: f64) -> Dense {
        Dense::from_fn(rows, cols, |_, _| self.normal() * std)
    }

    /// Xavier/Glorot-uniform initialised weight matrix, the initialisation
    /// the paper's PyTorch implementation uses for GCN layers.
    pub fn xavier_uniform(&mut self, fan_in: usize, fan_out: usize) -> Dense {
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        self.uniform_matrix(fan_in, fan_out, -limit, limit)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// A uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Samples `k` distinct indices from `0..n` (reservoir-free; `k ≤ n`).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        let mut p = self.permutation(n);
        p.truncate(k);
        p
    }

    /// Draws an index from an (unnormalised) non-negative weight vector.
    /// Falls back to uniform when all weights are zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return self.index(weights.len());
        }
        let mut target = self.uniform(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Access to the raw rand RNG for interop.
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SeededRng::new(1);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let x: Vec<f64> = (0..10).map(|_| c1.uniform(0.0, 1.0)).collect();
        let y: Vec<f64> = (0..10).map(|_| c2.uniform(0.0, 1.0)).collect();
        assert_ne!(x, y);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SeededRng::new(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = SeededRng::new(3);
        let w = rng.xavier_uniform(100, 200);
        let limit = (6.0f64 / 300.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
        assert_eq!(w.shape(), (100, 200));
    }

    #[test]
    fn permutation_is_bijective() {
        let mut rng = SeededRng::new(5);
        let p = rng.permutation(50);
        let mut seen = [false; 50];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SeededRng::new(9);
        let s = rng.sample_indices(30, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SeededRng::new(11);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[rng.weighted_index(&[0.0, 1.0, 3.0])] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1]);
        // Degenerate all-zero weights fall back to uniform without panicking.
        let _ = rng.weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SeededRng::new(13);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.5)); // clamped to 1
    }
}
