//! Blocked streaming similarity engine — the single scoring substrate for
//! the whole suite.
//!
//! The aggregated alignment matrix `S = Σ_l θ⁽ˡ⁾ H_s⁽ˡ⁾ H_t⁽ˡ⁾ᵀ`
//! (paper Eq. 11–12) is quadratic in the node counts; materialising it caps
//! every consumer at the memory wall long before the CPU becomes the
//! bottleneck. This module instead streams `S` as a sequence of row
//! *blocks* (panel GEMM over the θ-weighted, row-normalised layer
//! embeddings): each block is a `block_rows × n₂` buffer that is scored,
//! reduced (top-k / argmax / row-max) and dropped before the next block is
//! touched, so peak memory is `O(block · n₂)` instead of `O(n₁ · n₂)`.
//! Blocks are independent and fan out across rayon workers.
//!
//! The [`ScoreProvider`] trait defined here is the one scoring API of the
//! workspace: matching policies, Success@q/MAP/AUC evaluation, the
//! refinement loop's stability statistics and `galign-serve`'s query kernel
//! all run off [`ScoreProvider::score_block`] through the fused drivers
//! below ([`top1`], [`topk`], [`greedy_objective`], [`column_argmax`],
//! [`layer_stats`]).
//!
//! Telemetry (all gated on `galign_telemetry::metrics_enabled()`):
//! * `simblock.blocks` — counter, blocks scored;
//! * `simblock.flops` — counter, floating-point ops spent in panels;
//! * `simblock.alloc.elems` — counter, cumulative block-buffer elements;
//! * `simblock.block_elems` — gauge, the per-block buffer size actually in
//!   flight (the peak working set of a streamed reduction).

use crate::dense::{dot, Dense};
use crate::error::{MatrixError, Result};
use galign_quant::{certified_shortlist, QuantizedPanel};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Range;

/// Default number of source rows scored per block. 128 rows × n₂ targets
/// keeps the panel comfortably inside L2 for the embedding sizes the paper
/// uses while leaving enough blocks for rayon to balance.
pub const DEFAULT_BLOCK_ROWS: usize = 128;

/// Anything that can produce alignment scores block-at-a-time.
///
/// This is the redesigned scoring API (formerly a row-only trait in
/// `galign-metrics`): implementors provide [`ScoreProvider::score_block`],
/// and row access ([`ScoreProvider::score_row`], [`ScoreProvider::argmax`])
/// falls out as a one-row block. Implementations must be `Sync` so the
/// blocked drivers can fan out across rayon workers.
pub trait ScoreProvider: Sync {
    /// Number of source nodes (rows of `S`).
    fn num_sources(&self) -> usize;
    /// Number of target nodes (columns of `S`).
    fn num_targets(&self) -> usize;

    /// Writes the score rows of `rows` into `out` (row-major,
    /// `rows.len() * num_targets()` elements). `rows` is guaranteed by the
    /// drivers to lie within `0..num_sources()` and `out` to have exactly
    /// that many elements; implementations may `debug_assert!` both.
    fn score_block(&self, rows: Range<usize>, out: &mut [f64]);

    /// Preferred rows per block for this provider (drivers clamp to ≥ 1).
    fn block_rows(&self) -> usize {
        DEFAULT_BLOCK_ROWS
    }

    /// Alignment scores of source node `v` against every target node —
    /// a one-row block.
    fn score_row(&self, v: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.num_targets()];
        self.score_block(v..v + 1, &mut out);
        out
    }

    /// Index of the best-scoring target for source `v` (`None` when there
    /// are no targets). First strictly-greater entry wins, so ties break
    /// toward the smaller target id.
    fn argmax(&self, v: usize) -> Option<usize> {
        let row = self.score_row(v);
        let mut best: Option<(usize, f64)> = None;
        for (j, s) in row.into_iter().enumerate() {
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((j, s));
            }
        }
        best.map(|(j, _)| j)
    }
}

/// The θ-weighted multi-order similarity panel: borrowed layer stacks of
/// both sides plus the layer weights. This is the workspace's one
/// implementation of Eq. 11–12 scoring — `AlignmentMatrix` and
/// `galign-serve`'s `TopkIndex` both delegate here.
///
/// Scoring accumulates layer-by-layer in index order and skips zero-weight
/// layers, which keeps blocked results bit-identical to the historical
/// row-streamed path (same FP operations in the same order).
#[derive(Debug, Clone, Copy)]
pub struct SimPanel<'a> {
    source: &'a [Dense],
    target: &'a [Dense],
    theta: &'a [f64],
    block_rows: usize,
}

impl<'a> SimPanel<'a> {
    /// Builds a panel over row-normalised layer embeddings.
    ///
    /// # Errors
    /// [`MatrixError::InvalidInput`] when there are no layers or the layer /
    /// θ counts disagree; [`MatrixError::ShapeMismatch`] when a layer pair
    /// disagrees on embedding dimension or a side's layers disagree on node
    /// count.
    pub fn new(source: &'a [Dense], target: &'a [Dense], theta: &'a [f64]) -> Result<Self> {
        if source.is_empty() {
            return Err(MatrixError::InvalidInput(
                "similarity panel needs at least one layer".into(),
            ));
        }
        if source.len() != target.len() || theta.len() != source.len() {
            return Err(MatrixError::InvalidInput(format!(
                "layer/θ counts disagree: source {}, target {}, theta {}",
                source.len(),
                target.len(),
                theta.len()
            )));
        }
        for side in [source, target] {
            for l in side {
                if l.rows() != side[0].rows() {
                    return Err(MatrixError::ShapeMismatch {
                        op: "simblock panel (node counts)",
                        lhs: side[0].shape(),
                        rhs: l.shape(),
                    });
                }
            }
        }
        for (s, t) in source.iter().zip(target) {
            if s.cols() != t.cols() {
                return Err(MatrixError::ShapeMismatch {
                    op: "simblock panel (layer dims)",
                    lhs: s.shape(),
                    rhs: t.shape(),
                });
            }
        }
        Ok(SimPanel {
            source,
            target,
            theta,
            block_rows: DEFAULT_BLOCK_ROWS,
        })
    }

    /// Overrides the rows-per-block (clamped to ≥ 1).
    #[must_use]
    pub fn with_block_rows(mut self, rows: usize) -> Self {
        self.block_rows = rows.max(1);
        self
    }

    /// The θ-weighted concatenated query row for source `v`: layer `l`'s
    /// embedding scaled by `theta[l]`, layers concatenated in index order.
    /// Its f64 dot with a concatenated (unscaled) target row equals the
    /// panel score in real arithmetic, which is what the quantized first
    /// pass approximates.
    #[must_use]
    pub fn weighted_query(&self, v: usize) -> Vec<f64> {
        let dim: usize = self.source.iter().map(Dense::cols).sum();
        let mut out = Vec::with_capacity(dim);
        for (l, &w) in self.theta.iter().enumerate() {
            out.extend(self.source[l].row(v).iter().map(|&x| w * x));
        }
        out
    }

    fn validate_quant(&self, quant: &QuantizedPanel) -> Result<()> {
        let dim: usize = self.target.iter().map(Dense::cols).sum();
        if quant.len() != self.num_targets() || quant.dim() != dim {
            return Err(MatrixError::InvalidInput(format!(
                "quantized panel is {}×{}, target panel is {}×{dim}",
                quant.len(),
                quant.dim(),
                self.num_targets()
            )));
        }
        Ok(())
    }

    /// Exact scores of source `v` against an id-ordered candidate subset,
    /// with the same per-element operation order as
    /// [`ScoreProvider::score_block`] (zero-init, layer-by-layer in index
    /// order, zero-weight layers skipped) so re-ranked scores carry the
    /// exact scan's bits.
    fn exact_scores_for(&self, v: usize, candidates: &[usize]) -> Vec<f64> {
        let mut out = vec![0.0; candidates.len()];
        for (l, &w) in self.theta.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let sv = self.source[l].row(v);
            let t = &self.target[l];
            for (o, &u) in out.iter_mut().zip(candidates) {
                *o += w * dot(sv, t.row(u));
            }
        }
        out
    }

    fn topk_row_quantized_validated(&self, quant: &QuantizedPanel, v: usize, k: usize) -> Vec<Hit> {
        let n_t = self.num_targets();
        let query = self.weighted_query(v);
        let Ok(q) = quant.quantize_query(&query) else {
            // Unquantizable query (non-finite components): serve the plain
            // exact scan, which is trivially bit-identical to itself.
            return select_topk(&self.score_row(v), k);
        };
        let mut approx = vec![0.0; n_t];
        let mut margins = vec![0.0; n_t];
        for u in 0..n_t {
            approx[u] = quant.approx_dot(&q, u);
            margins[u] = quant.margin(&q, u);
        }
        // Certified superset of the exact top-k, ascending by id; exact
        // re-rank + select_topk then reproduces the full scan bit for bit
        // (compact indices preserve id order, so the ascending-id
        // tie-break carries through the remap).
        let shortlist = certified_shortlist(&approx, &margins, k.min(n_t));
        galign_quant::record_scan(n_t as u64, shortlist.len() as u64);
        let scores = self.exact_scores_for(v, &shortlist);
        select_topk(&scores, k)
            .into_iter()
            .map(|h| Hit {
                target: shortlist[h.target],
                score: h.score,
            })
            .collect()
    }

    /// Top-k for source `v` via a quantized first pass: scores every
    /// target through `quant`'s approximate kernel, shortlists the
    /// certified candidates, and re-ranks them through the exact f64
    /// kernel. Returns **bit-identical** hits to
    /// `select_topk(&self.score_row(v), k)` — the quantized pass only
    /// decides which rows the exact kernel touches.
    ///
    /// `quant` must cover the concatenated target rows of this panel
    /// (`num_targets()` rows of Σ layer-dims components).
    ///
    /// # Errors
    /// [`MatrixError::InvalidInput`] when the quantized panel's shape does
    /// not match the target panel.
    pub fn topk_row_quantized(
        &self,
        quant: &QuantizedPanel,
        v: usize,
        k: usize,
    ) -> Result<Vec<Hit>> {
        self.validate_quant(quant)?;
        Ok(self.topk_row_quantized_validated(quant, v, k))
    }

    /// Quantized-first-pass top-k for an arbitrary set of source rows —
    /// the serving batch shape, parallel across the queried rows like
    /// [`topk_rows`]. Bit-identical to the exact per-row scan; the
    /// caller's trace context is carried into the rayon workers.
    ///
    /// # Errors
    /// [`MatrixError::InvalidInput`] when the quantized panel's shape does
    /// not match the target panel.
    pub fn topk_rows_quantized(
        &self,
        quant: &QuantizedPanel,
        rows: &[usize],
        k: usize,
    ) -> Result<Vec<Vec<Hit>>> {
        self.validate_quant(quant)?;
        let trace = galign_telemetry::PropagationHandle::capture();
        Ok(rows
            .par_iter()
            .map(|&v| {
                trace.scope(|| {
                    galign_telemetry::context::annotate("rows_scored", 1);
                    self.topk_row_quantized_validated(quant, v, k)
                })
            })
            .collect())
    }
}

impl ScoreProvider for SimPanel<'_> {
    fn num_sources(&self) -> usize {
        self.source[0].rows()
    }

    fn num_targets(&self) -> usize {
        self.target[0].rows()
    }

    fn block_rows(&self) -> usize {
        self.block_rows
    }

    fn score_block(&self, rows: Range<usize>, out: &mut [f64]) {
        let n_t = self.num_targets();
        debug_assert!(rows.end <= self.num_sources());
        debug_assert_eq!(out.len(), rows.len() * n_t);
        out.fill(0.0);
        if galign_telemetry::metrics_enabled() {
            let d: usize = self
                .theta
                .iter()
                .zip(self.source)
                .filter(|(&w, _)| w != 0.0)
                .map(|(_, l)| l.cols())
                .sum();
            galign_telemetry::counter_add("simblock.flops", (2 * rows.len() * n_t * d) as u64);
        }
        for (l, &w) in self.theta.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let s = &self.source[l];
            let t = &self.target[l];
            for (i, v) in rows.clone().enumerate() {
                let sv = s.row(v);
                let out_row = &mut out[i * n_t..(i + 1) * n_t];
                for (u, o) in out_row.iter_mut().enumerate() {
                    *o += w * dot(sv, t.row(u));
                }
            }
        }
    }
}

/// A *gathered* query-block panel: an arbitrary (possibly repeated,
/// unordered) set of source rows copied into one contiguous per-layer
/// stack and scored against the full target panel — the coalesced
/// serving-batch shape, where concurrent queries from many connections
/// execute as a single query-block × node-panel GEMM sweep instead of
/// one memory-bound row scan each.
///
/// Row `i` of the gathered panel is source node `rows[i]`; since
/// [`ScoreProvider::score_block`] accumulates each row independently
/// (layer-by-layer in index order, zero-weight layers skipped), a
/// gathered block scores **bit-identically** to scoring each row through
/// [`SimPanel`] on its own — the property the serving tier's batched
/// v2 path is tested against.
#[derive(Debug, Clone)]
pub struct GatheredPanel<'a> {
    gathered: Vec<Dense>,
    target: &'a [Dense],
    theta: &'a [f64],
    block_rows: usize,
}

impl<'a> GatheredPanel<'a> {
    /// Gathers `rows` of the source stack into a contiguous query block.
    ///
    /// # Errors
    /// Everything [`SimPanel::new`] rejects, plus
    /// [`MatrixError::InvalidInput`] for an out-of-range row.
    pub fn new(
        source: &[Dense],
        target: &'a [Dense],
        theta: &'a [f64],
        rows: &[usize],
    ) -> Result<Self> {
        // Same shape validation as the contiguous panel.
        SimPanel::new(source, target, theta)?;
        let n = source[0].rows();
        if let Some(&bad) = rows.iter().find(|&&v| v >= n) {
            return Err(MatrixError::InvalidInput(format!(
                "gathered row {bad} out of range (source has {n} rows)"
            )));
        }
        let gathered = source
            .iter()
            .map(|layer| {
                let mut data = Vec::with_capacity(rows.len() * layer.cols());
                for &v in rows {
                    data.extend_from_slice(layer.row(v));
                }
                Dense::from_vec(rows.len(), layer.cols(), data)
                    .expect("gathered rows keep the layer dimension")
            })
            .collect();
        Ok(GatheredPanel {
            gathered,
            target,
            theta,
            block_rows: DEFAULT_BLOCK_ROWS,
        })
    }

    /// Overrides the rows-per-block (clamped to ≥ 1).
    #[must_use]
    pub fn with_block_rows(mut self, rows: usize) -> Self {
        self.block_rows = rows.max(1);
        self
    }
}

impl ScoreProvider for GatheredPanel<'_> {
    fn num_sources(&self) -> usize {
        self.gathered[0].rows()
    }

    fn num_targets(&self) -> usize {
        self.target[0].rows()
    }

    fn block_rows(&self) -> usize {
        self.block_rows
    }

    fn score_block(&self, rows: Range<usize>, out: &mut [f64]) {
        // Identical accumulation order to `SimPanel::score_block`; the
        // gathered rows hold the same bytes as the original source rows,
        // so per-row results are bit-identical.
        let n_t = self.num_targets();
        debug_assert!(rows.end <= self.num_sources());
        debug_assert_eq!(out.len(), rows.len() * n_t);
        out.fill(0.0);
        if galign_telemetry::metrics_enabled() {
            let d: usize = self
                .theta
                .iter()
                .zip(&self.gathered)
                .filter(|(&w, _)| w != 0.0)
                .map(|(_, l)| l.cols())
                .sum();
            galign_telemetry::counter_add("simblock.flops", (2 * rows.len() * n_t * d) as u64);
        }
        for (l, &w) in self.theta.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let s = &self.gathered[l];
            let t = &self.target[l];
            for (i, v) in rows.clone().enumerate() {
                let sv = s.row(v);
                let out_row = &mut out[i * n_t..(i + 1) * n_t];
                for (u, o) in out_row.iter_mut().enumerate() {
                    *o += w * dot(sv, t.row(u));
                }
            }
        }
    }
}

/// One scored alignment candidate (moved here from `galign-serve` so every
/// consumer shares the selection kernels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Target-network node id.
    pub target: usize,
    /// Aggregated alignment score.
    pub score: f64,
}

/// Heap-ordering wrapper: greater = better (higher score, then smaller
/// target id). `total_cmp` gives a total order even for NaN scores.
#[derive(Debug, PartialEq)]
struct Entry {
    score: f64,
    target: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.target.cmp(&self.target))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Partial selection: the `k` best scores (clamped to `scores.len()`),
/// best first, via a size-bounded min-heap (`O(n log k)`).
///
/// # Ordering contract
///
/// Results are sorted by **descending score**; equal scores order by
/// **ascending target id**. This tie-break is part of the public
/// contract, not an implementation accident: every consumer that must
/// agree with the exact engine result-for-result — `topk_rows` batches,
/// the serving cache, and the ANN engine's exact re-rank (which feeds a
/// candidate subset back through this function) — relies on equal-score
/// results coming back in one canonical order. `total_cmp` extends the
/// order to NaN scores, so selection is total on any input.
#[must_use]
pub fn select_topk(scores: &[f64], k: usize) -> Vec<Hit> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::with_capacity(k + 1);
    for (target, &score) in scores.iter().enumerate() {
        heap.push(Reverse(Entry { score, target }));
        if heap.len() > k {
            heap.pop();
        }
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|Reverse(e)| Hit {
            target: e.target,
            score: e.score,
        })
        .collect()
}

/// Reference implementation: full sort, same ordering contract as
/// [`select_topk`]. Public so property tests and benches can share it.
#[must_use]
pub fn select_topk_bruteforce(scores: &[f64], k: usize) -> Vec<Hit> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
    idx.truncate(k);
    idx.into_iter()
        .map(|target| Hit {
            target,
            score: scores[target],
        })
        .collect()
}

fn block_ranges(n: usize, block: usize) -> Vec<Range<usize>> {
    let block = block.max(1);
    (0..n.div_ceil(block))
        .map(|b| b * block..((b + 1) * block).min(n))
        .collect()
}

/// Streams the provider block by block (rayon-parallel across blocks),
/// applying `reduce` to each scored block and returning the per-block
/// results in block order. The block buffer is the only allocation per
/// block — this is the memory contract every fused driver inherits.
pub fn map_blocks<T, F>(provider: &dyn ScoreProvider, reduce: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>, &[f64]) -> T + Sync,
{
    let n_t = provider.num_targets();
    let block = provider.block_rows().max(1);
    if galign_telemetry::metrics_enabled() {
        let peak = block.min(provider.num_sources().max(1)) * n_t;
        galign_telemetry::gauge_set("simblock.block_elems", peak as f64);
    }
    block_ranges(provider.num_sources(), block)
        .into_par_iter()
        .map(|rows| {
            if galign_telemetry::metrics_enabled() {
                galign_telemetry::counter_add("simblock.blocks", 1);
                galign_telemetry::counter_add("simblock.alloc.elems", (rows.len() * n_t) as u64);
            }
            let mut buf = vec![0.0; rows.len() * n_t];
            provider.score_block(rows.clone(), &mut buf);
            reduce(rows, &buf)
        })
        .collect()
}

/// Row argmax with the [`ScoreProvider::argmax`] contract: first
/// strictly-greater entry wins. Callers guarantee a non-empty row.
fn row_argmax(row: &[f64]) -> usize {
    let mut best: Option<(usize, f64)> = None;
    for (u, &s) in row.iter().enumerate() {
        if best.is_none_or(|(_, bs)| s > bs) {
            best = Some((u, s));
        }
    }
    best.expect("row_argmax on empty row").0
}

/// Fused top-1: `(v, argmax S(v, ·))` for every source node, computed
/// block-at-a-time. Empty when there are no targets.
pub fn top1(provider: &dyn ScoreProvider) -> Vec<(usize, usize)> {
    let n_t = provider.num_targets();
    if n_t == 0 {
        return Vec::new();
    }
    map_blocks(provider, |rows, buf| {
        rows.clone()
            .enumerate()
            .map(|(i, v)| (v, row_argmax(&buf[i * n_t..(i + 1) * n_t])))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Fused top-k for every source node, best first per row.
pub fn topk(provider: &dyn ScoreProvider, k: usize) -> Vec<Vec<Hit>> {
    let n_t = provider.num_targets();
    map_blocks(provider, |rows, buf| {
        (0..rows.len())
            .map(|i| select_topk(&buf[i * n_t..(i + 1) * n_t], k))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Top-k for an arbitrary (possibly repeated, unordered) set of source
/// rows — the serving batch shape. Parallel across the queried rows.
///
/// The caller's trace context (if any) is explicitly carried into the
/// rayon workers, so per-row `rows_scored` annotations land on the
/// request's trace even though thread-locals do not cross pool threads.
pub fn topk_rows(provider: &dyn ScoreProvider, rows: &[usize], k: usize) -> Vec<Vec<Hit>> {
    let trace = galign_telemetry::PropagationHandle::capture();
    rows.par_iter()
        .map(|&v| {
            trace.scope(|| {
                galign_telemetry::context::annotate("rows_scored", 1);
                select_topk(&provider.score_row(v), k)
            })
        })
        .collect()
}

/// Fused top-k over **every** provider row with a per-row `k` — the
/// coalesced serving-batch reduction: one query-block × target-panel GEMM
/// sweep ([`map_blocks`], rayon-parallel across blocks) followed by
/// per-row bounded-heap selection with that row's own `k`. Pairs with
/// [`GatheredPanel`], whose row `i` is query `i` of the batch.
///
/// The caller's trace context (if any) is carried into the rayon workers
/// so per-row `rows_scored` annotations land on the batch's trace.
///
/// # Panics
/// When `ks.len() != provider.num_sources()` — one `k` per provider row.
pub fn topk_rows_per_k(provider: &dyn ScoreProvider, ks: &[usize]) -> Vec<Vec<Hit>> {
    assert_eq!(
        ks.len(),
        provider.num_sources(),
        "one k per provider row required"
    );
    let n_t = provider.num_targets();
    let trace = galign_telemetry::PropagationHandle::capture();
    map_blocks(provider, |rows, buf| {
        trace.scope(|| {
            rows.clone()
                .enumerate()
                .map(|(i, v)| {
                    galign_telemetry::context::annotate("rows_scored", 1);
                    select_topk(&buf[i * n_t..(i + 1) * n_t], ks[v])
                })
                .collect::<Vec<_>>()
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Fused greedy objective `g(S) = Σ_v max_u S(v, u)` (Algorithm 2's
/// tracking quantity). Non-finite row maxima are skipped.
pub fn greedy_objective(provider: &dyn ScoreProvider) -> f64 {
    let n_t = provider.num_targets();
    map_blocks(provider, |rows, buf| {
        (0..rows.len())
            .map(|i| {
                buf[i * n_t..(i + 1) * n_t]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .filter(|m| m.is_finite())
            .sum::<f64>()
    })
    .into_iter()
    .sum()
}

/// Fused column argmax: for every target `u`, the `(source, score)` with
/// the highest `S(·, u)`. Ties break toward the smaller source id (blocks
/// are merged in row order). Scores start at `NEG_INFINITY`, so a column
/// of NaNs keeps source 0 — matching the historical sequential pass.
pub fn column_argmax(provider: &dyn ScoreProvider) -> Vec<(usize, f64)> {
    let n_t = provider.num_targets();
    let per_block = map_blocks(provider, |rows, buf| {
        let mut best = vec![(0usize, f64::NEG_INFINITY); n_t];
        for (i, v) in rows.clone().enumerate() {
            for (u, &s) in buf[i * n_t..(i + 1) * n_t].iter().enumerate() {
                if s > best[u].1 {
                    best[u] = (v, s);
                }
            }
        }
        best
    });
    let mut best = vec![(0usize, f64::NEG_INFINITY); n_t];
    for block in per_block {
        for (u, &(v, s)) in block.iter().enumerate() {
            if s > best[u].1 {
                best[u] = (v, s);
            }
        }
    }
    best
}

/// Materialises the full matrix through the blocked engine — `O(n₁ n₂)`
/// memory by definition; kept for tests, tooling and the deprecated
/// `AlignmentMatrix::materialize` shim.
pub fn materialize(provider: &dyn ScoreProvider) -> Dense {
    let (n1, n2) = (provider.num_sources(), provider.num_targets());
    if n1 == 0 || n2 == 0 {
        return Dense::zeros(n1, n2);
    }
    if galign_telemetry::metrics_enabled() {
        galign_telemetry::counter_add("matrix.alloc.elems", (n1 * n2) as u64);
    }
    let block = provider.block_rows().max(1);
    let mut out = Dense::zeros(n1, n2);
    out.as_mut_slice()
        .par_chunks_mut(block * n2)
        .enumerate()
        .for_each(|(b, chunk)| {
            let start = b * block;
            let end = start + chunk.len() / n2;
            provider.score_block(start..end, chunk);
        });
    out
}

/// Per-row, per-layer `(argmax, score)` pairs plus per-row aggregate
/// scores for one block of source rows.
type BlockLayerStats = (Vec<Vec<(usize, f64)>>, Vec<f64>);

/// Blocked per-row layer statistics for the refinement loop (Eq. 13):
/// `stats[v][l] = (argmax, max)` of the *layer-wise* matrix `S⁽ˡ⁾(v, ·)`,
/// plus the greedy aggregated score `g(S)` under `theta`.
///
/// Unlike the aggregated scorers above, zero-weight layers still contribute
/// their per-layer argmax (stability inspects every layer) and their
/// (zero) term to the aggregate — the historical semantics of the
/// refinement kernel, preserved bit for bit. Peak memory is two
/// `block_rows × n_dst` buffers instead of per-row temporaries.
///
/// # Panics
/// `debug_assert!`s that the two sides and `theta` agree on layer count.
pub fn layer_stats(
    source: &[Dense],
    target: &[Dense],
    theta: &[f64],
    block_rows: usize,
) -> (Vec<Vec<(usize, f64)>>, f64) {
    debug_assert_eq!(source.len(), target.len());
    debug_assert_eq!(source.len(), theta.len());
    let n_src = source.first().map_or(0, Dense::rows);
    let n_dst = target.first().map_or(0, Dense::rows);
    let layers = source.len();
    if n_src == 0 || n_dst == 0 {
        return (vec![Vec::new(); n_src], 0.0);
    }
    let block = block_rows.max(1);
    if galign_telemetry::metrics_enabled() {
        let peak = 2 * block.min(n_src) * n_dst;
        galign_telemetry::gauge_set("simblock.block_elems", peak as f64);
    }
    let per_block: Vec<BlockLayerStats> = block_ranges(n_src, block)
        .into_par_iter()
        .map(|rows| {
            let len = rows.len();
            if galign_telemetry::metrics_enabled() {
                galign_telemetry::counter_add("simblock.blocks", 1);
                galign_telemetry::counter_add("simblock.alloc.elems", (2 * len * n_dst) as u64);
                let d: usize = source.iter().map(Dense::cols).sum();
                galign_telemetry::counter_add("simblock.flops", (2 * len * n_dst * d) as u64);
            }
            let mut scratch = vec![0.0f64; len * n_dst];
            let mut agg = vec![0.0f64; len * n_dst];
            let mut stats = vec![Vec::with_capacity(layers); len];
            for l in 0..layers {
                let (s, t, w) = (&source[l], &target[l], theta[l]);
                for (i, v) in rows.clone().enumerate() {
                    let sv = s.row(v);
                    let srow = &mut scratch[i * n_dst..(i + 1) * n_dst];
                    let mut best = (0usize, f64::NEG_INFINITY);
                    for (u, sc) in srow.iter_mut().enumerate() {
                        *sc = dot(sv, t.row(u));
                        if *sc > best.1 {
                            best = (u, *sc);
                        }
                    }
                    stats[i].push(best);
                    for (a, &sc) in agg[i * n_dst..(i + 1) * n_dst].iter_mut().zip(srow.iter()) {
                        *a += w * sc;
                    }
                }
            }
            let row_g: Vec<f64> = (0..len)
                .map(|i| {
                    agg[i * n_dst..(i + 1) * n_dst]
                        .iter()
                        .copied()
                        .fold(f64::NEG_INFINITY, f64::max)
                })
                .collect();
            (stats, row_g)
        })
        .collect();
    // Sum the per-row maxima sequentially in row order so g matches the
    // historical row-streamed accumulation exactly.
    let g_total = per_block
        .iter()
        .flat_map(|(_, gs)| gs.iter())
        .copied()
        .sum();
    let stats = per_block.into_iter().flat_map(|(s, _)| s).collect();
    (stats, g_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn random_stack(rng: &mut SeededRng, rows: usize, dims: &[usize]) -> Vec<Dense> {
        dims.iter()
            .map(|&d| rng.uniform_matrix(rows, d, -1.0, 1.0).normalize_rows())
            .collect()
    }

    fn panel_case(seed: u64) -> (Vec<Dense>, Vec<Dense>, Vec<f64>) {
        let mut rng = SeededRng::new(seed);
        let dims = [4usize, 3];
        let source = random_stack(&mut rng, 23, &dims);
        let target = random_stack(&mut rng, 17, &dims);
        (source, target, vec![0.6, 0.4])
    }

    fn quant_panel(target: &[Dense], mode: galign_quant::QuantMode) -> QuantizedPanel {
        let n = target[0].rows();
        let dim: usize = target.iter().map(Dense::cols).sum();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|u| {
                let mut r = Vec::with_capacity(dim);
                for t in target {
                    r.extend_from_slice(t.row(u));
                }
                r
            })
            .collect();
        QuantizedPanel::encode(mode, dim, &rows).unwrap()
    }

    fn assert_hits_bitwise(exact: &[Hit], fast: &[Hit], ctx: &str) {
        assert_eq!(exact.len(), fast.len(), "{ctx}: lengths");
        for (e, f) in exact.iter().zip(fast) {
            assert_eq!(e.target, f.target, "{ctx}: targets");
            assert_eq!(e.score.to_bits(), f.score.to_bits(), "{ctx}: score bits");
        }
    }

    #[test]
    fn quantized_topk_is_bit_identical_to_exact_scan() {
        let (source, target, theta) = panel_case(11);
        let panel = SimPanel::new(&source, &target, &theta).unwrap();
        for mode in [galign_quant::QuantMode::Int8, galign_quant::QuantMode::F16] {
            let quant = quant_panel(&target, mode);
            for k in [1usize, 3, 17, 40] {
                for v in 0..23 {
                    let exact = select_topk(&panel.score_row(v), k);
                    let fast = panel.topk_row_quantized(&quant, v, k).unwrap();
                    assert_hits_bitwise(&exact, &fast, &format!("{} k={k} v={v}", mode.name()));
                }
                let rows = [0usize, 5, 5, 22];
                let batch = panel.topk_rows_quantized(&quant, &rows, k).unwrap();
                for (&v, hits) in rows.iter().zip(&batch) {
                    let exact = select_topk(&panel.score_row(v), k);
                    assert_hits_bitwise(
                        &exact,
                        hits,
                        &format!("{} batch k={k} v={v}", mode.name()),
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_topk_handles_exact_ties_and_zero_weights() {
        let mut rng = SeededRng::new(29);
        let dims = [4usize, 3];
        let source = random_stack(&mut rng, 6, &dims);
        // 12 targets built from only 4 distinct row patterns → many scores
        // tie exactly; the tie-break (ascending target id) must survive the
        // quantized shortlist + re-rank remap.
        let distinct = random_stack(&mut rng, 4, &dims);
        let target: Vec<Dense> = distinct
            .iter()
            .map(|layer| {
                let rows: Vec<Vec<f64>> = (0..12).map(|u| layer.row(u % 4).to_vec()).collect();
                Dense::from_rows(&rows).unwrap()
            })
            .collect();
        for theta in [vec![0.5, 0.5], vec![1.0, 0.0], vec![0.0, -0.3]] {
            let panel = SimPanel::new(&source, &target, &theta).unwrap();
            for mode in [galign_quant::QuantMode::Int8, galign_quant::QuantMode::F16] {
                let quant = quant_panel(&target, mode);
                for k in [1usize, 2, 5, 12, 30] {
                    for v in 0..6 {
                        let exact = select_topk(&panel.score_row(v), k);
                        let fast = panel.topk_row_quantized(&quant, v, k).unwrap();
                        assert_hits_bitwise(
                            &exact,
                            &fast,
                            &format!("{} θ={theta:?} k={k} v={v}", mode.name()),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quantized_topk_rejects_mismatched_panels() {
        let (source, target, theta) = panel_case(13);
        let panel = SimPanel::new(&source, &target, &theta).unwrap();
        // A panel over only the first layer has the wrong dim.
        let short = quant_panel(&target[..1], galign_quant::QuantMode::Int8);
        assert!(panel.topk_row_quantized(&short, 0, 3).is_err());
        assert!(panel.topk_rows_quantized(&short, &[0, 1], 3).is_err());
    }

    #[test]
    fn panel_validation() {
        let (source, target, theta) = panel_case(1);
        assert!(SimPanel::new(&source, &target, &theta).is_ok());
        assert!(SimPanel::new(&[], &[], &[]).is_err());
        assert!(SimPanel::new(&source, &target[..1], &theta).is_err());
        assert!(SimPanel::new(&source, &target, &theta[..1]).is_err());
        let bad_dim = vec![target[0].clone(), Dense::zeros(17, 9)];
        assert!(SimPanel::new(&source, &bad_dim, &theta).is_err());
        let bad_rows = vec![source[0].clone(), Dense::zeros(5, 3)];
        assert!(SimPanel::new(&bad_rows, &target, &theta).is_err());
    }

    #[test]
    fn blocked_matches_materialized_row_by_row() {
        let (source, target, theta) = panel_case(2);
        let panel = SimPanel::new(&source, &target, &theta)
            .unwrap()
            .with_block_rows(5);
        let full = materialize(&panel);
        for v in 0..23 {
            let row = panel.score_row(v);
            for u in 0..17 {
                assert_eq!(row[u].to_bits(), full.get(v, u).to_bits());
            }
        }
    }

    #[test]
    fn fused_reductions_match_materialized() {
        let (source, target, theta) = panel_case(3);
        for block in [1usize, 4, 7, 64] {
            let panel = SimPanel::new(&source, &target, &theta)
                .unwrap()
                .with_block_rows(block);
            let full = materialize(&panel);
            // top-1 against a dense row argmax.
            let anchors = top1(&panel);
            assert_eq!(anchors.len(), 23);
            for &(v, u) in &anchors {
                assert_eq!(u, full.row_argmax(v).unwrap().0, "block={block} v={v}");
            }
            // top-k (including k > n) against the brute-force sort.
            for k in [1usize, 3, 17, 40] {
                let hits = topk(&panel, k);
                for (v, row_hits) in hits.iter().enumerate() {
                    assert_eq!(row_hits, &select_topk_bruteforce(full.row(v), k));
                }
            }
            // Greedy objective against the dense row maxima.
            let dense_g: f64 = (0..23).map(|v| full.row_argmax(v).unwrap().1).sum();
            assert!((greedy_objective(&panel) - dense_g).abs() < 1e-12);
        }
    }

    #[test]
    fn column_argmax_prefers_smaller_source_on_ties() {
        // All rows identical: every column's best must be source 0.
        let layer = Dense::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let t = Dense::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let source = [layer];
        let target = [t];
        let panel = SimPanel::new(&source, &target, &[1.0])
            .unwrap()
            .with_block_rows(1);
        let best = column_argmax(&panel);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].0, 0);
        assert_eq!(best[1].0, 0);
        assert!((best[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn topk_rows_matches_per_row_selection() {
        let (source, target, theta) = panel_case(4);
        let panel = SimPanel::new(&source, &target, &theta).unwrap();
        let rows = [3usize, 3, 0, 22];
        let batch = topk_rows(&panel, &rows, 4);
        for (i, &v) in rows.iter().enumerate() {
            assert_eq!(batch[i], select_topk(&panel.score_row(v), 4));
        }
    }

    #[test]
    fn gathered_panel_is_bit_identical_to_per_row_scoring() {
        let (source, target, theta) = panel_case(7);
        let panel = SimPanel::new(&source, &target, &theta).unwrap();
        // Repeated, unordered rows — the coalesced-batch shape.
        let rows = [5usize, 0, 22, 5, 13, 13, 1];
        for block in [1usize, 3, 64] {
            let gathered = GatheredPanel::new(&source, &target, &theta, &rows)
                .unwrap()
                .with_block_rows(block);
            assert_eq!(gathered.num_sources(), rows.len());
            for (i, &v) in rows.iter().enumerate() {
                let got = gathered.score_row(i);
                let want = panel.score_row(v);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "block={block} row={v}");
                }
            }
        }
        assert!(GatheredPanel::new(&source, &target, &theta, &[99]).is_err());
    }

    #[test]
    fn topk_rows_per_k_matches_single_row_selection() {
        let (source, target, theta) = panel_case(8);
        let panel = SimPanel::new(&source, &target, &theta).unwrap();
        let rows = [3usize, 3, 0, 22, 11];
        let ks = [1usize, 4, 2, 17, 40];
        let gathered = GatheredPanel::new(&source, &target, &theta, &rows)
            .unwrap()
            .with_block_rows(2);
        let batch = topk_rows_per_k(&gathered, &ks);
        assert_eq!(batch.len(), rows.len());
        for (i, (&v, &k)) in rows.iter().zip(&ks).enumerate() {
            let want = select_topk(&panel.score_row(v), k);
            assert_eq!(batch[i].len(), want.len());
            for (a, b) in batch[i].iter().zip(&want) {
                assert_eq!(a.target, b.target);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn select_topk_ties_break_by_smaller_index() {
        let scores = [1.0, 3.0, 3.0, 0.5];
        let hits = select_topk(&scores, 2);
        assert_eq!(hits[0].target, 1);
        assert_eq!(hits[1].target, 2);
        assert_eq!(hits, select_topk_bruteforce(&scores, 2));
        assert!(select_topk(&[], 3).is_empty());
        assert!(select_topk(&[1.0], 0).is_empty());
    }

    #[test]
    fn select_topk_all_ties_return_ascending_ids() {
        // Regression for the ordering contract: with every score equal,
        // the heap's eviction order is the only thing deciding which ids
        // survive and how they sort — they must be 0..k ascending, for
        // every k, and identical to the brute-force reference. The ANN
        // re-rank path and the serving cache both assume this canonical
        // order for equal scores.
        let scores = vec![0.25f64; 9];
        for k in 0..=scores.len() + 2 {
            let hits = select_topk(&scores, k);
            let want: Vec<usize> = (0..k.min(scores.len())).collect();
            let got: Vec<usize> = hits.iter().map(|h| h.target).collect();
            assert_eq!(got, want, "k = {k}");
            assert!(hits.iter().all(|h| h.score == 0.25));
            assert_eq!(hits, select_topk_bruteforce(&scores, k), "k = {k}");
        }
        // Ties below a distinct maximum: the tied block still orders by
        // ascending id after the strictly-better hit.
        let scores = [0.5, 0.9, 0.5, 0.5];
        let got: Vec<usize> = select_topk(&scores, 3).iter().map(|h| h.target).collect();
        assert_eq!(got, vec![1, 0, 2]);
    }

    #[test]
    fn zero_theta_layers_are_skipped() {
        let (source, target, _) = panel_case(5);
        let panel = SimPanel::new(&source, &target, &[0.0, 0.0]).unwrap();
        assert!(panel.score_row(0).iter().all(|&s| s == 0.0));
    }

    #[test]
    fn layer_stats_matches_naive_reference() {
        let (source, target, theta) = panel_case(6);
        let (stats, g) = layer_stats(&source, &target, &theta, 4);
        assert_eq!(stats.len(), 23);
        // Naive reference: per-row, per-layer scan plus aggregated max.
        let mut g_ref = 0.0;
        for v in 0..23 {
            let mut agg = [0.0f64; 17];
            for (l, &w) in theta.iter().enumerate() {
                let sv = source[l].row(v);
                let mut best = (0usize, f64::NEG_INFINITY);
                for u in 0..17 {
                    let s = dot(sv, target[l].row(u));
                    if s > best.1 {
                        best = (u, s);
                    }
                    agg[u] += w * s;
                }
                assert_eq!(stats[v][l].0, best.0);
                assert_eq!(stats[v][l].1.to_bits(), best.1.to_bits());
            }
            g_ref += agg.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        }
        assert!((g - g_ref).abs() < 1e-12);
    }

    #[test]
    fn layer_stats_empty_sides() {
        let (stats, g) = layer_stats(&[Dense::zeros(0, 2)], &[Dense::zeros(0, 2)], &[1.0], 8);
        assert!(stats.is_empty());
        assert_eq!(g, 0.0);
    }

    #[test]
    fn rectangular_and_empty_targets() {
        let source = [Dense::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap()];
        let empty_t = [Dense::zeros(0, 2)];
        let panel = SimPanel::new(&source, &empty_t, &[1.0]).unwrap();
        assert!(top1(&panel).is_empty());
        assert!(topk(&panel, 3).iter().all(Vec::is_empty));
        assert_eq!(materialize(&panel).shape(), (2, 0));
    }
}
