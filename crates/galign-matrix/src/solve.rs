//! Direct solvers: Cholesky factorisation, triangular solves, linear
//! least squares via regularised normal equations.
//!
//! Used by the PALE baseline (learning the linear mapping between embedding
//! spaces from anchor pairs) and by REGAL's Nyström pseudo-inverse.

use crate::dense::Dense;
use crate::error::{MatrixError, Result};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Dense,
}

impl Cholesky {
    /// Factorises symmetric positive-definite `a` as `L Lᵀ`.
    ///
    /// # Errors
    /// * [`MatrixError::ShapeMismatch`] for non-square input.
    /// * [`MatrixError::NotPositiveDefinite`] when a pivot is `≤ 0`.
    pub fn new(a: &Dense) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(MatrixError::ShapeMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let mut l = Dense::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for p in 0..j {
                    sum -= l.get(i, p) * l.get(j, p);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(MatrixError::NotPositiveDefinite { pivot: i });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Dense {
        &self.l
    }

    /// Solves `A x = b` for one right-hand side.
    ///
    /// # Errors
    /// Returns [`MatrixError::ShapeMismatch`] when `b` has the wrong length.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(MatrixError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for p in 0..i {
                sum -= self.l.get(i, p) * y[p];
            }
            y[i] = sum / self.l.get(i, i);
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for p in i + 1..n {
                sum -= self.l.get(p, i) * x[p];
            }
            x[i] = sum / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    /// Returns [`MatrixError::ShapeMismatch`] when row counts disagree.
    pub fn solve(&self, b: &Dense) -> Result<Dense> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(MatrixError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Dense::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }
}

/// Solves the linear least-squares problem `min_X ‖A X − B‖_F` through the
/// ridge-regularised normal equations `(AᵀA + ridge·I) X = AᵀB`.
///
/// The small ridge keeps the system positive definite when `A` is
/// rank-deficient (e.g. duplicate anchor embeddings in PALE).
///
/// # Errors
/// Propagates shape mismatches and factorisation failures.
pub fn least_squares(a: &Dense, b: &Dense, ridge: f64) -> Result<Dense> {
    if a.rows() != b.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "least_squares",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut ata = a.gram();
    for i in 0..ata.rows() {
        let v = ata.get(i, i);
        ata.set(i, i, v + ridge);
    }
    let atb = a.transpose().matmul(b)?;
    Cholesky::new(&ata)?.solve(&atb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use proptest::prelude::*;

    fn spd(rng: &mut SeededRng, n: usize) -> Dense {
        // AᵀA + n·I is comfortably positive definite.
        let a = rng.uniform_matrix(n, n, -1.0, 1.0);
        let mut g = a.gram();
        for i in 0..n {
            g.set(i, i, g.get(i, i) + n as f64);
        }
        g
    }

    #[test]
    fn factor_reconstructs() {
        let mut rng = SeededRng::new(1);
        let a = spd(&mut rng, 6);
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.approx_eq(&a, 1e-9));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = SeededRng::new(2);
        let a = spd(&mut rng, 8);
        let x_true: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
        let b = a
            .matmul(&Dense::from_vec(8, 1, x_true.clone()).unwrap())
            .unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve_vec(&b.col(0)).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cholesky::new(&Dense::zeros(2, 3)).is_err());
        // Negative-definite matrix fails at pivot 0.
        let neg = Dense::from_diag(&[-1.0, 2.0]);
        match Cholesky::new(&neg) {
            Err(MatrixError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 0),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
        let mut rng = SeededRng::new(3);
        let ch = Cholesky::new(&spd(&mut rng, 3)).unwrap();
        assert!(ch.solve_vec(&[1.0, 2.0]).is_err());
        assert!(ch.solve(&Dense::zeros(5, 2)).is_err());
    }

    #[test]
    fn least_squares_exact_when_consistent() {
        let mut rng = SeededRng::new(4);
        let a = rng.uniform_matrix(20, 4, -1.0, 1.0);
        let x_true = rng.uniform_matrix(4, 3, -1.0, 1.0);
        let b = a.matmul(&x_true).unwrap();
        let x = least_squares(&a, &b, 1e-10).unwrap();
        assert!(x.approx_eq(&x_true, 1e-6));
        assert!(least_squares(&a, &Dense::zeros(5, 3), 0.0).is_err());
    }

    proptest! {
        #[test]
        fn prop_solve_multiple_rhs(seed in 0u64..200) {
            let mut rng = SeededRng::new(seed);
            let a = spd(&mut rng, 5);
            let x_true = rng.uniform_matrix(5, 3, -2.0, 2.0);
            let b = a.matmul(&x_true).unwrap();
            let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
            prop_assert!(x.approx_eq(&x_true, 1e-7));
        }

        #[test]
        fn prop_least_squares_residual_orthogonal(seed in 0u64..100) {
            // Normal equations: Aᵀ(AX - B) ≈ 0 at the minimiser.
            let mut rng = SeededRng::new(seed);
            let a = rng.uniform_matrix(15, 3, -1.0, 1.0);
            let b = rng.uniform_matrix(15, 2, -1.0, 1.0);
            let x = least_squares(&a, &b, 1e-12).unwrap();
            let resid = a.matmul(&x).unwrap().sub(&b).unwrap();
            let grad = a.transpose().matmul(&resid).unwrap();
            prop_assert!(grad.frobenius_norm() < 1e-6);
        }
    }
}
