//! Sparse matrices in COO (builder) and CSR (compute) formats.
//!
//! Adjacency matrices and the normalised Laplacian `C = D̂^{-1/2} Â D̂^{-1/2}`
//! of Eq. 1 are stored as [`Csr`]; the hot kernel is the parallel
//! sparse×dense product [`Csr::spmm`] that drives every GCN forward and
//! backward pass (`O(e·d)`, matching the paper's §VI-C complexity analysis).

use crate::dense::Dense;
use crate::error::{MatrixError, Result};
use rayon::prelude::*;

/// Coordinate-format triplet builder for sparse matrices.
///
/// Duplicated coordinates are *summed* on conversion to CSR, matching the
/// conventions of scipy's `coo_matrix`.
#[derive(Debug, Clone, Default)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// Creates an empty builder for a `rows`×`cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends a triplet.
    ///
    /// # Errors
    /// Returns [`MatrixError::IndexOutOfBounds`] for out-of-range
    /// coordinates.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Number of (possibly duplicated) triplets collected so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no triplets have been collected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Converts to CSR, summing duplicates and dropping explicit zeros.
    pub fn to_csr(mut self) -> Csr {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        indptr.push(0);
        let mut current_row = 0usize;
        let mut i = 0usize;
        while i < self.entries.len() {
            let (r, c, mut v) = self.entries[i];
            i += 1;
            while i < self.entries.len() && self.entries[i].0 == r && self.entries[i].1 == c {
                v += self.entries[i].2;
                i += 1;
            }
            while current_row < r {
                indptr.push(indices.len());
                current_row += 1;
            }
            if v != 0.0 {
                indices.push(c);
                values.push(v);
            }
        }
        while current_row < self.rows {
            indptr.push(indices.len());
            current_row += 1;
        }
        Csr {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }
}

/// Compressed-sparse-row matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// The `rows`×`cols` all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n`×`n` identity.
    pub fn identity(n: usize) -> Self {
        Csr {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds from a dense matrix, keeping entries with `|v| > 0`.
    pub fn from_dense(m: &Dense) -> Self {
        let mut coo = Coo::new(m.rows(), m.cols());
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    coo.push(i, j, v).expect("in-range by construction");
                }
            }
        }
        coo.to_csr()
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_indices(&self, i: usize) -> &[usize] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Values of row `i`, aligned with [`Csr::row_indices`].
    #[inline]
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Value at `(i, j)` (0.0 when not stored). Binary-searches the row.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let idx = self.row_indices(i);
        match idx.binary_search(&j) {
            Ok(pos) => self.row_values(i)[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            self.row_indices(i)
                .iter()
                .zip(self.row_values(i))
                .map(move |(&j, &v)| (i, j, v))
        })
    }

    /// Sum of each row (for adjacency matrices: out-degree).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| self.row_values(i).iter().sum())
            .collect()
    }

    /// Sparse × dense product `self * x`, parallelised over output rows.
    ///
    /// # Errors
    /// Returns [`MatrixError::ShapeMismatch`] when `self.cols != x.rows`.
    pub fn spmm(&self, x: &Dense) -> Result<Dense> {
        if self.cols != x.rows() {
            return Err(MatrixError::ShapeMismatch {
                op: "spmm",
                lhs: self.shape(),
                rhs: x.shape(),
            });
        }
        let d = x.cols();
        if galign_telemetry::metrics_enabled() {
            galign_telemetry::counter_add("matrix.spmm.calls", 1);
            galign_telemetry::counter_add("matrix.spmm.flops", (2 * self.values.len() * d) as u64);
            galign_telemetry::counter_add("matrix.alloc.elems", (self.rows * d) as u64);
        }
        let mut out = Dense::zeros(self.rows, d);
        let body = |(i, out_row): (usize, &mut [f64])| {
            for (&j, &v) in self.row_indices(i).iter().zip(self.row_values(i)) {
                let x_row = x.row(j);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        };
        if self.rows >= 64 {
            out.as_mut_slice()
                .par_chunks_exact_mut(d.max(1))
                .enumerate()
                .for_each(body);
        } else {
            out.as_mut_slice()
                .chunks_exact_mut(d.max(1))
                .enumerate()
                .for_each(body);
        }
        Ok(out)
    }

    /// Sparse matrix–vector product.
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.cols != x.len() {
            return Err(MatrixError::ShapeMismatch {
                op: "spmv",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                self.row_indices(i)
                    .iter()
                    .zip(self.row_values(i))
                    .map(|(&j, &v)| v * x[j])
                    .sum()
            })
            .collect())
    }

    /// Transposed copy (CSC-to-CSR style counting sort, `O(nnz)`).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for (i, j, v) in self.iter() {
            let pos = cursor[j];
            indices[pos] = i;
            values[pos] = v;
            cursor[j] += 1;
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// `diag(left) * self * diag(right)` — the scaling used both for the
    /// normalised Laplacian and for the refinement operator
    /// `C_q = Q D̂^{-1/2} Â D̂^{-1/2} Q` (Eq. 14/15 as resolved in DESIGN.md).
    ///
    /// # Errors
    /// Returns [`MatrixError::ShapeMismatch`] when the diagonal lengths do
    /// not match the matrix shape.
    pub fn diag_scale(&self, left: &[f64], right: &[f64]) -> Result<Csr> {
        if left.len() != self.rows || right.len() != self.cols {
            return Err(MatrixError::ShapeMismatch {
                op: "diag_scale",
                lhs: (left.len(), right.len()),
                rhs: self.shape(),
            });
        }
        let mut out = self.clone();
        for i in 0..out.rows {
            let (start, end) = (out.indptr[i], out.indptr[i + 1]);
            for pos in start..end {
                out.values[pos] *= left[i] * right[out.indices[pos]];
            }
        }
        Ok(out)
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// `Σ_{(i,j)∈nz} self_ij * ⟨h_i, h_j⟩` — the sparse inner product
    /// `⟨self, H Hᵀ⟩` needed by the consistency loss (Eq. 7) without
    /// materialising `H Hᵀ`.
    ///
    /// # Errors
    /// Returns [`MatrixError::ShapeMismatch`] unless `self` is
    /// `n×n` and `h` has `n` rows.
    pub fn weighted_gram_dot(&self, h: &Dense) -> Result<f64> {
        if self.rows != h.rows() || self.cols != h.rows() {
            return Err(MatrixError::ShapeMismatch {
                op: "weighted_gram_dot",
                lhs: self.shape(),
                rhs: h.shape(),
            });
        }
        let total = (0..self.rows)
            .into_par_iter()
            .map(|i| {
                let hi = h.row(i);
                self.row_indices(i)
                    .iter()
                    .zip(self.row_values(i))
                    .map(|(&j, &v)| v * crate::dense::dot(hi, h.row(j)))
                    .sum::<f64>()
            })
            .sum();
        Ok(total)
    }

    /// Densifies (test/debug helper; avoid on large matrices).
    pub fn to_dense(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        for (i, j, v) in self.iter() {
            out.set(i, j, v);
        }
        out
    }

    /// True when the matrix equals its transpose (exact comparison).
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.iter()
            .all(|(i, j, v)| (self.get(j, i) - v).abs() == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use proptest::prelude::*;

    fn random_sparse(rng: &mut SeededRng, rows: usize, cols: usize, density: f64) -> Csr {
        let mut coo = Coo::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.bernoulli(density) {
                    coo.push(i, j, rng.uniform(-1.0, 1.0)).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn coo_roundtrip_with_duplicates() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(0, 1, 3.0).unwrap(); // duplicate summed
        coo.push(2, 0, 1.0).unwrap();
        coo.push(1, 1, 0.0).unwrap(); // explicit zero dropped
        assert_eq!(coo.len(), 4);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), 5.0);
        assert_eq!(csr.get(2, 0), 1.0);
        assert_eq!(csr.get(1, 1), 0.0);
    }

    #[test]
    fn push_out_of_bounds() {
        let mut coo = Coo::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 5, 1.0).is_err());
    }

    #[test]
    fn identity_spmm_is_noop() {
        let mut rng = SeededRng::new(1);
        let x = rng.uniform_matrix(10, 4, -1.0, 1.0);
        let i = Csr::identity(10);
        assert!(i.spmm(&x).unwrap().approx_eq(&x, 0.0));
    }

    #[test]
    fn spmm_shape_error() {
        let c = Csr::zeros(3, 4);
        assert!(c.spmm(&Dense::zeros(3, 2)).is_err());
        assert!(c.spmv(&[1.0; 3]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = SeededRng::new(2);
        let a = random_sparse(&mut rng, 7, 5, 0.3);
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        assert_eq!(a.transpose().shape(), (5, 7));
    }

    #[test]
    fn diag_scale_matches_dense() {
        let mut rng = SeededRng::new(3);
        let a = random_sparse(&mut rng, 5, 5, 0.4);
        let left: Vec<f64> = (0..5).map(|i| (i + 1) as f64).collect();
        let right: Vec<f64> = (0..5).map(|i| 0.5 * (i + 1) as f64).collect();
        let scaled = a.diag_scale(&left, &right).unwrap().to_dense();
        let expected = Dense::from_diag(&left)
            .matmul(&a.to_dense())
            .unwrap()
            .matmul(&Dense::from_diag(&right))
            .unwrap();
        assert!(scaled.approx_eq(&expected, 1e-12));
        assert!(a.diag_scale(&left[..3], &right).is_err());
    }

    #[test]
    fn weighted_gram_dot_matches_dense() {
        let mut rng = SeededRng::new(4);
        let a = random_sparse(&mut rng, 8, 8, 0.3);
        let h = rng.uniform_matrix(8, 3, -1.0, 1.0);
        let fast = a.weighted_gram_dot(&h).unwrap();
        let hht = h.matmul_bt(&h).unwrap();
        let slow = a.to_dense().frobenius_dot(&hht).unwrap();
        assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    #[test]
    fn row_sums_and_symmetry() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(1, 2, 2.0).unwrap();
        coo.push(2, 1, 2.0).unwrap();
        let a = coo.to_csr();
        assert_eq!(a.row_sums(), vec![1.0, 3.0, 2.0]);
        assert!(a.is_symmetric());
        let asym = {
            let mut c = Coo::new(2, 2);
            c.push(0, 1, 1.0).unwrap();
            c.to_csr()
        };
        assert!(!asym.is_symmetric());
        assert!(!Csr::zeros(2, 3).is_symmetric());
    }

    proptest! {
        #[test]
        fn prop_spmm_matches_dense(seed in 0u64..300) {
            let mut rng = SeededRng::new(seed);
            let a = random_sparse(&mut rng, 12, 9, 0.25);
            let x = rng.uniform_matrix(9, 4, -1.0, 1.0);
            let fast = a.spmm(&x).unwrap();
            let slow = a.to_dense().matmul_naive(&x).unwrap();
            prop_assert!(fast.approx_eq(&slow, 1e-10));
        }

        #[test]
        fn prop_from_dense_roundtrip(seed in 0u64..300) {
            let mut rng = SeededRng::new(seed);
            let a = random_sparse(&mut rng, 6, 6, 0.4);
            let rt = Csr::from_dense(&a.to_dense());
            prop_assert_eq!(rt, a);
        }

        #[test]
        fn prop_spmv_matches_spmm(seed in 0u64..200) {
            let mut rng = SeededRng::new(seed);
            let a = random_sparse(&mut rng, 10, 7, 0.3);
            let x: Vec<f64> = (0..7).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let xm = Dense::from_vec(7, 1, x.clone()).unwrap();
            let v = a.spmv(&x).unwrap();
            let m = a.spmm(&xm).unwrap();
            for i in 0..10 {
                prop_assert!((v[i] - m.get(i, 0)).abs() < 1e-12);
            }
        }
    }
}
