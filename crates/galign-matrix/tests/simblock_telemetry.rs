//! Telemetry proof of the streaming engine's memory contract: blocked
//! drivers buffer O(block · n_targets) elements per block — never the
//! n₁ × n₂ similarity matrix — and `materialize` is the only path that
//! pays the full allocation. Kept in its own integration-test binary
//! because the metrics registry is global per process.

use galign_matrix::rng::SeededRng;
use galign_matrix::simblock::{self, SimPanel};
use galign_matrix::Dense;

fn layers(seed: u64, n: usize, dims: &[usize]) -> Vec<Dense> {
    let mut rng = SeededRng::new(seed);
    dims.iter()
        .map(|&d| rng.uniform_matrix(n, d, -1.0, 1.0).normalize_rows())
        .collect()
}

#[test]
fn blocked_drivers_buffer_block_by_targets_not_n_squared() {
    let (n1, n2, block) = (96usize, 70usize, 16usize);
    let dims = [5usize, 4];
    let source = layers(1, n1, &dims);
    let target = layers(2, n2, &dims);
    let theta = vec![0.5, 0.5];
    let panel = SimPanel::new(&source, &target, &theta)
        .unwrap()
        .with_block_rows(block);

    galign_telemetry::set_metrics_enabled(true);
    galign_telemetry::reset_metrics();

    let anchors = simblock::top1(&panel);
    assert_eq!(anchors.len(), n1);

    // The gauge records the live per-block buffer: block · n₂ elements.
    assert_eq!(
        galign_telemetry::gauge_value("simblock.block_elems"),
        Some((block * n2) as f64),
    );
    // Cumulative block-buffer traffic covers each row exactly once...
    assert_eq!(
        galign_telemetry::counter_value("simblock.alloc.elems"),
        (n1 * n2) as u64,
    );
    assert_eq!(
        galign_telemetry::counter_value("simblock.blocks"),
        n1.div_ceil(block) as u64,
    );
    // ...but no n₁ × n₂ Dense was ever allocated by the fused reduction.
    let dense_allocs_after_top1 = galign_telemetry::counter_value("matrix.alloc.elems");
    assert!(
        dense_allocs_after_top1 < (n1 * n2) as u64,
        "top1 allocated {dense_allocs_after_top1} dense elements"
    );

    // Materialising, by contrast, admits to the full quadratic allocation.
    let dense = simblock::materialize(&panel);
    assert_eq!((dense.rows(), dense.cols()), (n1, n2));
    assert!(
        galign_telemetry::counter_value("matrix.alloc.elems")
            >= dense_allocs_after_top1 + (n1 * n2) as u64
    );

    galign_telemetry::set_metrics_enabled(false);
}
