//! Alignment evaluation metrics (§VII-A):
//! Success@q (Eq. 16), MAP (Eq. 17), and the simplified AUC (Eq. 18).
//!
//! All metrics consume a *score provider* — any type that can produce the
//! alignment-score row of a source node — so they work both on materialised
//! alignment matrices and on row-streamed scorers without ever holding the
//! full `n₁×n₂` matrix (§VI-C's space argument).

pub mod metrics;
pub mod scores;

pub use metrics::{evaluate, EvalReport};
pub use scores::{DenseScores, ScoreProvider};
