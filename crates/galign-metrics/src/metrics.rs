//! Success@q (Eq. 16), MAP (Eq. 17) and the simplified AUC (Eq. 18).

use crate::scores::ScoreProvider;
use rayon::prelude::*;

/// Anchor pairs `(source, target)` used as evaluation ground truth.
pub type GroundTruth = [(usize, usize)];

/// Evaluation results over one alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// `(q, Success@q)` pairs in the order requested.
    pub success_at: Vec<(usize, f64)>,
    /// Mean Average Precision (mean reciprocal rank under the pairwise
    /// setting, Eq. 17).
    pub map: f64,
    /// Simplified AUC of Eq. 18, averaged over anchors.
    pub auc: f64,
}

impl EvalReport {
    /// Success@q for a specific `q` (if requested at evaluation time).
    pub fn success(&self, q: usize) -> Option<f64> {
        self.success_at
            .iter()
            .find(|&&(qq, _)| qq == q)
            .map(|&(_, v)| v)
    }
}

/// Rank of the true target within the score row (1 = best).
///
/// Ties are resolved pessimistically: every strictly-greater score outranks
/// the anchor, and equal scores at other positions count half so tied rows
/// do not overstate performance.
fn rank_of(row: &[f64], true_target: usize) -> f64 {
    let s = row[true_target];
    let mut greater = 0usize;
    let mut equal = 0usize;
    for (j, &v) in row.iter().enumerate() {
        if j == true_target {
            continue;
        }
        if v > s {
            greater += 1;
        } else if v == s {
            equal += 1;
        }
    }
    1.0 + greater as f64 + equal as f64 / 2.0
}

/// Evaluates an alignment against ground truth.
///
/// For each anchor `(v, v')`, the score row of `v` is streamed from the
/// provider; `Success@q` counts anchors whose true target ranks within the
/// top `q` (Eq. 16), `MAP = mean(1/ra)` (Eq. 17), and
/// `AUC = (#neg + 1 − ra) / #neg` (Eq. 18) with `#neg = n₂ − 1`.
///
/// Returns a report with all-zero metrics when `truth` is empty.
pub fn evaluate(scores: &dyn ScoreProvider, truth: &GroundTruth, qs: &[usize]) -> EvalReport {
    if truth.is_empty() || scores.num_targets() == 0 {
        return EvalReport {
            success_at: qs.iter().map(|&q| (q, 0.0)).collect(),
            map: 0.0,
            auc: 0.0,
        };
    }
    let ranks: Vec<f64> = truth
        .par_iter()
        .map(|&(v, v_true)| {
            let row = scores.score_row(v);
            rank_of(&row, v_true)
        })
        .collect();

    let n = ranks.len() as f64;
    let negatives = (scores.num_targets() - 1).max(1) as f64;
    let success_at = qs
        .iter()
        .map(|&q| {
            let hits = ranks.iter().filter(|&&r| r <= q as f64).count();
            (q, hits as f64 / n)
        })
        .collect();
    let map = ranks.iter().map(|r| 1.0 / r).sum::<f64>() / n;
    let auc = ranks
        .iter()
        .map(|r| (negatives + 1.0 - r) / negatives)
        .sum::<f64>()
        / n;
    EvalReport {
        success_at,
        map,
        auc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scores::DenseScores;
    use galign_matrix::Dense;
    use proptest::prelude::*;

    fn perfect_scores(n: usize) -> DenseScores {
        DenseScores::new(Dense::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 }))
    }

    #[test]
    fn perfect_alignment_is_all_ones() {
        let truth: Vec<(usize, usize)> = (0..5).map(|i| (i, i)).collect();
        let r = evaluate(&perfect_scores(5), &truth, &[1, 10]);
        assert_eq!(r.success(1), Some(1.0));
        assert_eq!(r.success(10), Some(1.0));
        assert_eq!(r.map, 1.0);
        assert_eq!(r.auc, 1.0);
    }

    #[test]
    fn worst_alignment() {
        // True target always has the lowest score.
        let m = Dense::from_fn(3, 3, |i, j| if i == j { 0.0 } else { 1.0 });
        let truth: Vec<(usize, usize)> = (0..3).map(|i| (i, i)).collect();
        let r = evaluate(&DenseScores::new(m), &truth, &[1]);
        assert_eq!(r.success(1), Some(0.0));
        // rank = 3 ⇒ MAP = 1/3, AUC = (2 + 1 − 3)/2 = 0.
        assert!((r.map - 1.0 / 3.0).abs() < 1e-12);
        assert!(r.auc.abs() < 1e-12);
    }

    #[test]
    fn rank_tie_handling() {
        assert_eq!(rank_of(&[0.5, 0.5, 0.2], 0), 1.5);
        assert_eq!(rank_of(&[0.9, 0.5, 0.2], 1), 2.0);
        assert_eq!(rank_of(&[0.2, 0.2, 0.2], 2), 2.0);
    }

    #[test]
    fn partial_success() {
        // Two anchors right, two wrong at rank 2.
        let m = Dense::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.5, 0.9],
            vec![0.0, 0.0, 0.9, 0.5],
        ])
        .unwrap();
        let truth: Vec<(usize, usize)> = (0..4).map(|i| (i, i)).collect();
        let r = evaluate(&DenseScores::new(m), &truth, &[1, 2]);
        assert_eq!(r.success(1), Some(0.5));
        assert_eq!(r.success(2), Some(1.0));
        assert!((r.map - (1.0 + 1.0 + 0.5 + 0.5) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_is_zero() {
        let r = evaluate(&perfect_scores(3), &[], &[1]);
        assert_eq!(r.success(1), Some(0.0));
        assert_eq!(r.map, 0.0);
        assert_eq!(r.auc, 0.0);
    }

    #[test]
    fn success_lookup_missing_q() {
        let r = evaluate(&perfect_scores(3), &[(0, 0)], &[1]);
        assert_eq!(r.success(5), None);
    }

    proptest! {
        #[test]
        fn prop_metric_bounds(seed in 0u64..200) {
            let mut rng = galign_matrix::rng::SeededRng::new(seed);
            let n = 8;
            let m = rng.uniform_matrix(n, n, -1.0, 1.0);
            let truth: Vec<(usize, usize)> = (0..n).map(|i| (i, rng.index(n))).collect();
            let r = evaluate(&DenseScores::new(m), &truth, &[1, 5, 10]);
            for (_, s) in &r.success_at {
                prop_assert!((0.0..=1.0).contains(s));
            }
            prop_assert!(r.map > 0.0 && r.map <= 1.0);
            prop_assert!((0.0..=1.0).contains(&r.auc));
            // Success@q is monotone in q.
            prop_assert!(r.success(1).unwrap() <= r.success(5).unwrap());
            prop_assert!(r.success(5).unwrap() <= r.success(10).unwrap());
            // MAP is bounded above by Success@1 + contributions of lower ranks,
            // and below by Success@1 itself times 1.
            prop_assert!(r.map >= r.success(1).unwrap() * 1.0 / 1.0 - 1e-12);
        }
    }
}
