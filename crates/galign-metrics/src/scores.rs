//! Score providers: row-streamed access to alignment scores.

use galign_matrix::Dense;

/// Anything that can produce the alignment-score row of a source node.
///
/// The paper's §VI-C space analysis relies on never materialising the full
/// `n₁×n₂` alignment matrix; this trait lets metrics and refinement consume
/// scores row by row. Implementations must be thread-safe (`Sync`) so
/// evaluation can parallelise over anchors.
pub trait ScoreProvider: Sync {
    /// Number of source nodes (rows).
    fn num_sources(&self) -> usize;
    /// Number of target nodes (columns).
    fn num_targets(&self) -> usize;
    /// Alignment scores of source node `v` against every target node.
    fn score_row(&self, v: usize) -> Vec<f64>;

    /// Index of the best-scoring target for source `v` (`None` when there
    /// are no targets).
    fn argmax(&self, v: usize) -> Option<usize> {
        let row = self.score_row(v);
        let mut best: Option<(usize, f64)> = None;
        for (j, s) in row.into_iter().enumerate() {
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((j, s));
            }
        }
        best.map(|(j, _)| j)
    }
}

/// A fully materialised alignment matrix (fine at evaluation scale; the
/// GAlign pipeline itself streams rows instead).
#[derive(Debug, Clone)]
pub struct DenseScores {
    matrix: Dense,
}

impl DenseScores {
    /// Wraps a dense `n₁×n₂` score matrix.
    pub fn new(matrix: Dense) -> Self {
        DenseScores { matrix }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Dense {
        &self.matrix
    }
}

impl ScoreProvider for DenseScores {
    fn num_sources(&self) -> usize {
        self.matrix.rows()
    }

    fn num_targets(&self) -> usize {
        self.matrix.cols()
    }

    fn score_row(&self, v: usize) -> Vec<f64> {
        self.matrix.row(v).to_vec()
    }
}

/// Scores computed lazily from two embedding matrices (`S = E_s E_tᵀ`
/// row by row).
#[derive(Debug, Clone)]
pub struct EmbeddingScores {
    source: Dense,
    target: Dense,
}

impl EmbeddingScores {
    /// Creates a provider over embeddings with equal dimensionality.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn new(source: Dense, target: Dense) -> Self {
        assert_eq!(
            source.cols(),
            target.cols(),
            "embedding dimensions must match"
        );
        EmbeddingScores { source, target }
    }
}

impl ScoreProvider for EmbeddingScores {
    fn num_sources(&self) -> usize {
        self.source.rows()
    }

    fn num_targets(&self) -> usize {
        self.target.rows()
    }

    fn score_row(&self, v: usize) -> Vec<f64> {
        let sv = self.source.row(v);
        (0..self.target.rows())
            .map(|u| galign_matrix::dense::dot(sv, self.target.row(u)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_scores_roundtrip() {
        let m = Dense::from_rows(&[vec![0.1, 0.9], vec![0.7, 0.2]]).unwrap();
        let s = DenseScores::new(m);
        assert_eq!(s.num_sources(), 2);
        assert_eq!(s.num_targets(), 2);
        assert_eq!(s.score_row(0), vec![0.1, 0.9]);
        assert_eq!(s.argmax(0), Some(1));
        assert_eq!(s.argmax(1), Some(0));
    }

    #[test]
    fn embedding_scores_match_matmul() {
        let e_s = Dense::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let e_t = Dense::from_rows(&[vec![0.5, 0.5], vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
        let s = EmbeddingScores::new(e_s.clone(), e_t.clone());
        let full = e_s.matmul_bt(&e_t).unwrap();
        for v in 0..2 {
            assert_eq!(s.score_row(v), full.row(v).to_vec());
        }
        assert_eq!(s.num_targets(), 3);
    }

    #[test]
    fn argmax_empty_targets() {
        let s = DenseScores::new(Dense::zeros(2, 0));
        assert_eq!(s.argmax(0), None);
    }
}
