//! Score providers: block-streamed access to alignment scores.
//!
//! The [`ScoreProvider`] trait itself lives in
//! [`galign_matrix::simblock`] — it is the workspace-wide scoring API — and
//! is re-exported here so metric consumers keep a single import path. This
//! module adds the two evaluation-side implementations.

use galign_matrix::Dense;
use std::ops::Range;

pub use galign_matrix::simblock::ScoreProvider;

/// A fully materialised alignment matrix (fine at evaluation scale; the
/// GAlign pipeline itself streams blocks instead).
#[derive(Debug, Clone)]
pub struct DenseScores {
    matrix: Dense,
}

impl DenseScores {
    /// Wraps a dense `n₁×n₂` score matrix.
    pub fn new(matrix: Dense) -> Self {
        DenseScores { matrix }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Dense {
        &self.matrix
    }
}

impl ScoreProvider for DenseScores {
    fn num_sources(&self) -> usize {
        self.matrix.rows()
    }

    fn num_targets(&self) -> usize {
        self.matrix.cols()
    }

    fn score_block(&self, rows: Range<usize>, out: &mut [f64]) {
        let n_t = self.matrix.cols();
        debug_assert_eq!(out.len(), rows.len() * n_t);
        for (i, v) in rows.enumerate() {
            out[i * n_t..(i + 1) * n_t].copy_from_slice(self.matrix.row(v));
        }
    }

    fn score_row(&self, v: usize) -> Vec<f64> {
        self.matrix.row(v).to_vec()
    }
}

/// Scores computed lazily from two embedding matrices (`S = E_s E_tᵀ`
/// block by block).
#[derive(Debug, Clone)]
pub struct EmbeddingScores {
    source: Dense,
    target: Dense,
}

impl EmbeddingScores {
    /// Creates a provider over embeddings with equal dimensionality.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn new(source: Dense, target: Dense) -> Self {
        assert_eq!(
            source.cols(),
            target.cols(),
            "embedding dimensions must match"
        );
        EmbeddingScores { source, target }
    }
}

impl ScoreProvider for EmbeddingScores {
    fn num_sources(&self) -> usize {
        self.source.rows()
    }

    fn num_targets(&self) -> usize {
        self.target.rows()
    }

    fn score_block(&self, rows: Range<usize>, out: &mut [f64]) {
        let n_t = self.target.rows();
        debug_assert_eq!(out.len(), rows.len() * n_t);
        for (i, v) in rows.enumerate() {
            let sv = self.source.row(v);
            for (u, o) in out[i * n_t..(i + 1) * n_t].iter_mut().enumerate() {
                *o = galign_matrix::dense::dot(sv, self.target.row(u));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_scores_roundtrip() {
        let m = Dense::from_rows(&[vec![0.1, 0.9], vec![0.7, 0.2]]).unwrap();
        let s = DenseScores::new(m);
        assert_eq!(s.num_sources(), 2);
        assert_eq!(s.num_targets(), 2);
        assert_eq!(s.score_row(0), vec![0.1, 0.9]);
        assert_eq!(s.argmax(0), Some(1));
        assert_eq!(s.argmax(1), Some(0));
    }

    #[test]
    fn embedding_scores_match_matmul() {
        let e_s = Dense::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let e_t = Dense::from_rows(&[vec![0.5, 0.5], vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
        let s = EmbeddingScores::new(e_s.clone(), e_t.clone());
        let full = e_s.matmul_bt(&e_t).unwrap();
        for v in 0..2 {
            assert_eq!(s.score_row(v), full.row(v).to_vec());
        }
        assert_eq!(s.num_targets(), 3);
    }

    #[test]
    fn block_access_matches_rows() {
        let e_s = Dense::from_rows(&[vec![1.0, 0.5], vec![0.0, 1.0], vec![0.3, 0.3]]).unwrap();
        let e_t = Dense::from_rows(&[vec![0.5, 0.5], vec![1.0, 0.0]]).unwrap();
        let s = EmbeddingScores::new(e_s, e_t);
        let mut block = vec![0.0; 2 * s.num_targets()];
        s.score_block(1..3, &mut block);
        assert_eq!(&block[..2], s.score_row(1).as_slice());
        assert_eq!(&block[2..], s.score_row(2).as_slice());
    }

    #[test]
    fn argmax_empty_targets() {
        let s = DenseScores::new(Dense::zeros(2, 0));
        assert_eq!(s.argmax(0), None);
    }
}
