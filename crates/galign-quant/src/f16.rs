//! Bit-level IEEE 754 binary16 conversion, hand-rolled on `u16`.
//!
//! The quantizer stores half-precision components as raw `u16` bit
//! patterns; this module converts them to and from `f64` without any
//! external half-float dependency. `f64 → f16` rounds to nearest, ties to
//! even — the same rounding every IEEE conversion instruction performs —
//! and `f16 → f64` is exact (every binary16 value is representable in
//! binary64), so a decode → re-encode round trip preserves bits for every
//! non-NaN pattern (NaNs collapse to one canonical quiet NaN).

/// Canonical quiet-NaN bit pattern emitted for any NaN input.
pub const F16_NAN: u16 = 0x7e00;

/// Positive-infinity bit pattern (`0x7c00`).
pub const F16_INFINITY: u16 = 0x7c00;

/// Largest finite binary16 value (65504, bit pattern `0x7bff`).
pub const F16_MAX: f64 = 65504.0;

/// Converts an `f64` to binary16 bits, rounding to nearest (ties to
/// even). Values whose rounded magnitude exceeds [`F16_MAX`] become
/// signed infinity; magnitudes below half the smallest subnormal
/// (2⁻²⁵) become signed zero; NaN becomes [`F16_NAN`].
#[must_use]
pub fn f64_to_f16_bits(x: f64) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 48) & 0x8000) as u16;
    let exp = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & 0x000f_ffff_ffff_ffff;
    if exp == 0x7ff {
        // Infinity or NaN.
        return if frac == 0 {
            sign | F16_INFINITY
        } else {
            F16_NAN
        };
    }
    if exp == 0 {
        // f64 subnormals are below 2⁻¹⁰²² — far under half of f16's
        // smallest subnormal, so they all round to signed zero.
        return sign;
    }
    let e = exp - 1023; // unbiased exponent of a normal f64
    if e > 15 {
        // Magnitude ≥ 2¹⁶ > 65504: overflows past the largest finite f16.
        return sign | F16_INFINITY;
    }
    // 53-bit significand with the implicit leading one made explicit.
    let sig = (1u64 << 52) | frac;
    // How many low bits to round away: 42 leaves the 10-bit f16 mantissa
    // plus its implicit bit for a normal result; subnormal results (e
    // below -14) shift further, losing one mantissa bit per step.
    let shift = if e >= -14 { 42 } else { 42 + (-14 - e) };
    if shift >= 64 {
        return sign; // Rounds to zero well below the subnormal range.
    }
    let shift = shift as u32;
    let base = sig >> shift;
    let rem = sig & ((1u64 << shift) - 1);
    let half = 1u64 << (shift - 1);
    let round_up = rem > half || (rem == half && base & 1 == 1);
    let rounded = base + u64::from(round_up);
    // `rounded` holds the implicit bit (bit 10) for normal results; a
    // carry out of the mantissa bumps the exponent, possibly to infinity
    // (65504 < |x| < 65520 rounds to 65504; |x| ≥ 65520 rounds to inf).
    if e >= -14 {
        let mut h_exp = (e + 15) as u16;
        let mut mant = rounded;
        if mant >= 1 << 11 {
            mant >>= 1;
            h_exp += 1;
        }
        if h_exp >= 31 {
            return sign | F16_INFINITY;
        }
        sign | (h_exp << 10) | ((mant & 0x3ff) as u16)
    } else {
        // Subnormal result: no implicit bit; a carry into bit 10 promotes
        // the value to the smallest normal, which the encoding below
        // produces naturally (mantissa 1024 ≡ exponent 1, mantissa 0).
        sign | (rounded as u16)
    }
}

/// Converts binary16 bits to the exactly-equal `f64` value.
#[must_use]
pub fn f16_bits_to_f64(h: u16) -> f64 {
    let sign = if h & 0x8000 != 0 { -1.0 } else { 1.0 };
    let exp = (h >> 10) & 0x1f;
    let frac = f64::from(h & 0x3ff);
    match exp {
        0 => sign * frac * 2f64.powi(-24),
        31 => {
            if frac == 0.0 {
                sign * f64::INFINITY
            } else {
                f64::NAN
            }
        }
        e => sign * (1.0 + frac / 1024.0) * 2f64.powi(i32::from(e) - 15),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        for (x, bits) in [
            (0.0, 0x0000u16),
            (1.0, 0x3c00),
            (-2.0, 0xc000),
            (0.5, 0x3800),
            (65504.0, 0x7bff),
            (2f64.powi(-14), 0x0400), // smallest normal
            (2f64.powi(-24), 0x0001), // smallest subnormal
            (f64::INFINITY, F16_INFINITY),
            (f64::NEG_INFINITY, 0xfc00),
            (-0.0, 0x8000),
        ] {
            assert_eq!(f64_to_f16_bits(x), bits, "encode {x}");
        }
        assert_eq!(f64_to_f16_bits(f64::NAN), F16_NAN);
        assert!(f16_bits_to_f64(F16_NAN).is_nan());
        assert_eq!(f16_bits_to_f64(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f64(0x7bff), 65504.0);
        assert_eq!(f16_bits_to_f64(0x0001), 2f64.powi(-24));
    }

    #[test]
    fn overflow_and_underflow_edges() {
        // 65504 is the largest finite value; 65520 is the round-to-even
        // midpoint and ties to infinity's side (even mantissa overflow).
        assert_eq!(f64_to_f16_bits(65519.999), 0x7bff);
        assert_eq!(f64_to_f16_bits(65520.0), F16_INFINITY);
        assert_eq!(f64_to_f16_bits(1e10), F16_INFINITY);
        assert_eq!(f64_to_f16_bits(-1e10), 0xfc00);
        // 2⁻²⁵ is exactly halfway between 0 and the smallest subnormal:
        // ties-to-even keeps zero; anything above it rounds up.
        assert_eq!(f64_to_f16_bits(2f64.powi(-25)), 0x0000);
        assert_eq!(f64_to_f16_bits(2f64.powi(-25) * 1.5), 0x0001);
        assert_eq!(f64_to_f16_bits(2f64.powi(-26)), 0x0000);
        assert_eq!(f64_to_f16_bits(f64::MIN_POSITIVE), 0x0000);
        assert_eq!(f64_to_f16_bits(-f64::MIN_POSITIVE), 0x8000);
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2⁻¹¹ sits exactly between 1.0 and the next f16 (1 + 2⁻¹⁰):
        // the even mantissa (0) wins.
        assert_eq!(f64_to_f16_bits(1.0 + 2f64.powi(-11)), 0x3c00);
        // 1 + 3·2⁻¹¹ sits between 1 + 2⁻¹⁰ and 1 + 2⁻⁹: rounds to the
        // even mantissa 2.
        assert_eq!(f64_to_f16_bits(1.0 + 3.0 * 2f64.powi(-11)), 0x3c02);
        // Just above/below a midpoint resolves by magnitude, not parity.
        assert_eq!(
            f64_to_f16_bits(1.0 + 2f64.powi(-11) + 2f64.powi(-20)),
            0x3c01
        );
    }

    #[test]
    fn every_f16_round_trips_exactly() {
        // Decode → re-encode must preserve all 63488 non-NaN patterns
        // bit for bit (NaNs collapse to the canonical quiet NaN).
        for h in 0..=u16::MAX {
            let x = f16_bits_to_f64(h);
            if x.is_nan() {
                assert_eq!(f64_to_f16_bits(x), F16_NAN);
            } else {
                assert_eq!(f64_to_f16_bits(x), h, "pattern {h:#06x}");
            }
        }
    }

    #[test]
    fn conversion_error_is_bounded() {
        // Relative error ≤ 2⁻¹¹ for normal-range inputs (|x| ∈ [2⁻¹⁴, 65504]).
        let mut x = 2f64.powi(-14);
        while x < 65000.0 {
            let back = f16_bits_to_f64(f64_to_f16_bits(x));
            assert!(
                (back - x).abs() <= x.abs() * 2f64.powi(-11),
                "error too large at {x}"
            );
            x *= 1.37;
        }
    }
}
