//! Scalar quantization for alignment embedding panels.
//!
//! `galign-quant` compresses the per-layer-L2-normalised, concatenated
//! multi-order embedding rows that every serving component scans:
//!
//! * **int8** — per-row symmetric scalar quantization (`scale =
//!   max|x| / 127`, components rounded into `[-127, 127]`), 8× smaller
//!   than f64, scored with a blocked i32-accumulate integer dot kernel.
//! * **f16** — bit-level IEEE binary16 (hand-rolled `f64 ↔ u16`
//!   conversion in [`mod@f16`], no external half-float dependency) over
//!   rows rescaled into `[-1, 1]`, 4× smaller than f64.
//!
//! The crate is std-only and depends on telemetry alone, mirroring
//! `galign-index`. Quantized scores are *first-pass only*: alongside each
//! approximate dot product, [`QuantizedPanel::margin`] returns a certified
//! error bound, and [`certified_shortlist`] uses those bounds to select
//! every candidate that could possibly reach the exact top-k. Re-ranking
//! that shortlist through the exact f64 kernel therefore reproduces the
//! full-precision scan bit for bit — the contract the serving layer
//! property-tests.
//!
//! Telemetry: encoding records `quant.encode.rows` and
//! `quant.encode.bytes_saved`; scans record `quant.scan.queries`,
//! `quant.scan.first_pass_evals`, and `quant.scan.shortlisted` via
//! [`record_scan`].

pub mod f16;

use std::fmt;
use std::sync::OnceLock;

/// Errors reported by quantization routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// The request itself is unserviceable (bad shape, non-finite input).
    Invalid(String),
    /// Serialized panel bytes failed structural validation.
    Corrupt(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::Invalid(msg) => write!(f, "invalid quantization input: {msg}"),
            QuantError::Corrupt(msg) => write!(f, "corrupt quantized panel: {msg}"),
        }
    }
}

impl std::error::Error for QuantError {}

/// Quantized component encoding carried by a [`QuantizedPanel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Per-row symmetric int8: one byte per component plus a row scale.
    Int8,
    /// IEEE binary16 bits over rows rescaled into `[-1, 1]`.
    F16,
}

impl QuantMode {
    /// Stable serialization tag (0 is reserved so a zeroed byte never
    /// parses as a valid mode).
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            QuantMode::Int8 => 1,
            QuantMode::F16 => 2,
        }
    }

    /// Inverse of [`QuantMode::tag`].
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(QuantMode::Int8),
            2 => Some(QuantMode::F16),
            _ => None,
        }
    }

    /// Lower-case mode name used by CLI flags and request fields.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QuantMode::Int8 => "int8",
            QuantMode::F16 => "f16",
        }
    }

    /// Parses a mode name as accepted by `--quant`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "int8" => Some(QuantMode::Int8),
            "f16" => Some(QuantMode::F16),
            _ => None,
        }
    }

    /// Storage bytes per component.
    #[must_use]
    pub fn bytes_per_component(self) -> usize {
        match self {
            QuantMode::Int8 => 1,
            QuantMode::F16 => 2,
        }
    }
}

/// int8 kernel block length: `127² · 8192 ≈ 1.3e8` keeps a fully
/// adversarial block's partial sum inside `i32` before widening to `i64`.
const I8_BLOCK: usize = 8192;

/// Per-term relative slack applied in [`QuantizedPanel::margin`] to absorb
/// every floating-point rounding the exact and approximate kernels can
/// accumulate per dimension. `4e-15` is ~36× the worst-case `γ₁`
/// contribution of one fused accumulate at f64 precision (`2⁻⁵² ≈
/// 2.2e-16`), and the `+16` constant term covers the query-construction
/// and final rescale roundings that do not scale with `dim`.
const FP_SLACK: f64 = 4e-15;

fn f16_decode_table() -> &'static [f64] {
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    TABLE.get_or_init(|| (0..=u16::MAX).map(f16::f16_bits_to_f64).collect())
}

/// A query vector quantized against a specific panel's mode, carrying the
/// certification terms (`norm`, `err`) needed for score margins.
#[derive(Debug, Clone)]
pub struct QuantizedQuery {
    scale: f64,
    norm: f64,
    err: f64,
    data: QueryData,
}

#[derive(Debug, Clone)]
enum QueryData {
    Int8(Vec<i8>),
    /// f16 query components pre-decoded to f64 so panel scans pay the
    /// table lookup only on the row side.
    F16(Vec<f64>),
}

impl QuantizedQuery {
    /// Number of components.
    #[must_use]
    pub fn dim(&self) -> usize {
        match &self.data {
            QueryData::Int8(v) => v.len(),
            QueryData::F16(v) => v.len(),
        }
    }

    /// L2 norm of the raw (pre-quantization) query.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// L2 norm of the quantization residual `raw - dequantized`.
    #[must_use]
    pub fn err(&self) -> f64 {
        self.err
    }
}

/// A row-major block of quantized embedding rows with per-row scale
/// factors and certification metadata.
///
/// For every row `i` the panel stores:
///
/// * `scales[i]` — the symmetric per-row scale factor,
/// * `norms[i]` — the L2 norm of the row the *exact* kernel scores (the
///   canonical row),
/// * `errs[i]` — the L2 norm of `canonical − dequantized`, i.e. how far
///   this panel's reconstruction sits from the canonical row. Quant-primary
///   artifacts rebase the panel so this is exactly zero
///   ([`QuantizedPanel::rebase_on_dequantized`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPanel {
    mode: QuantMode,
    n: usize,
    dim: usize,
    scales: Vec<f64>,
    norms: Vec<f64>,
    errs: Vec<f64>,
    data: Vec<u8>,
}

impl QuantizedPanel {
    /// Quantizes `rows` (each of length `dim`) under `mode`.
    ///
    /// Rejects non-finite components and shape mismatches. Records
    /// `quant.encode.rows` / `quant.encode.bytes_saved` telemetry.
    pub fn encode<I, R>(mode: QuantMode, dim: usize, rows: I) -> Result<Self, QuantError>
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f64]>,
    {
        if dim == 0 {
            return Err(QuantError::Invalid("dim must be positive".to_string()));
        }
        let mut panel = QuantizedPanel {
            mode,
            n: 0,
            dim,
            scales: Vec::new(),
            norms: Vec::new(),
            errs: Vec::new(),
            data: Vec::new(),
        };
        for (i, row) in rows.into_iter().enumerate() {
            let row = row.as_ref();
            if row.len() != dim {
                return Err(QuantError::Invalid(format!(
                    "row {i} has {} components, panel dim is {dim}",
                    row.len()
                )));
            }
            let (scale, norm, err) = encode_row(mode, row, &mut panel.data)?;
            panel.scales.push(scale);
            panel.norms.push(norm);
            panel.errs.push(err);
            panel.n += 1;
        }
        if galign_telemetry::metrics_enabled() {
            galign_telemetry::counter_add("quant.encode.rows", panel.n as u64);
            let saved = panel.f64_bytes().saturating_sub(panel.data.len());
            galign_telemetry::counter_add("quant.encode.bytes_saved", saved as u64);
        }
        Ok(panel)
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the panel holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Components per row.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Component encoding.
    #[must_use]
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// Bytes this panel keeps resident (component data plus per-row
    /// metadata).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.data.len() + 24 * self.n
    }

    /// Bytes the same rows occupy at full f64 precision.
    #[must_use]
    pub fn f64_bytes(&self) -> usize {
        self.n * self.dim * 8
    }

    /// Per-row scale factor.
    #[must_use]
    pub fn scale(&self, i: usize) -> f64 {
        self.scales[i]
    }

    /// Writes the dequantized row `i` into `out` (length `dim`). The
    /// reconstruction is deterministic: quant-primary artifacts rely on
    /// every reader producing identical f64 rows from identical bytes.
    pub fn dequantize_row(&self, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "output buffer length");
        let scale = self.scales[i];
        match self.mode {
            QuantMode::Int8 => {
                let row = &self.data[i * self.dim..(i + 1) * self.dim];
                for (o, b) in out.iter_mut().zip(row) {
                    *o = f64::from(*b as i8) * scale;
                }
            }
            QuantMode::F16 => {
                let table = f16_decode_table();
                let row = &self.data[i * self.dim * 2..(i + 1) * self.dim * 2];
                for (o, b) in out.iter_mut().zip(row.chunks_exact(2)) {
                    *o = table[u16::from_le_bytes([b[0], b[1]]) as usize] * scale;
                }
            }
        }
    }

    /// Dequantizes every row into one contiguous `n × dim` buffer.
    #[must_use]
    pub fn dequantize_all(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n * self.dim];
        for i in 0..self.n {
            self.dequantize_row(i, &mut out[i * self.dim..(i + 1) * self.dim]);
        }
        out
    }

    /// Declares the dequantized rows canonical: recomputes `norms` over
    /// the reconstructed rows and zeroes `errs`.
    ///
    /// Quant-primary artifacts store only the quantized panel and
    /// reconstruct their f64 rows from it, so the panel's reconstruction
    /// *is* the row the exact kernel scores — the row-side quantization
    /// error is zero by definition.
    pub fn rebase_on_dequantized(&mut self) {
        let mut buf = vec![0.0; self.dim];
        for i in 0..self.n {
            self.dequantize_row(i, &mut buf);
            self.norms[i] = buf.iter().map(|x| x * x).sum::<f64>().sqrt();
            self.errs[i] = 0.0;
        }
    }

    /// Quantizes a raw query vector under this panel's mode, computing the
    /// certification terms used by [`QuantizedPanel::margin`]. Fails on
    /// shape mismatch or non-finite components (callers fall back to the
    /// exact scan).
    pub fn quantize_query(&self, raw: &[f64]) -> Result<QuantizedQuery, QuantError> {
        if raw.len() != self.dim {
            return Err(QuantError::Invalid(format!(
                "query has {} components, panel dim is {}",
                raw.len(),
                self.dim
            )));
        }
        if raw.iter().any(|x| !x.is_finite()) {
            return Err(QuantError::Invalid(
                "query has non-finite components".to_string(),
            ));
        }
        let norm = raw.iter().map(|x| x * x).sum::<f64>().sqrt();
        let amax = raw.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        match self.mode {
            QuantMode::Int8 => {
                let scale = amax / 127.0;
                let mut q = Vec::with_capacity(self.dim);
                let mut err_sq = 0.0;
                for &x in raw {
                    let v = if scale == 0.0 {
                        0i8
                    } else {
                        (x / scale).round().clamp(-127.0, 127.0) as i8
                    };
                    let d = x - f64::from(v) * scale;
                    err_sq += d * d;
                    q.push(v);
                }
                Ok(QuantizedQuery {
                    scale,
                    norm,
                    err: err_sq.sqrt(),
                    data: QueryData::Int8(q),
                })
            }
            QuantMode::F16 => {
                let scale = amax;
                let mut q = Vec::with_capacity(self.dim);
                let mut err_sq = 0.0;
                for &x in raw {
                    let y = if scale == 0.0 {
                        0.0
                    } else {
                        f16::f16_bits_to_f64(f16::f64_to_f16_bits(x / scale))
                    };
                    let d = x - y * scale;
                    err_sq += d * d;
                    q.push(y);
                }
                Ok(QuantizedQuery {
                    scale,
                    norm,
                    err: err_sq.sqrt(),
                    data: QueryData::F16(q),
                })
            }
        }
    }

    /// First-pass approximate dot product between `query` and row `i`.
    ///
    /// int8 accumulates integer products in `i32` blocks of `I8_BLOCK`
    /// components, widening to `i64` across blocks, and applies the scale
    /// product once at the end; f16 accumulates pre-decoded f64 values.
    #[must_use]
    pub fn approx_dot(&self, query: &QuantizedQuery, i: usize) -> f64 {
        debug_assert_eq!(query.dim(), self.dim, "query dim");
        match (&query.data, self.mode) {
            (QueryData::Int8(q), QuantMode::Int8) => {
                let row = &self.data[i * self.dim..(i + 1) * self.dim];
                let mut total: i64 = 0;
                for (qc, rc) in q.chunks(I8_BLOCK).zip(row.chunks(I8_BLOCK)) {
                    let mut acc: i32 = 0;
                    for (a, b) in qc.iter().zip(rc) {
                        acc += i32::from(*a) * i32::from(*b as i8);
                    }
                    total += i64::from(acc);
                }
                (total as f64) * (self.scales[i] * query.scale)
            }
            (QueryData::F16(q), QuantMode::F16) => {
                let table = f16_decode_table();
                let row = &self.data[i * self.dim * 2..(i + 1) * self.dim * 2];
                let mut acc = 0.0;
                for (a, b) in q.iter().zip(row.chunks_exact(2)) {
                    acc += a * table[u16::from_le_bytes([b[0], b[1]]) as usize];
                }
                acc * (self.scales[i] * query.scale)
            }
            _ => panic!("query mode does not match panel mode"),
        }
    }

    /// Certified bound on `|exact_score − approx_dot|` for row `i`: the
    /// exact f64 score of the canonical row against the raw query is
    /// guaranteed to lie within `margin` of [`QuantizedPanel::approx_dot`].
    ///
    /// The bound combines the Cauchy–Schwarz quantization terms
    /// (`query.err · ‖row‖` and `‖query‖ · errs[i]`) with an fp-summation
    /// slack of `FP_SLACK` per dimension covering the rounding of both
    /// the exact kernel and the approximate one, plus `f64::MIN_POSITIVE`
    /// so the margin is never exactly zero.
    #[must_use]
    pub fn margin(&self, query: &QuantizedQuery, i: usize) -> f64 {
        let nt = self.norms[i] + self.errs[i];
        let nq = query.norm + query.err;
        query.err * nt
            + nq * self.errs[i]
            + (self.dim as f64 + 16.0) * FP_SLACK * nq * nt
            + f64::MIN_POSITIVE
    }

    /// Copies rows `[start, end)` into a new panel, bit-exactly: rows are
    /// independent, so shard splitting commutes with quantization.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Self, QuantError> {
        if start > end || end > self.n {
            return Err(QuantError::Invalid(format!(
                "row range {start}..{end} out of bounds for {} rows",
                self.n
            )));
        }
        let bpc = self.mode.bytes_per_component();
        Ok(QuantizedPanel {
            mode: self.mode,
            n: end - start,
            dim: self.dim,
            scales: self.scales[start..end].to_vec(),
            norms: self.norms[start..end].to_vec(),
            errs: self.errs[start..end].to_vec(),
            data: self.data[start * self.dim * bpc..end * self.dim * bpc].to_vec(),
        })
    }

    /// Stitches row-contiguous parts back into one panel (inverse of
    /// [`QuantizedPanel::slice_rows`] over a tiling). All parts must agree
    /// on mode and dim.
    pub fn concat(parts: &[QuantizedPanel]) -> Result<Self, QuantError> {
        let first = parts
            .first()
            .ok_or_else(|| QuantError::Invalid("no panels to concatenate".to_string()))?;
        let mut out = QuantizedPanel {
            mode: first.mode,
            n: 0,
            dim: first.dim,
            scales: Vec::new(),
            norms: Vec::new(),
            errs: Vec::new(),
            data: Vec::new(),
        };
        for (i, p) in parts.iter().enumerate() {
            if p.mode != out.mode || p.dim != out.dim {
                return Err(QuantError::Invalid(format!(
                    "panel {i} is {}/dim {}, expected {}/dim {}",
                    p.mode.name(),
                    p.dim,
                    out.mode.name(),
                    out.dim
                )));
            }
            out.n += p.n;
            out.scales.extend_from_slice(&p.scales);
            out.norms.extend_from_slice(&p.norms);
            out.errs.extend_from_slice(&p.errs);
            out.data.extend_from_slice(&p.data);
        }
        Ok(out)
    }

    /// Serializes the panel: mode tag, row/dim counts, per-row metadata,
    /// then component data. Integrity is the embedding format's job (the
    /// artifact checksums the whole section); this layout is validated
    /// structurally by [`QuantizedPanel::from_bytes`].
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17 + 24 * self.n + self.data.len());
        out.push(self.mode.tag());
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        out.extend_from_slice(&(self.dim as u64).to_le_bytes());
        for v in self.scales.iter().chain(&self.norms).chain(&self.errs) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses and strictly validates panel bytes: exact length, known mode
    /// tag, finite non-negative metadata, every int8 component in
    /// `[-127, 127]`, every f16 component finite with magnitude ≤ 1, and
    /// zero-scale rows all-zero.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, QuantError> {
        if bytes.len() < 17 {
            return Err(QuantError::Corrupt("panel header truncated".to_string()));
        }
        let mode = QuantMode::from_tag(bytes[0])
            .ok_or_else(|| QuantError::Corrupt(format!("unknown mode tag {}", bytes[0])))?;
        let n = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes")) as usize;
        let dim = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes")) as usize;
        if dim == 0 {
            return Err(QuantError::Corrupt("panel dim is zero".to_string()));
        }
        let data_len = n
            .checked_mul(dim)
            .and_then(|c| c.checked_mul(mode.bytes_per_component()))
            .ok_or_else(|| QuantError::Corrupt("panel shape overflows".to_string()))?;
        let meta_len = n
            .checked_mul(24)
            .and_then(|m| m.checked_add(17))
            .and_then(|m| m.checked_add(data_len))
            .ok_or_else(|| QuantError::Corrupt("panel shape overflows".to_string()))?;
        if bytes.len() != meta_len {
            return Err(QuantError::Corrupt(format!(
                "panel length {} does not match declared shape ({meta_len} expected)",
                bytes.len()
            )));
        }
        let read_f64s = |off: usize| -> Result<Vec<f64>, QuantError> {
            let mut v = Vec::with_capacity(n);
            for i in 0..n {
                let s = off + i * 8;
                let x = f64::from_le_bytes(bytes[s..s + 8].try_into().expect("8 bytes"));
                if !x.is_finite() || x < 0.0 {
                    return Err(QuantError::Corrupt(format!(
                        "row metadata at offset {s} is not finite and non-negative"
                    )));
                }
                v.push(x);
            }
            Ok(v)
        };
        let scales = read_f64s(17)?;
        let norms = read_f64s(17 + 8 * n)?;
        let errs = read_f64s(17 + 16 * n)?;
        let data = bytes[17 + 24 * n..].to_vec();
        let table = f16_decode_table();
        for i in 0..n {
            let bpc = mode.bytes_per_component();
            let row = &data[i * dim * bpc..(i + 1) * dim * bpc];
            match mode {
                QuantMode::Int8 => {
                    for (j, b) in row.iter().enumerate() {
                        let q = *b as i8;
                        if q == i8::MIN {
                            return Err(QuantError::Corrupt(format!(
                                "row {i} component {j} is -128, outside the symmetric range"
                            )));
                        }
                        if scales[i] == 0.0 && q != 0 {
                            return Err(QuantError::Corrupt(format!(
                                "row {i} has zero scale but non-zero component {j}"
                            )));
                        }
                    }
                }
                QuantMode::F16 => {
                    for (j, b) in row.chunks_exact(2).enumerate() {
                        let y = table[u16::from_le_bytes([b[0], b[1]]) as usize];
                        if !y.is_finite() || y.abs() > 1.0 {
                            return Err(QuantError::Corrupt(format!(
                                "row {i} component {j} decodes outside [-1, 1]"
                            )));
                        }
                        if scales[i] == 0.0 && y != 0.0 {
                            return Err(QuantError::Corrupt(format!(
                                "row {i} has zero scale but non-zero component {j}"
                            )));
                        }
                    }
                }
            }
        }
        Ok(QuantizedPanel {
            mode,
            n,
            dim,
            scales,
            norms,
            errs,
            data,
        })
    }
}

fn encode_row(
    mode: QuantMode,
    row: &[f64],
    data: &mut Vec<u8>,
) -> Result<(f64, f64, f64), QuantError> {
    if row.iter().any(|x| !x.is_finite()) {
        return Err(QuantError::Invalid(
            "row has non-finite components".to_string(),
        ));
    }
    let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt();
    let amax = row.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    let mut err_sq = 0.0;
    let scale = match mode {
        QuantMode::Int8 => {
            let scale = amax / 127.0;
            for &x in row {
                let q = if scale == 0.0 {
                    0i8
                } else {
                    (x / scale).round().clamp(-127.0, 127.0) as i8
                };
                let d = x - f64::from(q) * scale;
                err_sq += d * d;
                data.push(q as u8);
            }
            scale
        }
        QuantMode::F16 => {
            let scale = amax;
            for &x in row {
                let bits = if scale == 0.0 {
                    0u16
                } else {
                    f16::f64_to_f16_bits(x / scale)
                };
                let d = x - f16::f16_bits_to_f64(bits) * scale;
                err_sq += d * d;
                data.extend_from_slice(&bits.to_le_bytes());
            }
            scale
        }
    };
    Ok((scale, norm, err_sq.sqrt()))
}

/// Selects every candidate whose certified score interval can reach the
/// exact top-`k`, returned in ascending index order.
///
/// Given approximate scores `approx` and their certified bounds `margins`
/// (exact score ∈ `[approx − margin, approx + margin]`), computes `τ`, the
/// k-th largest lower bound, and keeps indices whose upper bound reaches
/// `τ`. Every true top-`k` member `u` satisfies `exact(u) ≥ exact₍k₎ ≥ τ`
/// and `approx(u) + margin(u) ≥ exact(u)`, so the shortlist is a certified
/// superset of the exact top-`k` under *any* tie-break — re-ranking it
/// through the exact kernel reproduces the full scan bit for bit.
#[must_use]
pub fn certified_shortlist(approx: &[f64], margins: &[f64], k: usize) -> Vec<usize> {
    let n = approx.len();
    assert_eq!(margins.len(), n, "margins length");
    if k == 0 {
        return Vec::new();
    }
    if k >= n {
        return (0..n).collect();
    }
    let mut lowers: Vec<f64> = approx.iter().zip(margins).map(|(a, m)| a - m).collect();
    let (_, kth, _) = lowers.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
    let tau = *kth;
    (0..n).filter(|&u| approx[u] + margins[u] >= tau).collect()
}

/// Records one quantized first-pass scan: `first_pass_evals` approximate
/// dot products narrowed to `shortlisted` exact re-rank candidates.
pub fn record_scan(first_pass_evals: u64, shortlisted: u64) {
    if galign_telemetry::metrics_enabled() {
        galign_telemetry::counter_add("quant.scan.queries", 1);
        galign_telemetry::counter_add("quant.scan.first_pass_evals", first_pass_evals);
        galign_telemetry::counter_add("quant.scan.shortlisted", shortlisted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — deterministic, dependency-free test randomness.
    struct Rng(u64);

    impl Rng {
        fn new(seed: u64) -> Self {
            Rng(seed.max(1))
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        fn symmetric(&mut self) -> f64 {
            self.unit() * 2.0 - 1.0
        }
    }

    fn random_rows(rng: &mut Rng, n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                let row: Vec<f64> = (0..dim).map(|_| rng.symmetric()).collect();
                let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 0.0 {
                    row.iter().map(|x| x / norm).collect()
                } else {
                    row
                }
            })
            .collect()
    }

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn mode_names_and_tags_round_trip() {
        for mode in [QuantMode::Int8, QuantMode::F16] {
            assert_eq!(QuantMode::from_tag(mode.tag()), Some(mode));
            assert_eq!(QuantMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(QuantMode::from_tag(0), None);
        assert_eq!(QuantMode::from_tag(3), None);
        assert_eq!(QuantMode::from_name("off"), None);
        assert_eq!(QuantMode::from_name("pq"), None);
    }

    #[test]
    fn per_component_error_is_bounded_by_half_scale() {
        let mut rng = Rng::new(7);
        let rows = random_rows(&mut rng, 40, 24);
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let panel = QuantizedPanel::encode(mode, 24, &rows).expect("encode");
            let mut buf = vec![0.0; 24];
            for (i, row) in rows.iter().enumerate() {
                panel.dequantize_row(i, &mut buf);
                let scale = panel.scale(i);
                for (x, y) in row.iter().zip(&buf) {
                    // round() puts int8 within scale/2 exactly in real
                    // arithmetic; allow a few ulps of fp slop. f16 is far
                    // tighter (relative 2⁻¹¹ of the row max).
                    assert!(
                        (x - y).abs() <= scale * 0.5 * (1.0 + 1e-9) + 1e-300,
                        "{} row {i}: |{x} - {y}| > {scale}/2",
                        mode.name()
                    );
                }
            }
        }
    }

    #[test]
    fn margins_certify_the_exact_score() {
        let mut rng = Rng::new(42);
        let dim = 24;
        let rows = random_rows(&mut rng, 60, dim);
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let panel = QuantizedPanel::encode(mode, dim, &rows).expect("encode");
            for _ in 0..20 {
                let query: Vec<f64> = (0..dim).map(|_| rng.symmetric()).collect();
                let q = panel.quantize_query(&query).expect("quantize query");
                for (i, row) in rows.iter().enumerate() {
                    let exact = dot(&query, row);
                    let approx = panel.approx_dot(&q, i);
                    let margin = panel.margin(&q, i);
                    assert!(
                        (exact - approx).abs() <= margin,
                        "{} row {i}: |{exact} - {approx}| > {margin}",
                        mode.name()
                    );
                }
            }
        }
    }

    #[test]
    fn margins_certify_after_rebase() {
        // Quant-primary contract: the canonical rows ARE the dequantized
        // rows, errs are zero, and the margin must still cover the exact
        // score of those canonical rows (query-side error remains).
        let mut rng = Rng::new(9);
        let dim = 16;
        let rows = random_rows(&mut rng, 50, dim);
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let mut panel = QuantizedPanel::encode(mode, dim, &rows).expect("encode");
            panel.rebase_on_dequantized();
            let canonical = panel.dequantize_all();
            for _ in 0..20 {
                let query: Vec<f64> = (0..dim).map(|_| rng.symmetric()).collect();
                let q = panel.quantize_query(&query).expect("quantize query");
                for i in 0..panel.len() {
                    let exact = dot(&query, &canonical[i * dim..(i + 1) * dim]);
                    let approx = panel.approx_dot(&q, i);
                    let margin = panel.margin(&q, i);
                    assert!(
                        (exact - approx).abs() <= margin,
                        "{} row {i}: |{exact} - {approx}| > {margin}",
                        mode.name()
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_kernel_matches_naive_dequantized_dot() {
        // Exercise multiple i32 blocks: dim > I8_BLOCK.
        let dim = I8_BLOCK + 513;
        let mut rng = Rng::new(3);
        let row: Vec<f64> = (0..dim).map(|_| rng.symmetric()).collect();
        let query: Vec<f64> = (0..dim).map(|_| rng.symmetric()).collect();
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let panel = QuantizedPanel::encode(mode, dim, [&row]).expect("encode");
            let q = panel.quantize_query(&query).expect("quantize query");
            let mut deq_row = vec![0.0; dim];
            panel.dequantize_row(0, &mut deq_row);
            let mut deq_query = vec![0.0; dim];
            match &q.data {
                QueryData::Int8(v) => {
                    for (o, c) in deq_query.iter_mut().zip(v) {
                        *o = f64::from(*c) * q.scale;
                    }
                }
                QueryData::F16(v) => {
                    for (o, c) in deq_query.iter_mut().zip(v) {
                        *o = c * q.scale;
                    }
                }
            }
            let naive = dot(&deq_query, &deq_row);
            let approx = panel.approx_dot(&q, 0);
            assert!(
                (naive - approx).abs() <= 1e-9 * naive.abs().max(1.0),
                "{}: kernel {approx} vs naive {naive}",
                mode.name()
            );
        }
    }

    #[test]
    fn adversarial_full_magnitude_rows_do_not_overflow_blocks() {
        // Every component at ±max magnitude across two full blocks: the
        // worst case for the i32 accumulator.
        let dim = 2 * I8_BLOCK;
        let row: Vec<f64> = (0..dim)
            .map(|j| if j % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let panel = QuantizedPanel::encode(QuantMode::Int8, dim, [&row]).expect("encode");
        let q = panel.quantize_query(&row).expect("quantize query");
        let approx = panel.approx_dot(&q, 0);
        let expected = dim as f64; // ⟨row, row⟩ with unit components
        assert!(
            (approx - expected).abs() <= 1e-9 * expected,
            "{approx} vs {expected}"
        );
    }

    #[test]
    fn certified_shortlist_is_a_superset_of_the_exact_topk() {
        let mut rng = Rng::new(11);
        let dim = 12;
        // Duplicate rows force exact ties — the shortlist must still cover
        // every index that could appear in the top-k under any tie-break.
        let mut rows = random_rows(&mut rng, 30, dim);
        for i in 0..10 {
            let dup = rows[i].clone();
            rows.push(dup);
        }
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let mut panel = QuantizedPanel::encode(mode, dim, &rows).expect("encode");
            panel.rebase_on_dequantized();
            let canonical = panel.dequantize_all();
            for k in [1, 3, 7, rows.len(), rows.len() + 5] {
                for _ in 0..10 {
                    let query: Vec<f64> = (0..dim).map(|_| rng.symmetric()).collect();
                    let q = panel.quantize_query(&query).expect("quantize query");
                    let n = panel.len();
                    let approx: Vec<f64> = (0..n).map(|i| panel.approx_dot(&q, i)).collect();
                    let margins: Vec<f64> = (0..n).map(|i| panel.margin(&q, i)).collect();
                    let shortlist = certified_shortlist(&approx, &margins, k);
                    assert!(shortlist.windows(2).all(|w| w[0] < w[1]), "ascending ids");
                    let exact: Vec<f64> = (0..n)
                        .map(|i| dot(&query, &canonical[i * dim..(i + 1) * dim]))
                        .collect();
                    let mut sorted = exact.clone();
                    sorted.sort_by(|a, b| b.total_cmp(a));
                    let kth = sorted[k.min(n) - 1];
                    for (u, &s) in exact.iter().enumerate() {
                        if s >= kth {
                            assert!(
                                shortlist.binary_search(&u).is_ok(),
                                "{} k={k}: row {u} (score {s} ≥ kth {kth}) missing",
                                mode.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn certified_shortlist_edge_cases() {
        assert!(certified_shortlist(&[1.0, 2.0], &[0.1, 0.1], 0).is_empty());
        assert_eq!(certified_shortlist(&[1.0, 2.0], &[0.1, 0.1], 2), vec![0, 1]);
        assert_eq!(certified_shortlist(&[1.0, 2.0], &[0.1, 0.1], 9), vec![0, 1]);
        assert!(certified_shortlist(&[], &[], 4).is_empty());
        // Clear separation with tiny margins keeps the shortlist tight.
        let approx = [0.9, 0.1, 0.5, 0.95];
        let margins = [1e-6; 4];
        assert_eq!(certified_shortlist(&approx, &margins, 2), vec![0, 3]);
    }

    #[test]
    fn zero_rows_and_zero_queries_are_exact() {
        let rows = [vec![0.0; 8], vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]];
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let panel = QuantizedPanel::encode(mode, 8, &rows).expect("encode");
            assert_eq!(panel.scale(0), 0.0);
            let q = panel.quantize_query(&[0.0; 8]).expect("zero query");
            assert_eq!(q.norm(), 0.0);
            assert_eq!(q.err(), 0.0);
            assert_eq!(panel.approx_dot(&q, 0), 0.0);
            assert_eq!(panel.approx_dot(&q, 1), 0.0);
            let mut buf = vec![1.0; 8];
            panel.dequantize_row(0, &mut buf);
            assert!(buf.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn encode_rejects_bad_input() {
        assert!(matches!(
            QuantizedPanel::encode(QuantMode::Int8, 0, Vec::<Vec<f64>>::new()),
            Err(QuantError::Invalid(_))
        ));
        assert!(matches!(
            QuantizedPanel::encode(QuantMode::Int8, 3, [vec![1.0, 2.0]]),
            Err(QuantError::Invalid(_))
        ));
        assert!(matches!(
            QuantizedPanel::encode(QuantMode::F16, 2, [vec![1.0, f64::NAN]]),
            Err(QuantError::Invalid(_))
        ));
        assert!(matches!(
            QuantizedPanel::encode(QuantMode::Int8, 2, [vec![f64::INFINITY, 0.0]]),
            Err(QuantError::Invalid(_))
        ));
        let panel = QuantizedPanel::encode(QuantMode::Int8, 2, [vec![1.0, 0.5]]).expect("encode");
        assert!(matches!(
            panel.quantize_query(&[1.0]),
            Err(QuantError::Invalid(_))
        ));
        assert!(matches!(
            panel.quantize_query(&[f64::NAN, 0.0]),
            Err(QuantError::Invalid(_))
        ));
    }

    #[test]
    fn slice_and_concat_round_trip_bit_exactly() {
        let mut rng = Rng::new(5);
        let rows = random_rows(&mut rng, 17, 6);
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let panel = QuantizedPanel::encode(mode, 6, &rows).expect("encode");
            let a = panel.slice_rows(0, 5).expect("slice");
            let b = panel.slice_rows(5, 11).expect("slice");
            let c = panel.slice_rows(11, 17).expect("slice");
            assert_eq!(a.len(), 5);
            let stitched = QuantizedPanel::concat(&[a, b, c]).expect("concat");
            assert_eq!(stitched, panel);
            assert!(panel.slice_rows(4, 2).is_err());
            assert!(panel.slice_rows(0, 18).is_err());
        }
        let int8 = QuantizedPanel::encode(QuantMode::Int8, 6, &rows).expect("encode");
        let f16p = QuantizedPanel::encode(QuantMode::F16, 6, &rows).expect("encode");
        assert!(QuantizedPanel::concat(&[int8, f16p]).is_err());
        assert!(QuantizedPanel::concat(&[]).is_err());
    }

    #[test]
    fn serialization_round_trips() {
        let mut rng = Rng::new(13);
        let rows = random_rows(&mut rng, 9, 5);
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let panel = QuantizedPanel::encode(mode, 5, &rows).expect("encode");
            let bytes = panel.to_bytes();
            let back = QuantizedPanel::from_bytes(&bytes).expect("parse");
            assert_eq!(back, panel);
        }
    }

    #[test]
    fn from_bytes_rejects_structural_corruption() {
        let rows = [vec![1.0, -0.5, 0.25]];
        let panel = QuantizedPanel::encode(QuantMode::Int8, 3, &rows).expect("encode");
        let bytes = panel.to_bytes();

        // Truncations and padding never parse.
        for cut in 0..bytes.len() {
            assert!(
                QuantizedPanel::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(QuantizedPanel::from_bytes(&padded).is_err());

        // Unknown mode tag.
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(QuantizedPanel::from_bytes(&bad).is_err());

        // Declared shape no longer matching the byte count.
        let mut bad = bytes.clone();
        bad[1] = 2;
        assert!(QuantizedPanel::from_bytes(&bad).is_err());

        // Non-finite scale.
        let mut bad = bytes.clone();
        bad[17..25].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(QuantizedPanel::from_bytes(&bad).is_err());

        // Negative norm.
        let mut bad = bytes.clone();
        bad[25..33].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert!(QuantizedPanel::from_bytes(&bad).is_err());

        // int8 component of -128.
        let mut bad = bytes.clone();
        let data_off = bytes.len() - 3;
        bad[data_off] = 0x80;
        assert!(QuantizedPanel::from_bytes(&bad).is_err());

        // Zero scale with non-zero data.
        let mut bad = bytes.clone();
        bad[17..25].copy_from_slice(&0.0f64.to_le_bytes());
        assert!(QuantizedPanel::from_bytes(&bad).is_err());

        // f16: a component decoding outside [-1, 1] (2.0 = 0x4000) and an
        // infinity pattern are both rejected.
        let fpanel = QuantizedPanel::encode(QuantMode::F16, 3, &rows).expect("encode");
        let fbytes = fpanel.to_bytes();
        let fdata_off = fbytes.len() - 6;
        let mut bad = fbytes.clone();
        bad[fdata_off..fdata_off + 2].copy_from_slice(&0x4000u16.to_le_bytes());
        assert!(QuantizedPanel::from_bytes(&bad).is_err());
        let mut bad = fbytes.clone();
        bad[fdata_off..fdata_off + 2].copy_from_slice(&f16::F16_INFINITY.to_le_bytes());
        assert!(QuantizedPanel::from_bytes(&bad).is_err());
    }

    #[test]
    fn rebase_zeroes_errors_and_fixes_norms() {
        let mut rng = Rng::new(21);
        let rows = random_rows(&mut rng, 12, 8);
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let mut panel = QuantizedPanel::encode(mode, 8, &rows).expect("encode");
            panel.rebase_on_dequantized();
            let canonical = panel.dequantize_all();
            for i in 0..panel.len() {
                assert_eq!(panel.errs[i], 0.0);
                let norm = canonical[i * 8..(i + 1) * 8]
                    .iter()
                    .map(|x| x * x)
                    .sum::<f64>()
                    .sqrt();
                assert_eq!(panel.norms[i], norm);
            }
        }
    }

    #[test]
    fn size_accounting_matches_modes() {
        let rows = vec![vec![0.5; 32]; 100];
        let int8 = QuantizedPanel::encode(QuantMode::Int8, 32, &rows).expect("encode");
        let f16p = QuantizedPanel::encode(QuantMode::F16, 32, &rows).expect("encode");
        assert_eq!(int8.f64_bytes(), 100 * 32 * 8);
        assert_eq!(int8.data.len(), 100 * 32);
        assert_eq!(f16p.data.len(), 100 * 32 * 2);
        assert!(int8.resident_bytes() < int8.f64_bytes() / 3);
        assert!(f16p.resident_bytes() < f16p.f64_bytes() / 2);
    }
}
