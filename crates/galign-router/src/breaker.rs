//! Per-replica circuit breakers: the eligibility gate for replica
//! selection, replacing the old advisory health bool.
//!
//! A breaker moves through the classic three states:
//!
//! ```text
//! Closed ──(threshold consecutive failures)──▶ Open
//! Open ──(cooldown elapses, one caller wins the probe)──▶ HalfOpen
//! HalfOpen ──probe succeeds──▶ Closed      HalfOpen ──probe fails──▶ Open
//! ```
//!
//! *Closed* replicas are eligible for traffic. *Open* replicas are
//! **skipped** — not merely deprioritised — so a browning-out node stops
//! eating a timeout per request the moment it trips. After
//! [`BreakerConfig::cooldown`] one caller (live traffic or the router's
//! background re-probe loop) wins the single *HalfOpen* probe slot via
//! [`CircuitBreaker::try_acquire`]; everyone else keeps skipping until
//! the probe's outcome either closes the breaker or re-opens it for
//! another cooldown.
//!
//! Failures are *consecutive*: any success resets the count, so a
//! replica that answers between hiccups never trips. A hop timeout, a
//! connect failure, a 5xx and an unparseable 200 all count as failures —
//! a breaker sees exactly what scatter's failover logic sees.
//!
//! Every transition bumps a `router.breaker.*` counter
//! (`opened` / `half_opened` / `closed`), so open/half-open/close cycles
//! and recovery time are observable on `/metrics` in both JSON and
//! Prometheus form.
//!
//! Tunables live in atomics so a bound router can apply its
//! [`crate::server::RouterConfig`] to breakers created earlier at
//! topology discovery, without tearing the state they already hold.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Breaker tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker (minimum 1).
    pub failure_threshold: u32,
    /// How long a tripped breaker stays open before granting one
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(1),
        }
    }
}

/// The breaker's current position in the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Eligible for traffic.
    Closed,
    /// Tripped: skipped by selection until the cooldown elapses.
    Open,
    /// One probe is in flight; everyone else keeps skipping.
    HalfOpen,
}

impl BreakerState {
    /// Lowercase label, as reported on the router's `/healthz`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// One replica's circuit breaker. All methods take `&self`: state lives
/// in atomics shared by every router worker, attempt thread and the
/// background re-probe loop.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: AtomicU8,
    /// Consecutive failures since the last success.
    failures: AtomicU32,
    /// Millis since `epoch` at which the breaker last opened.
    opened_at_ms: AtomicU64,
    threshold: AtomicU32,
    cooldown_ms: AtomicU64,
    epoch: Instant,
}

impl CircuitBreaker {
    /// A closed breaker with the given tunables.
    #[must_use]
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            state: AtomicU8::new(CLOSED),
            failures: AtomicU32::new(0),
            opened_at_ms: AtomicU64::new(0),
            threshold: AtomicU32::new(cfg.failure_threshold.max(1)),
            cooldown_ms: AtomicU64::new(cfg.cooldown.as_millis() as u64),
            epoch: Instant::now(),
        }
    }

    /// Re-applies tunables without touching breaker state — how
    /// `Router::bind` imposes its `RouterConfig` on breakers that were
    /// created during topology discovery.
    pub fn configure(&self, cfg: BreakerConfig) {
        self.threshold
            .store(cfg.failure_threshold.max(1), Ordering::Relaxed);
        self.cooldown_ms
            .store(cfg.cooldown.as_millis() as u64, Ordering::Relaxed);
    }

    /// Current state (the half-open probe slot counts as `HalfOpen` until
    /// its outcome is recorded).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            OPEN => BreakerState::Open,
            HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Consecutive failures recorded since the last success.
    #[must_use]
    pub fn consecutive_failures(&self) -> u32 {
        self.failures.load(Ordering::Relaxed)
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Whether this breaker is open and its cooldown has elapsed — i.e.
    /// the re-probe loop should spend a health probe on it.
    #[must_use]
    pub fn probe_due(&self) -> bool {
        self.state.load(Ordering::Acquire) == OPEN
            && self
                .now_ms()
                .saturating_sub(self.opened_at_ms.load(Ordering::Relaxed))
                >= self.cooldown_ms.load(Ordering::Relaxed)
    }

    /// Asks for permission to send one request to this replica.
    ///
    /// Closed grants immediately. Open grants only once the cooldown has
    /// elapsed, and then to exactly one caller (the CAS winner becomes
    /// the half-open probe). Half-open refuses: a probe is already out.
    pub fn try_acquire(&self) -> bool {
        match self.state.load(Ordering::Acquire) {
            CLOSED => true,
            HALF_OPEN => false,
            _ => {
                if !self.probe_due() {
                    return false;
                }
                let won = self
                    .state
                    .compare_exchange(OPEN, HALF_OPEN, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
                if won {
                    galign_telemetry::counter_add("router.breaker.half_opened", 1);
                }
                won
            }
        }
    }

    /// Claims the half-open probe slot *regardless of cooldown* — the
    /// scatter path's last resort when every replica of a shard is
    /// tripped: one forced probe beats a guaranteed `"partial":true`.
    /// Returns `false` if a probe is already in flight.
    pub fn force_probe(&self) -> bool {
        let won = self
            .state
            .compare_exchange(OPEN, HALF_OPEN, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if won {
            galign_telemetry::counter_add("router.breaker.half_opened", 1);
        }
        won
    }

    /// Records a successful request: resets the failure streak and
    /// closes the breaker from any state.
    pub fn record_success(&self) {
        self.failures.store(0, Ordering::Relaxed);
        if self.state.swap(CLOSED, Ordering::AcqRel) != CLOSED {
            galign_telemetry::counter_add("router.breaker.closed", 1);
        }
    }

    /// Records a failed request. A half-open probe failure re-opens
    /// immediately; a closed breaker trips once the consecutive streak
    /// reaches the threshold. Failures reported against an already-open
    /// breaker (a hedged loser finishing late) do **not** re-stamp the
    /// cooldown — stragglers must not keep a breaker open forever.
    pub fn record_failure(&self) {
        let failures = self.failures.fetch_add(1, Ordering::Relaxed) + 1;
        match self.state.load(Ordering::Acquire) {
            HALF_OPEN => self.trip(HALF_OPEN),
            CLOSED if failures >= self.threshold.load(Ordering::Relaxed) => self.trip(CLOSED),
            _ => {}
        }
    }

    /// Trips the breaker immediately (used when discovery finds a
    /// replica unreachable: it starts open and heals via re-probe).
    pub fn force_open(&self) {
        self.failures
            .store(self.threshold.load(Ordering::Relaxed), Ordering::Relaxed);
        let state = self.state.load(Ordering::Acquire);
        if state != OPEN {
            self.trip(state);
        }
    }

    fn trip(&self, from: u8) {
        if self
            .state
            .compare_exchange(from, OPEN, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.opened_at_ms.store(self.now_ms(), Ordering::Relaxed);
            galign_telemetry::counter_add("router.breaker.opened", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = breaker(3, 60_000);
        for _ in 0..2 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // A success resets the streak: two more failures must not trip.
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire(), "open + cold: no traffic");
    }

    #[test]
    fn half_open_grants_exactly_one_probe() {
        let b = breaker(1, 10);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire(), "cooldown not elapsed");
        std::thread::sleep(Duration::from_millis(20));
        assert!(b.probe_due());
        assert!(b.try_acquire(), "cooldown elapsed: probe granted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.try_acquire(), "single probe slot");
        // Probe success closes; probe failure re-opens for a new cooldown.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire());
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let b = breaker(1, 10);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(20));
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire(), "fresh cooldown after failed probe");
    }

    #[test]
    fn straggler_failures_do_not_extend_an_open_breaker() {
        let b = breaker(1, 30);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(15));
        // A hedged loser reporting late must not re-stamp the cooldown.
        b.record_failure();
        std::thread::sleep(Duration::from_millis(20));
        assert!(b.probe_due(), "cooldown anchored at the original trip");
    }

    #[test]
    fn force_open_and_force_probe() {
        let b = breaker(5, 60_000);
        b.force_open();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire(), "cooldown applies to forced opens too");
        assert!(b.force_probe(), "all-tripped fallback bypasses cooldown");
        assert!(!b.force_probe(), "still a single probe slot");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn configure_keeps_state() {
        let b = breaker(3, 60_000);
        b.record_failure();
        b.record_failure();
        b.configure(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(1),
        });
        assert_eq!(b.state(), BreakerState::Closed, "configure is not a reset");
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "new threshold applies");
    }
}
