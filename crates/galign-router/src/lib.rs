//! # galign-router: sharded scatter-gather serving tier
//!
//! Routes top-k alignment queries across a fleet of `galign-serve`
//! shard nodes and merges the per-shard answers so the routed response
//! is **bit-identical** to what a single node holding the full
//! embedding matrix would return.
//!
//! ```text
//!                         ┌──────────────┐
//!        client ───────▶  │ galign-route │  one trace id spans it all
//!                         └──────┬───────┘
//!               scatter ┌────────┼────────┐ gather
//!                       ▼        ▼        ▼
//!                   shard 0   shard 1   shard 2     (id ranges tile
//!                   [0,400)  [400,800) [800,1200)    the target set)
//!                   r0  r1    r0  r1    r0  r1      (replicas per shard)
//! ```
//!
//! ## Why this is exact
//!
//! Alignment scores are per-(source, target) pairs: slicing the target
//! matrix into row ranges changes no score bits. Every shard runs the
//! same `select_topk` tie contract (score descending, ties by ascending
//! id) over its local rows; the router re-runs that contract over the
//! union of shard candidates with global ids restored. Since the true
//! global top-k of each node is contained in the union of per-shard
//! top-ks, and ascending-global-id candidate order makes the tie rule
//! coincide shard-side and router-side, the merge reproduces the
//! single-node answer byte for byte ([`scatter`] has the full
//! argument).
//!
//! ## Module map
//!
//! | module       | role                                              |
//! |--------------|---------------------------------------------------|
//! | [`topology`] | shard/replica discovery from `/healthz` manifests |
//! | [`scatter`]  | fan-out, failover, exact merge, rendering         |
//! | [`server`]   | the router's own HTTP front                       |
//!
//! ## Degradation contract
//!
//! A shard with no reachable replica never produces a silently wrong
//! answer: the routed response stays `200` but carries
//! `"partial": true`, and the router's `/healthz` flips to `degraded`
//! until a replica recovers. Eligibility is governed by per-replica
//! [circuit breakers](breaker): a replica that keeps failing is skipped
//! outright until a half-open probe (live traffic or the background
//! re-probe loop) heals it, while the advisory last-outcome flag keeps
//! ordering candidates and feeding `/healthz`. Slow replicas are covered
//! by [hedged requests](scatter): after a hedge delay derived from the
//! observed `router.hop.ms` histogram, the hop is raced against the next
//! replica and the first complete response wins — safe, because replicas
//! of a shard are bit-identical.

pub mod breaker;
pub mod scatter;
pub mod server;
pub mod topology;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use scatter::{parse_routed_query, scatter_gather, HedgePolicy, RoutedQuery, RoutedReply};
pub use server::{Router, RouterConfig, RouterHandle};
pub use topology::{parse_replica_spec, Replica, ReplicaHealth, Shard, ShardIdentity, Topology};
