//! # galign-router: sharded scatter-gather serving tier
//!
//! Routes top-k alignment queries across a fleet of `galign-serve`
//! shard nodes and merges the per-shard answers so the routed response
//! is **bit-identical** to what a single node holding the full
//! embedding matrix would return.
//!
//! ```text
//!                         ┌──────────────┐
//!        client ───────▶  │ galign-route │  one trace id spans it all
//!                         └──────┬───────┘
//!               scatter ┌────────┼────────┐ gather
//!                       ▼        ▼        ▼
//!                   shard 0   shard 1   shard 2     (id ranges tile
//!                   [0,400)  [400,800) [800,1200)    the target set)
//!                   r0  r1    r0  r1    r0  r1      (replicas per shard)
//! ```
//!
//! ## Why this is exact
//!
//! Alignment scores are per-(source, target) pairs: slicing the target
//! matrix into row ranges changes no score bits. Every shard runs the
//! same `select_topk` tie contract (score descending, ties by ascending
//! id) over its local rows; the router re-runs that contract over the
//! union of shard candidates with global ids restored. Since the true
//! global top-k of each node is contained in the union of per-shard
//! top-ks, and ascending-global-id candidate order makes the tie rule
//! coincide shard-side and router-side, the merge reproduces the
//! single-node answer byte for byte ([`scatter`] has the full
//! argument).
//!
//! ## Module map
//!
//! | module       | role                                              |
//! |--------------|---------------------------------------------------|
//! | [`topology`] | shard/replica discovery from `/healthz` manifests |
//! | [`scatter`]  | fan-out, failover, exact merge, rendering         |
//! | [`server`]   | the router's own HTTP front                       |
//!
//! ## Degradation contract
//!
//! A shard with no reachable replica never produces a silently wrong
//! answer: the routed response stays `200` but carries
//! `"partial": true`, and the router's `/healthz` flips to `degraded`
//! until a replica recovers. Replica health is advisory — unhealthy
//! replicas are ordered last, not excluded, so the fleet heals without
//! an operator.

pub mod scatter;
pub mod server;
pub mod topology;

pub use scatter::{parse_routed_query, scatter_gather, RoutedQuery, RoutedReply};
pub use server::{Router, RouterConfig, RouterHandle};
pub use topology::{parse_replica_spec, Replica, Shard, ShardIdentity, Topology};
