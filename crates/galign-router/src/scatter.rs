//! The scatter-gather core: fan a top-k query out to one replica per
//! shard, merge the per-shard heaps through the shared `select_topk` tie
//! contract, and render a response byte-identical to what a single
//! unsharded `galign-serve` node would have produced.
//!
//! ## Why the merge is exact
//!
//! Scoring is per-(query, target) pair — `SimPanel` accumulates the
//! θ-weighted layer products for one pair independently of every other
//! target row — so slicing the target matrix across shards changes *no
//! score bits*. Each shard returns its local top-k under the global tie
//! contract (descending score, ties by ascending target id), and any
//! member of the global top-k is necessarily in its own shard's local
//! top-k. Gather therefore only has to re-select over the union of the
//! per-shard candidates: candidates are collected as `(global_id, score)`
//! pairs, sorted ascending by global id, and pushed through the very same
//! [`select_topk`] used by the exact scan — ascending candidate order
//! makes "ascending index" coincide with "ascending global id", so the
//! tie-break resolves exactly as the full scan's would. Scores travel as
//! JSON through `fmt_f64`, which is round-trip exact for every finite
//! `f64`.
//!
//! ## Degradation
//!
//! A shard whose every replica fails yields a response with
//! `"partial": true` inserted after the `"engine"` field and the missing
//! shard's candidates absent — a *labelled* under-answer, never a silent
//! wrong one. Replicas are tried healthy-first, with unhealthy ones kept
//! as a last resort so a recovered node heals the rotation organically.

use crate::topology::{Shard, Topology};
use galign_matrix::simblock::select_topk;
use galign_serve::client::Client;
use galign_serve::json;
use galign_telemetry::context::{self, PropagationHandle};
use galign_telemetry::failpoint::{self, Action};
use galign_telemetry::flight::{FlightRecorder, RecordKind, TraceRecord};
use std::time::Instant;

/// One merged match (global target id + exact score).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Target id in the parent (unsharded) artifact.
    pub target: usize,
    /// Exact θ-weighted score (bit-identical to the single-node scan).
    pub score: f64,
}

/// What querying one shard produced.
enum ShardOutcome {
    /// Per-query-node matches, already translated to global target ids.
    Answer {
        engine: String,
        per_node: Vec<Vec<Match>>,
    },
    /// The shard rejected the request as malformed — deterministic across
    /// shards, so the first one is returned to the caller verbatim.
    ClientError { status: u16, body: String },
    /// Every replica of the shard failed.
    Unavailable,
}

/// A fully merged routed reply.
pub struct RoutedReply {
    /// HTTP status (200 for merged answers, the shard's own status for
    /// forwarded client errors).
    pub status: u16,
    /// Response body; for 200s byte-identical to a single node's unless
    /// `partial`.
    pub body: String,
    /// Whether at least one shard was unavailable.
    pub partial: bool,
    /// Engine label reported in the body (`exact`, `ann`, or `mixed`).
    pub engine: String,
}

/// Parses the routed query just enough to merge: node count and `k`.
/// The *body bytes are forwarded to the shards verbatim* — the router
/// never re-serializes θ or anything else, so nothing can drift.
pub struct RoutedQuery {
    /// Number of query nodes (response `results` arity).
    pub nodes: Vec<usize>,
    /// Effective k after defaulting.
    pub k: usize,
}

/// Mirrors the shard servers' body validation closely enough to merge.
/// `default_k`/`max_k` must match the shard fleet's configuration for the
/// `"k"` field of the routed response to agree with a single node's.
///
/// # Errors
/// A human-readable message, rendered as the router's own `400`.
pub fn parse_routed_query(
    body: &[u8],
    default_k: usize,
    max_k: usize,
) -> Result<RoutedQuery, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let nodes: Vec<usize> = match (doc.get("nodes"), doc.get("node")) {
        (Some(arr), _) => arr
            .as_arr()
            .ok_or("\"nodes\" must be an array of node ids")?
            .iter()
            .map(|v| {
                v.as_usize()
                    .ok_or("\"nodes\" entries must be non-negative integers")
            })
            .collect::<Result<_, _>>()?,
        (None, Some(one)) => vec![one
            .as_usize()
            .ok_or("\"node\" must be a non-negative integer")?],
        (None, None) => return Err("body needs \"nodes\" (array) or \"node\" (integer)".into()),
    };
    if nodes.is_empty() {
        return Err("\"nodes\" must not be empty".into());
    }
    let k = match doc.get("k") {
        None => default_k,
        Some(v) => v
            .as_usize()
            .filter(|&k| k >= 1)
            .ok_or("\"k\" must be an integer >= 1")?,
    };
    if k > max_k {
        return Err(format!("\"k\" exceeds the server limit of {max_k}"));
    }
    Ok(RoutedQuery { nodes, k })
}

/// Parses one shard's `/v1/align/topk` response body into global-id
/// matches, validating arity and id ranges against the shard identity.
fn parse_shard_response(
    body: &str,
    shard: &Shard,
    expected_nodes: usize,
) -> Result<(String, Vec<Vec<Match>>), String> {
    let doc = json::parse(body).map_err(|e| format!("unparseable shard response: {e}"))?;
    let engine = doc
        .get("engine")
        .and_then(|v| v.as_str())
        .ok_or("shard response lacks \"engine\"")?
        .to_string();
    let results = doc
        .get("results")
        .and_then(|v| v.as_arr())
        .ok_or("shard response lacks \"results\"")?;
    if results.len() != expected_nodes {
        return Err(format!(
            "shard answered {} nodes, expected {expected_nodes}",
            results.len()
        ));
    }
    let rows = shard.identity.end - shard.identity.start;
    let mut per_node = Vec::with_capacity(results.len());
    for entry in results {
        let matches = entry
            .get("matches")
            .and_then(|v| v.as_arr())
            .ok_or("result entry lacks \"matches\"")?;
        let mut out = Vec::with_capacity(matches.len());
        for m in matches {
            let target = m
                .get("target")
                .and_then(|v| v.as_usize())
                .ok_or("match lacks \"target\"")?;
            if target >= rows {
                return Err(format!(
                    "shard-local target {target} out of range for {rows} rows"
                ));
            }
            let score = m
                .get("score")
                .and_then(|v| v.as_f64())
                .ok_or("match lacks \"score\"")?;
            out.push(Match {
                target: shard.identity.start + target,
                score,
            });
        }
        per_node.push(out);
    }
    Ok((engine, per_node))
}

/// Merges per-shard candidate lists for one query node through the
/// shared `select_topk` tie contract.
///
/// Candidates are sorted ascending by global id before selection so that
/// `select_topk`'s "ties by ascending index" resolves identically to the
/// single-node full scan, where index *is* global id.
pub fn merge_topk(candidates: &mut [Match], k: usize) -> Vec<Match> {
    candidates.sort_unstable_by_key(|m| m.target);
    let scores: Vec<f64> = candidates.iter().map(|m| m.score).collect();
    select_topk(&scores, k)
        .into_iter()
        .map(|hit| Match {
            target: candidates[hit.target].target,
            score: hit.score,
        })
        .collect()
}

/// Queries one shard, trying replicas healthy-first and failing over on
/// transport errors and 5xx. Returns the first definitive outcome.
fn query_shard(
    shard: &Shard,
    clients: &[Client],
    body: &str,
    expected_nodes: usize,
    recorder: &FlightRecorder,
) -> ShardOutcome {
    let mut order: Vec<usize> = (0..shard.replicas.len()).collect();
    // Healthy-first, stable: config order is the tie-break, unhealthy
    // replicas stay reachable as a last resort (that retry is how they
    // heal).
    order.sort_by_key(|&i| !shard.replicas[i].is_healthy());
    let shard_label = shard.identity.shard_id;
    let mut tried = 0u64;
    for idx in order {
        let replica = &shard.replicas[idx];
        let client = &clients[idx];
        tried += 1;
        // Failpoint `router.scatter`: a `trigger` action fails this hop
        // before it is sent (simulated replica blackout); `delay(ms)`
        // stalls it. Used by the replica-kill suite. Only the first
        // choice per shard query is eligible, so one trigger charge
        // exercises failover rather than blacking out the whole shard.
        if tried == 1 {
            if let Some(Action::Trigger(_)) = failpoint::eval("router.scatter") {
                replica.set_healthy(false);
                galign_telemetry::counter_add("router.hop.failpoint_faults", 1);
                continue;
            }
        }
        let hop_started = Instant::now();
        let outcome = client.post_json("/v1/align/topk", body);
        let hop_us = hop_started.elapsed().as_micros() as u64;
        galign_telemetry::histogram_record("router.hop.ms", hop_us as f64 / 1e3);
        galign_telemetry::counter_add(&format!("router.shard{shard_label}.hops"), 1);
        let status = match &outcome {
            Ok(resp) => resp.status,
            Err(_) => 0,
        };
        record_hop(recorder, shard_label, &replica.addr, status, hop_us);
        match outcome {
            Ok(resp) if resp.status == 200 => {
                match parse_shard_response(&resp.body_str(), shard, expected_nodes) {
                    Ok((engine, per_node)) => {
                        replica.set_healthy(true);
                        if tried > 1 {
                            galign_telemetry::counter_add(
                                &format!("router.shard{shard_label}.failovers"),
                                1,
                            );
                        }
                        return ShardOutcome::Answer { engine, per_node };
                    }
                    Err(msg) => {
                        // A 200 we cannot trust is a failed hop, not an
                        // answer.
                        galign_telemetry::info!(
                            "router",
                            "shard {shard_label} replica {}: {msg}",
                            replica.addr
                        );
                        replica.set_healthy(false);
                    }
                }
            }
            Ok(resp) if (400..500).contains(&resp.status) => {
                // The replica is alive and the request itself is bad —
                // deterministic across the fleet, so no failover.
                replica.set_healthy(true);
                return ShardOutcome::ClientError {
                    status: resp.status,
                    body: resp.body_str(),
                };
            }
            Ok(_) | Err(_) => {
                replica.set_healthy(false);
                galign_telemetry::counter_add("router.hop.failures", 1);
            }
        }
    }
    galign_telemetry::counter_add(&format!("router.shard{shard_label}.unavailable"), 1);
    ShardOutcome::Unavailable
}

fn record_hop(recorder: &FlightRecorder, shard_id: usize, addr: &str, status: u16, hop_us: u64) {
    recorder.record(TraceRecord {
        trace_id: context::current_trace_id().unwrap_or(galign_telemetry::context::TraceId(0)),
        kind: RecordKind::Hop,
        name: format!("shard{shard_id} {addr}"),
        status,
        engine: String::new(),
        end_ms: galign_telemetry::clock_ms(),
        total_us: hop_us,
        events: Vec::new(),
        notes: Vec::new(),
        fields: Vec::new(),
    });
}

/// Scatters `body` (forwarded verbatim) to one replica per shard, gathers
/// and merges. `clients` is indexed `[shard][replica]`, aligned with
/// `topology.shards`. Each shard's client set is handed to its scatter
/// thread exclusively (`Client` pools sockets behind a `RefCell`, so it
/// is `Send` but not `Sync`).
pub fn scatter_gather(
    topology: &Topology,
    clients: &mut [Vec<Client>],
    body: &str,
    query: &RoutedQuery,
    recorder: &FlightRecorder,
) -> RoutedReply {
    let st = context::stage("scatter");
    let handle = PropagationHandle::capture();
    let expected = query.nodes.len();
    let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
        let joins: Vec<_> = topology
            .shards
            .iter()
            .zip(clients.iter_mut())
            .map(|(shard, shard_clients)| {
                let shard_clients: &mut [Client] = shard_clients;
                let handle = &handle;
                let recorder: &FlightRecorder = recorder;
                scope.spawn(move || {
                    handle.scope(|| query_shard(shard, shard_clients, body, expected, recorder))
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().unwrap_or(ShardOutcome::Unavailable))
            .collect()
    });
    st.finish();

    // A deterministic client error from any shard is the answer for the
    // whole request — forward the first, in shard order.
    for outcome in &outcomes {
        if let ShardOutcome::ClientError { status, body } = outcome {
            return RoutedReply {
                status: *status,
                body: body.clone(),
                partial: false,
                engine: String::new(),
            };
        }
    }

    let st = context::stage("merge");
    let mut partial = false;
    let mut engines: Vec<&str> = Vec::new();
    let mut answers: Vec<&Vec<Vec<Match>>> = Vec::new();
    for outcome in &outcomes {
        match outcome {
            ShardOutcome::Answer { engine, per_node } => {
                engines.push(engine.as_str());
                answers.push(per_node);
            }
            ShardOutcome::Unavailable => partial = true,
            ShardOutcome::ClientError { .. } => unreachable!("handled above"),
        }
    }
    let engine = match engines.split_first() {
        None => "exact".to_string(),
        Some((first, rest)) if rest.iter().all(|e| e == first) => (*first).to_string(),
        _ => "mixed".to_string(),
    };
    let merged: Vec<Vec<Match>> = (0..expected)
        .map(|i| {
            let mut candidates: Vec<Match> =
                answers.iter().flat_map(|a| a[i].iter().copied()).collect();
            merge_topk(&mut candidates, query.k)
        })
        .collect();
    st.finish();

    if partial {
        galign_telemetry::counter_add("router.scatter.partial", 1);
    }
    let st = context::stage("serialize");
    let body = render_response(&query.nodes, &merged, query.k, &engine, partial);
    st.finish_with(vec![("bytes", body.len().to_string())]);
    RoutedReply {
        status: 200,
        body,
        partial,
        engine,
    }
}

/// Renders the routed response in exactly the shard servers' format, with
/// `"partial":true,` inserted after the engine field only when degraded.
fn render_response(
    nodes: &[usize],
    merged: &[Vec<Match>],
    k: usize,
    engine: &str,
    partial: bool,
) -> String {
    let partial_field = if partial { "\"partial\":true," } else { "" };
    let mut out = format!("{{\"k\":{k},\"engine\":\"{engine}\",{partial_field}\"results\":[");
    for (i, (node, matches)) in nodes.iter().zip(merged).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"node\":{node},\"matches\":["));
        for (j, m) in matches.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"target\":{},\"score\":{}}}",
                m.target,
                json::fmt_f64(m.score)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::simblock::select_topk_bruteforce;

    #[test]
    fn merge_matches_full_scan_including_ties() {
        // A synthetic score vector with duplicate scores spanning a shard
        // boundary at id 4: the merged selection must keep the full
        // scan's tie order (ascending global id).
        let scores = [0.5, 0.9, 0.9, 0.1, 0.9, 0.3, 0.9, 0.2, 0.05];
        for k in 1..=scores.len() + 2 {
            let reference: Vec<(usize, f64)> = select_topk_bruteforce(&scores, k)
                .into_iter()
                .map(|h| (h.target, h.score))
                .collect();
            // Split into shards [0,4) and [4,9); each shard contributes
            // its local top-k translated to global ids — delivered here
            // in the (arbitrary) order shard1-then-shard0 to prove the
            // pre-merge sort does its job.
            let mut candidates = Vec::new();
            for (start, end) in [(4, 9), (0, 4)] {
                let local: Vec<f64> = scores[start..end].to_vec();
                for hit in select_topk(&local, k) {
                    candidates.push(Match {
                        target: start + hit.target,
                        score: hit.score,
                    });
                }
            }
            let merged: Vec<(usize, f64)> = merge_topk(&mut candidates, k)
                .into_iter()
                .map(|m| (m.target, m.score))
                .collect();
            assert_eq!(merged, reference, "k={k}");
        }
    }

    #[test]
    fn parse_routed_query_mirrors_server_rules() {
        let q = parse_routed_query(br#"{"nodes":[3,1],"k":7}"#, 10, 100).unwrap();
        assert_eq!((q.nodes, q.k), (vec![3, 1], 7));
        let q = parse_routed_query(br#"{"node":2}"#, 10, 100).unwrap();
        assert_eq!((q.nodes, q.k), (vec![2], 10));
        assert!(parse_routed_query(b"nope", 10, 100).is_err());
        assert!(parse_routed_query(br#"{"nodes":[]}"#, 10, 100).is_err());
        assert!(parse_routed_query(br#"{"nodes":[0],"k":0}"#, 10, 100).is_err());
        assert!(parse_routed_query(br#"{"nodes":[0],"k":101}"#, 10, 100).is_err());
    }

    #[test]
    fn render_inserts_partial_after_engine() {
        let merged = vec![vec![Match {
            target: 7,
            score: 0.25,
        }]];
        let full = render_response(&[0], &merged, 1, "exact", false);
        assert_eq!(
            full,
            r#"{"k":1,"engine":"exact","results":[{"node":0,"matches":[{"target":7,"score":0.25}]}]}"#
        );
        let partial = render_response(&[0], &merged, 1, "exact", true);
        assert_eq!(
            partial,
            r#"{"k":1,"engine":"exact","partial":true,"results":[{"node":0,"matches":[{"target":7,"score":0.25}]}]}"#
        );
    }
}
