//! The scatter-gather core: fan a top-k query out to one replica per
//! shard, merge the per-shard heaps through the shared `select_topk` tie
//! contract, and render a response byte-identical to what a single
//! unsharded `galign-serve` node would have produced. Both wire shapes
//! route through here: `/v1/align/topk` (one query) and `/v2/align/topk`
//! (a `queries` batch, merged slot by slot).
//!
//! Parsing and rendering go through `galign_serve::api` — the same typed
//! schema the shard servers use — so the router cannot drift from the
//! fleet's validation rules or serialization bytes.
//!
//! ## Why the merge is exact
//!
//! Scoring is per-(query, target) pair — `SimPanel` accumulates the
//! θ-weighted layer products for one pair independently of every other
//! target row — so slicing the target matrix across shards changes *no
//! score bits*. Each shard returns its local top-k under the global tie
//! contract (descending score, ties by ascending target id), and any
//! member of the global top-k is necessarily in its own shard's local
//! top-k. Gather therefore only has to re-select over the union of the
//! per-shard candidates: candidates are collected as `(global_id, score)`
//! pairs, sorted ascending by global id, and pushed through the very same
//! [`select_topk`] used by the exact scan — ascending candidate order
//! makes "ascending index" coincide with "ascending global id", so the
//! tie-break resolves exactly as the full scan's would. Scores travel as
//! JSON through `fmt_f64`, which is round-trip exact for every finite
//! `f64`.
//!
//! ## Degradation
//!
//! A shard whose every replica fails yields a response with
//! `"partial": true` inserted after the `"engine"` field and the missing
//! shard's candidates absent — a *labelled* under-answer, never a silent
//! wrong one. (In a `/v2` batch the marker lands inside every answered
//! slot.) Candidate order is advisory-healthy-first; *eligibility* is
//! each replica's circuit breaker ([`crate::breaker`]): tripped replicas
//! are skipped outright until a half-open probe heals them, with one
//! forced probe as the last resort when a shard's every breaker is open.
//!
//! ## Hedging
//!
//! A slow replica is raced, not waited out: once the primary attempt has
//! been in flight longer than the hedge delay ([`HedgePolicy`] — the
//! observed `router.hop.ms` p99 when enough samples exist, else the
//! static fallback), the same request is fired at the next eligible
//! replica and the **first complete response wins**. Hedging is safe
//! precisely because of the bit-identity contract above: replicas of a
//! shard serve the same artifact and the full response path is
//! deterministic, so either racer returns the same bytes. Cancellation
//! is by abandonment — attempts run on detached threads, the loser's
//! response is dropped on the floor, and its outcome still feeds the
//! replica's breaker. Hedges spend from a shared token budget (earned as
//! a fraction of normal traffic) so a fleet-wide brownout cannot turn
//! hedging into a request doubler.

use crate::topology::{ReplicaHealth, Shard, Topology};
use galign_matrix::simblock::select_topk;
use galign_serve::api::{
    self, BatchRequest, Hit, NodeResult, QueryOutcome, RequestDefaults, TopkRequest, TopkResponse,
};
use galign_serve::client::{Client, ClientConfig, Response};
use galign_serve::json;
use galign_serve::topk::{EngineMode, QuantMode};
use galign_telemetry::context::{self, PropagationHandle};
use galign_telemetry::failpoint::{self, Action};
use galign_telemetry::flight::{FlightRecorder, RecordKind, TraceRecord};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// One merged match (global target id + exact score).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Target id in the parent (unsharded) artifact.
    pub target: usize,
    /// Exact θ-weighted score (bit-identical to the single-node scan).
    pub score: f64,
}

/// One shard's answer to a single query: per-query-node matches already
/// translated to global target ids, plus the engine it used.
struct ShardAnswer {
    engine: String,
    per_node: Vec<Vec<Match>>,
}

/// One shard's answer to one slot of a `/v2` batch. A slot can fail on
/// its own (a per-query validation error) without failing its siblings.
struct SlotAnswer {
    engine: String,
    per_node: Vec<Vec<Match>>,
}

/// What querying one shard produced, generic over the answer payload
/// (`ShardAnswer` for `/v1`, per-slot outcomes for `/v2`).
enum ShardOutcome<T> {
    /// A parsed, validated answer.
    Answer(T),
    /// The shard rejected the request as malformed — deterministic across
    /// shards, so the first one is returned to the caller verbatim.
    ClientError { status: u16, body: String },
    /// Every replica of the shard failed.
    Unavailable,
}

/// A fully merged routed reply.
pub struct RoutedReply {
    /// HTTP status (200 for merged answers, the shard's own status for
    /// forwarded client errors).
    pub status: u16,
    /// Response body; for 200s byte-identical to a single node's unless
    /// `partial`.
    pub body: String,
    /// Whether at least one shard was unavailable.
    pub partial: bool,
    /// Engine label reported in the body (`exact`, `ann`, or `mixed`).
    pub engine: String,
}

/// The merge-relevant projection of a routed query: node count and `k`.
/// The *body bytes are forwarded to the shards verbatim* — the router
/// never re-serializes θ or anything else, so nothing can drift.
pub struct RoutedQuery {
    /// Number of query nodes (response `results` arity).
    pub nodes: Vec<usize>,
    /// Effective k after defaulting.
    pub k: usize,
}

/// Minimum samples in `router.hop.ms` before the adaptive hedge delay
/// trusts the histogram over the static fallback.
const ADAPTIVE_MIN_SAMPLES: usize = 64;
/// Clamp range of the adaptive hedge delay.
const ADAPTIVE_MIN_DELAY: Duration = Duration::from_millis(1);
const ADAPTIVE_MAX_DELAY: Duration = Duration::from_secs(2);

/// Shared token budget metering hedge attempts: hedges may consume about
/// `ratio` of normal hop traffic, with `cap` tokens of burst headroom.
/// Balances are stored as milli-tokens in one atomic shared by every
/// router worker.
#[derive(Debug)]
struct HedgeBudget {
    milli: AtomicU64,
    earn_milli: u64,
    cap_milli: u64,
}

impl HedgeBudget {
    fn new(ratio: f64, cap: f64) -> HedgeBudget {
        let earn_milli = (ratio.max(0.0) * 1000.0) as u64;
        let cap_milli = (cap.max(0.0) * 1000.0) as u64;
        HedgeBudget {
            milli: AtomicU64::new(cap_milli),
            earn_milli,
            cap_milli,
        }
    }

    /// `ratio <= 0` disables metering (every hedge granted).
    fn unmetered(&self) -> bool {
        self.earn_milli == 0
    }

    /// Earns the per-shard-query fraction of a token.
    fn earn(&self) {
        if self.unmetered() {
            return;
        }
        let _ = self
            .milli
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| {
                Some((b + self.earn_milli).min(self.cap_milli))
            });
    }

    /// Spends one token if available.
    fn try_charge(&self) -> bool {
        if self.unmetered() {
            return true;
        }
        self.milli
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| {
                if b >= 1000 {
                    Some(b - 1000)
                } else {
                    None
                }
            })
            .is_ok()
    }
}

/// When and whether to hedge a shard hop, plus the client configuration
/// hedge attempts fall back to when a replica's pooled client is busy.
#[derive(Debug)]
pub struct HedgePolicy {
    /// Static hedge delay; `None` disables hedging entirely.
    pub after: Option<Duration>,
    /// Derive the delay from the observed `router.hop.ms` p99 once
    /// `ADAPTIVE_MIN_SAMPLES` (64) samples exist (clamped to
    /// `[1ms, 2s]`). Note the feedback is *stabilising*: a browning-out
    /// fleet inflates the p99, which hedges later and sheds hedge load
    /// exactly when the fleet can least afford extra requests.
    pub adaptive: bool,
    /// Config for clients built by attempt threads (fresh-connection
    /// fallback and the background re-probe loop share it).
    pub client: ClientConfig,
    budget: HedgeBudget,
}

impl HedgePolicy {
    /// A policy hedging after `after` (statically), optionally adapting
    /// to the observed hop histogram, metered by a `ratio`-of-traffic
    /// token budget with `cap` burst headroom.
    #[must_use]
    pub fn new(
        after: Option<Duration>,
        adaptive: bool,
        ratio: f64,
        cap: f64,
        client: ClientConfig,
    ) -> HedgePolicy {
        HedgePolicy {
            after,
            adaptive,
            client,
            budget: HedgeBudget::new(ratio, cap),
        }
    }

    /// A policy that never hedges (single-attempt hops, as before).
    #[must_use]
    pub fn disabled(client: ClientConfig) -> HedgePolicy {
        HedgePolicy::new(None, false, 0.0, 0.0, client)
    }

    /// The hedge delay to use right now: observed p99 when adaptive and
    /// warmed up, else the static fallback. `None` = no hedging.
    fn delay(&self) -> Option<Duration> {
        let fallback = self.after?;
        if self.adaptive {
            if let Some(s) = galign_telemetry::histogram_summary("router.hop.ms") {
                if s.count >= ADAPTIVE_MIN_SAMPLES && s.p99.is_finite() && s.p99 >= 0.0 {
                    let p99 = Duration::from_micros((s.p99 * 1000.0) as u64);
                    return Some(p99.clamp(ADAPTIVE_MIN_DELAY, ADAPTIVE_MAX_DELAY));
                }
            }
        }
        Some(fallback)
    }
}

/// The [`RequestDefaults`] a router applies; must match the shard fleet's
/// configuration for routed responses to agree with a single node's.
fn defaults(default_k: usize, max_k: usize) -> RequestDefaults {
    RequestDefaults {
        default_k,
        max_k,
        default_mode: EngineMode::Auto,
        default_quant: QuantMode::Off,
    }
}

/// Parses a routed `/v1` query through the shared server-side rules
/// ([`TopkRequest::from_body`]), so the router rejects exactly what a
/// shard would, with the same message.
///
/// # Errors
/// A human-readable message, rendered as the router's own `400`.
pub fn parse_routed_query(
    body: &[u8],
    default_k: usize,
    max_k: usize,
) -> Result<RoutedQuery, String> {
    let req = TopkRequest::from_body(body, &defaults(default_k, max_k))?;
    Ok(RoutedQuery {
        nodes: req.nodes,
        k: req.k,
    })
}

/// Parses a routed `/v2` batch envelope through the shared rules
/// ([`BatchRequest::from_body`]). Per-query failures stay in their slot;
/// only envelope-level problems error here.
///
/// # Errors
/// Envelope-level problems, rendered as the router's own `400`.
pub fn parse_routed_batch(
    body: &[u8],
    default_k: usize,
    max_k: usize,
) -> Result<BatchRequest, String> {
    BatchRequest::from_body(body, &defaults(default_k, max_k))
}

/// Validates one response document against the shard's identity and
/// translates shard-local target ids to global ids.
fn translate_response(
    resp: &TopkResponse,
    start: usize,
    rows: usize,
    expected_nodes: usize,
) -> Result<Vec<Vec<Match>>, String> {
    if resp.results.len() != expected_nodes {
        return Err(format!(
            "shard answered {} nodes, expected {expected_nodes}",
            resp.results.len()
        ));
    }
    let mut per_node = Vec::with_capacity(resp.results.len());
    for entry in &resp.results {
        let mut out = Vec::with_capacity(entry.matches.len());
        for hit in entry.matches.iter() {
            if hit.target >= rows {
                return Err(format!(
                    "shard-local target {} out of range for {rows} rows",
                    hit.target
                ));
            }
            out.push(Match {
                target: start + hit.target,
                score: hit.score,
            });
        }
        per_node.push(out);
    }
    Ok(per_node)
}

/// Parses one shard's `/v1/align/topk` response body into global-id
/// matches, validating arity and id ranges against the shard identity.
fn parse_shard_response(
    body: &str,
    shard: &Shard,
    expected_nodes: usize,
) -> Result<ShardAnswer, String> {
    let resp = TopkResponse::from_body(body.as_bytes())?;
    let rows = shard.identity.end - shard.identity.start;
    let per_node = translate_response(&resp, shard.identity.start, rows, expected_nodes)?;
    Ok(ShardAnswer {
        engine: resp.engine,
        per_node,
    })
}

/// Parses one shard's `/v2/align/topk` response envelope into per-slot
/// outcomes. Slots the router itself failed to parse keep the router's
/// own (identical, since the validation code is shared) error message;
/// answered slots are validated and translated like `/v1` responses. Any
/// structural mismatch fails the whole hop.
fn parse_shard_batch_response(
    body: &str,
    shard: &Shard,
    batch: &BatchRequest,
) -> Result<Vec<Result<SlotAnswer, String>>, String> {
    let doc = json::parse(body).map_err(|e| format!("unparseable shard response: {e}"))?;
    let outcomes = api::parse_batch_response(&doc)?;
    if outcomes.len() != batch.queries.len() {
        return Err(format!(
            "shard answered {} queries, expected {}",
            outcomes.len(),
            batch.queries.len()
        ));
    }
    let start = shard.identity.start;
    let rows = shard.identity.end - start;
    batch
        .queries
        .iter()
        .zip(outcomes)
        .map(|(query, outcome)| match (query, outcome) {
            // The router's own parse failure is deterministic and uses
            // the exact validation code the shard ran; keep ours.
            (Err(msg), _) => Ok(Err(msg.clone())),
            // The shard rejected a query the router accepted (mismatched
            // fleet config, e.g. a lower max_k): a deterministic per-slot
            // rejection, forwarded as that slot's error.
            (Ok(_), Err(msg)) => Ok(Err(msg)),
            (Ok(q), Ok(resp)) => {
                let per_node = translate_response(&resp, start, rows, q.nodes.len())?;
                Ok(Ok(SlotAnswer {
                    engine: resp.engine,
                    per_node,
                }))
            }
        })
        .collect()
}

/// Merges per-shard candidate lists for one query node through the
/// shared `select_topk` tie contract.
///
/// Candidates are sorted ascending by global id before selection so that
/// `select_topk`'s "ties by ascending index" resolves identically to the
/// single-node full scan, where index *is* global id.
pub fn merge_topk(candidates: &mut [Match], k: usize) -> Vec<Match> {
    candidates.sort_unstable_by_key(|m| m.target);
    let scores: Vec<f64> = candidates.iter().map(|m| m.score).collect();
    select_topk(&scores, k)
        .into_iter()
        .map(|hit| Match {
            target: candidates[hit.target].target,
            score: hit.score,
        })
        .collect()
}

/// What one detached attempt thread reports back to its shard thread.
struct AttemptReport {
    /// Index into `shard.replicas`.
    replica_idx: usize,
    /// Launch sequence number within this shard query (0 = primary).
    attempt_no: usize,
    /// Whether this attempt was a hedge.
    hedge: bool,
    result: io::Result<Response>,
}

/// Fires one attempt on a detached thread. Detached, not scoped: a
/// hedged loser may still be mid-read when the shard thread returns the
/// winner's answer, and nobody should wait for it. The thread reports
/// through `tx`; if the shard thread is already gone (abandonment — our
/// cancellation), it records the transport-level outcome against the
/// replica's breaker itself, so late evidence still counts.
#[allow(clippy::too_many_arguments)]
fn spawn_attempt(
    health: Arc<ReplicaHealth>,
    addr: String,
    client: Arc<Mutex<Client>>,
    cfg: ClientConfig,
    path: &'static str,
    body: Arc<str>,
    deadline: Option<Instant>,
    shard_label: usize,
    replica_idx: usize,
    attempt_no: usize,
    hedge: bool,
    tx: mpsc::Sender<AttemptReport>,
    handle: PropagationHandle,
    recorder: &'static FlightRecorder,
) {
    std::thread::spawn(move || {
        handle.scope(|| {
            if attempt_no == 0 {
                // Failpoint `router.hop.slow`: `delay(ms)` stalls the
                // *primary* attempt only — a deterministic slow replica
                // for the chaos suite, leaving hedges at full speed.
                let _ = failpoint::eval("router.hop.slow");
            }
            let hop_started = Instant::now();
            let result = match client.try_lock() {
                Ok(pooled) => pooled.post_json_with_deadline(path, &body, deadline),
                // Pooled client busy (e.g. a prior attempt to this
                // replica is still draining): one fresh connection
                // rather than queueing behind it.
                Err(_) => Client::with_config(&addr, cfg)
                    .and_then(|fresh| fresh.post_json_with_deadline(path, &body, deadline)),
            };
            let hop_us = hop_started.elapsed().as_micros() as u64;
            galign_telemetry::histogram_record("router.hop.ms", hop_us as f64 / 1e3);
            galign_telemetry::counter_add(&format!("router.shard{shard_label}.hops"), 1);
            let status = match &result {
                Ok(resp) => resp.status,
                Err(_) => 0,
            };
            record_hop(recorder, shard_label, &addr, status, hop_us);
            if !matches!(&result, Ok(resp) if resp.status < 500) {
                galign_telemetry::counter_add("router.hop.failures", 1);
            }
            let report = AttemptReport {
                replica_idx,
                attempt_no,
                hedge,
                result,
            };
            if let Err(mpsc::SendError(report)) = tx.send(report) {
                // Abandoned loser: any response proves the replica alive
                // at the transport level (even a 200 nobody will parse);
                // errors and 5xx feed the failure streak.
                match &report.result {
                    Ok(resp) if resp.status < 500 => health.record_success(),
                    _ => health.record_failure(),
                }
            }
        });
    });
}

/// The per-shard replica race: candidate ordering, breaker-gated launch,
/// and attempt bookkeeping for one shard query.
struct ShardRace<'a> {
    shard: &'a Shard,
    clients: &'a [Arc<Mutex<Client>>],
    /// Candidate order: advisory-healthy-first, config order as the
    /// stable tie-break.
    order: Vec<usize>,
    /// Cursor into `order` (next candidate to consider).
    pos: usize,
    /// Attempts launched so far.
    launched: usize,
    /// Attempts launched and not yet reported.
    in_flight: usize,
    path: &'static str,
    body: Arc<str>,
    deadline: Option<Instant>,
    cfg: ClientConfig,
    shard_label: usize,
    tx: mpsc::Sender<AttemptReport>,
    handle: PropagationHandle,
    recorder: &'static FlightRecorder,
}

impl ShardRace<'_> {
    /// Launches the next candidate whose breaker admits traffic.
    /// Tripped replicas are *skipped*, not deprioritised. Returns
    /// whether an attempt went out.
    fn launch(&mut self, hedge: bool) -> bool {
        while self.pos < self.order.len() {
            let idx = self.order[self.pos];
            self.pos += 1;
            let replica = &self.shard.replicas[idx];
            // Failpoint `router.scatter`: a `trigger` action fails this
            // hop before it is sent (simulated replica blackout). Only
            // the first choice per shard query is eligible, so one
            // trigger charge exercises failover rather than blacking out
            // the whole shard.
            if self.pos == 1 {
                if let Some(Action::Trigger(_)) = failpoint::eval("router.scatter") {
                    replica.record_failure();
                    galign_telemetry::counter_add("router.hop.failpoint_faults", 1);
                    continue;
                }
            }
            if !replica.breaker().try_acquire() {
                galign_telemetry::counter_add("router.breaker.skipped", 1);
                continue;
            }
            self.spawn(idx, hedge);
            return true;
        }
        false
    }

    /// Last resort when every replica's breaker refused: force one
    /// half-open probe (cooldown ignored) — a probe that might answer
    /// beats a guaranteed `"partial":true`. Refused only when another
    /// worker's probe is already in flight on every replica.
    fn force_launch(&mut self) -> bool {
        for i in 0..self.order.len() {
            let idx = self.order[i];
            if self.shard.replicas[idx].breaker().force_probe() {
                self.spawn(idx, false);
                return true;
            }
        }
        false
    }

    fn spawn(&mut self, idx: usize, hedge: bool) {
        let replica = &self.shard.replicas[idx];
        spawn_attempt(
            replica.health(),
            replica.addr.clone(),
            Arc::clone(&self.clients[idx]),
            self.cfg.clone(),
            self.path,
            Arc::clone(&self.body),
            self.deadline,
            self.shard_label,
            idx,
            self.launched,
            hedge,
            self.tx.clone(),
            self.handle.clone(),
            self.recorder,
        );
        self.launched += 1;
        self.in_flight += 1;
    }
}

/// Queries one shard: candidates ordered advisory-healthy-first, gated
/// by their circuit breakers, raced via hedging when the primary is
/// slow, failing over on transport errors, 5xx, and 200s that fail
/// `parse`. Returns the first definitive outcome.
#[allow(clippy::too_many_arguments)]
fn query_shard<T>(
    shard: &Shard,
    clients: &[Arc<Mutex<Client>>],
    path: &'static str,
    body: &str,
    policy: &HedgePolicy,
    deadline: Option<Instant>,
    recorder: &'static FlightRecorder,
    parse: impl Fn(&str) -> Result<T, String>,
) -> ShardOutcome<T> {
    let shard_label = shard.identity.shard_id;
    let mut order: Vec<usize> = (0..shard.replicas.len()).collect();
    order.sort_by_key(|&i| !shard.replicas[i].is_healthy());
    policy.budget.earn();
    let hedge_delay = policy.delay();
    let (tx, rx) = mpsc::channel();
    let mut race = ShardRace {
        shard,
        clients,
        order,
        pos: 0,
        launched: 0,
        in_flight: 0,
        path,
        body: Arc::from(body),
        deadline,
        cfg: policy.client.clone(),
        shard_label,
        tx,
        handle: PropagationHandle::capture(),
        recorder,
    };
    // Backstop wait so a pathologically lost attempt (thread killed
    // mid-request) cannot wedge the shard thread. Generously above the
    // worst case of one attempt's full retry schedule.
    let backstop =
        (policy.client.connect_timeout + policy.client.io_timeout + policy.client.max_backoff)
            * (policy.client.max_retries + 1)
            + Duration::from_secs(5);

    if !race.launch(false) && !race.force_launch() {
        galign_telemetry::counter_add(&format!("router.shard{shard_label}.unavailable"), 1);
        return ShardOutcome::Unavailable;
    }
    // Whether the hedge timer has fired (it arms at most once per shard
    // query) and whether a hedge attempt actually went out.
    let mut hedge_fired = false;
    let mut hedge_launched = false;
    loop {
        if race.in_flight == 0 {
            // Everything reported and failed so far: move down the
            // candidate list sequentially.
            if race.launch(false) {
                continue;
            }
            break;
        }
        let report = if !hedge_fired && hedge_delay.is_some() {
            match rx.recv_timeout(hedge_delay.unwrap_or_default()) {
                Ok(report) => report,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // The primary is slow: race it against the next
                    // eligible replica, if the hedge budget allows.
                    hedge_fired = true;
                    if policy.budget.try_charge() {
                        if race.launch(true) {
                            hedge_launched = true;
                            galign_telemetry::counter_add("router.hedge.fired", 1);
                        }
                    } else {
                        galign_telemetry::counter_add("router.hedge.budget_exhausted", 1);
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match rx.recv_timeout(backstop) {
                Ok(report) => report,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    race.in_flight -= 1;
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        };
        race.in_flight -= 1;
        let replica = &shard.replicas[report.replica_idx];
        match report.result {
            Ok(resp) if resp.status == 200 => match parse(&resp.body_str()) {
                Ok(answer) => {
                    replica.record_success();
                    if report.hedge {
                        galign_telemetry::counter_add("router.hedge.wins", 1);
                    } else if hedge_launched {
                        galign_telemetry::counter_add("router.hedge.losses", 1);
                    }
                    if report.attempt_no > 0 {
                        galign_telemetry::counter_add(
                            &format!("router.shard{shard_label}.failovers"),
                            1,
                        );
                    }
                    return ShardOutcome::Answer(answer);
                }
                Err(msg) => {
                    // A 200 we cannot trust is a failed hop, not an
                    // answer.
                    galign_telemetry::info!(
                        "router",
                        "shard {shard_label} replica {}: {msg}",
                        replica.addr
                    );
                    replica.record_failure();
                }
            },
            Ok(resp) if (400..500).contains(&resp.status) => {
                // The replica is alive and the request itself is bad —
                // deterministic across the fleet, so no failover.
                replica.record_success();
                return ShardOutcome::ClientError {
                    status: resp.status,
                    body: resp.body_str(),
                };
            }
            Ok(_) | Err(_) => {
                replica.record_failure();
            }
        }
        // A failure with a racer still out: wait for the racer before
        // widening the blast radius with more attempts.
    }
    galign_telemetry::counter_add(&format!("router.shard{shard_label}.unavailable"), 1);
    ShardOutcome::Unavailable
}

fn record_hop(recorder: &FlightRecorder, shard_id: usize, addr: &str, status: u16, hop_us: u64) {
    recorder.record(TraceRecord {
        trace_id: context::current_trace_id().unwrap_or(galign_telemetry::context::TraceId(0)),
        kind: RecordKind::Hop,
        name: format!("shard{shard_id} {addr}"),
        status,
        engine: String::new(),
        end_ms: galign_telemetry::clock_ms(),
        total_us: hop_us,
        events: Vec::new(),
        notes: Vec::new(),
        fields: Vec::new(),
    });
}

/// Fans one query-per-shard out on scoped threads and gathers the
/// outcomes in shard order. Clients are `Arc<Mutex<_>>` per replica:
/// `Client` pools sockets behind a `RefCell` (deliberately `!Sync`), and
/// the mutex hands each attempt exclusive use while letting detached
/// hedge threads share ownership. Shard threads never block on a hedged
/// loser (attempts are detached), so the scope always joins promptly.
/// Trace context propagates into every hop via a captured
/// [`PropagationHandle`].
fn fan_out<T: Send>(
    topology: &Topology,
    clients: &[Vec<Arc<Mutex<Client>>>],
    query: impl Fn(&Shard, &[Arc<Mutex<Client>>]) -> ShardOutcome<T> + Sync,
) -> Vec<ShardOutcome<T>> {
    let handle = PropagationHandle::capture();
    std::thread::scope(|scope| {
        let joins: Vec<_> = topology
            .shards
            .iter()
            .zip(clients.iter())
            .map(|(shard, shard_clients)| {
                let shard_clients: &[Arc<Mutex<Client>>] = shard_clients;
                let handle = &handle;
                let query = &query;
                scope.spawn(move || handle.scope(|| query(shard, shard_clients)))
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().unwrap_or(ShardOutcome::Unavailable))
            .collect()
    })
}

/// `exact` when empty, the common label when all shards agree, `mixed`
/// otherwise.
fn combine_engines(engines: &[&str]) -> String {
    match engines.split_first() {
        None => "exact".to_string(),
        Some((first, rest)) if rest.iter().all(|e| e == first) => (*first).to_string(),
        _ => "mixed".to_string(),
    }
}

/// Scatters `body` (forwarded verbatim) to one replica per shard, gathers
/// and merges. `clients` is indexed `[shard][replica]`, aligned with
/// `topology.shards`. `deadline` is the end of the routed request's
/// budget: every hop stamps the remaining time into
/// `x-galign-deadline-ms` so shards can shed work the router would throw
/// away anyway.
pub fn scatter_gather(
    topology: &Topology,
    clients: &[Vec<Arc<Mutex<Client>>>],
    body: &str,
    query: &RoutedQuery,
    policy: &HedgePolicy,
    deadline: Option<Instant>,
    recorder: &'static FlightRecorder,
) -> RoutedReply {
    let st = context::stage("scatter");
    let expected = query.nodes.len();
    let outcomes = fan_out(topology, clients, |shard, shard_clients| {
        query_shard(
            shard,
            shard_clients,
            "/v1/align/topk",
            body,
            policy,
            deadline,
            recorder,
            |b| parse_shard_response(b, shard, expected),
        )
    });
    st.finish();

    // A deterministic client error from any shard is the answer for the
    // whole request — forward the first, in shard order.
    for outcome in &outcomes {
        if let ShardOutcome::ClientError { status, body } = outcome {
            return RoutedReply {
                status: *status,
                body: body.clone(),
                partial: false,
                engine: String::new(),
            };
        }
    }

    let st = context::stage("merge");
    let mut partial = false;
    let mut engines: Vec<&str> = Vec::new();
    let mut answers: Vec<&ShardAnswer> = Vec::new();
    for outcome in &outcomes {
        match outcome {
            ShardOutcome::Answer(answer) => {
                engines.push(answer.engine.as_str());
                answers.push(answer);
            }
            ShardOutcome::Unavailable => partial = true,
            ShardOutcome::ClientError { .. } => unreachable!("handled above"),
        }
    }
    let engine = combine_engines(&engines);
    let merged: Vec<Vec<Match>> = (0..expected)
        .map(|i| {
            let mut candidates: Vec<Match> = answers
                .iter()
                .flat_map(|a| a.per_node[i].iter().copied())
                .collect();
            merge_topk(&mut candidates, query.k)
        })
        .collect();
    st.finish();

    if partial {
        galign_telemetry::counter_add("router.scatter.partial", 1);
    }
    let st = context::stage("serialize");
    let body = render_response(&query.nodes, &merged, query.k, &engine, partial);
    st.finish_with(vec![("bytes", body.len().to_string())]);
    RoutedReply {
        status: 200,
        body,
        partial,
        engine,
    }
}

/// Scatters a `/v2` batch envelope (forwarded verbatim) to one replica
/// per shard and merges slot by slot: per-query validation errors keep
/// their slot, answered slots merge exactly like `/v1` queries, and a
/// shard blackout stamps `"partial":true` into every answered slot.
pub fn scatter_gather_batch(
    topology: &Topology,
    clients: &[Vec<Arc<Mutex<Client>>>],
    body: &str,
    batch: &BatchRequest,
    policy: &HedgePolicy,
    deadline: Option<Instant>,
    recorder: &'static FlightRecorder,
) -> RoutedReply {
    let st = context::stage("scatter");
    let outcomes = fan_out(topology, clients, |shard, shard_clients| {
        query_shard(
            shard,
            shard_clients,
            "/v2/align/topk",
            body,
            policy,
            deadline,
            recorder,
            |b| parse_shard_batch_response(b, shard, batch),
        )
    });
    st.finish();

    for outcome in &outcomes {
        if let ShardOutcome::ClientError { status, body } = outcome {
            return RoutedReply {
                status: *status,
                body: body.clone(),
                partial: false,
                engine: String::new(),
            };
        }
    }

    let st = context::stage("merge");
    let mut partial = false;
    let mut answers: Vec<&Vec<Result<SlotAnswer, String>>> = Vec::new();
    for outcome in &outcomes {
        match outcome {
            ShardOutcome::Answer(slots) => answers.push(slots),
            ShardOutcome::Unavailable => partial = true,
            ShardOutcome::ClientError { .. } => unreachable!("handled above"),
        }
    }
    let mut reply_engines: Vec<String> = Vec::new();
    let slots: Vec<QueryOutcome> = batch
        .queries
        .iter()
        .enumerate()
        .map(|(i, query)| {
            let q = match query {
                // The router's parse failure for this slot is what every
                // shard reported too (same shared validation code).
                Err(msg) => return Err(msg.clone()),
                Ok(q) => q,
            };
            let mut engines: Vec<&str> = Vec::new();
            let mut slot_answers: Vec<&SlotAnswer> = Vec::new();
            for shard_slots in &answers {
                match &shard_slots[i] {
                    Ok(answer) => {
                        engines.push(answer.engine.as_str());
                        slot_answers.push(answer);
                    }
                    // A shard-side deterministic rejection of this slot.
                    Err(msg) => return Err(msg.clone()),
                }
            }
            let engine = combine_engines(&engines);
            reply_engines.push(engine.clone());
            let results = q
                .nodes
                .iter()
                .enumerate()
                .map(|(ni, &node)| {
                    let mut candidates: Vec<Match> = slot_answers
                        .iter()
                        .flat_map(|a| a.per_node[ni].iter().copied())
                        .collect();
                    let merged = merge_topk(&mut candidates, q.k);
                    NodeResult {
                        node,
                        matches: Arc::new(
                            merged
                                .into_iter()
                                .map(|m| Hit {
                                    target: m.target,
                                    score: m.score,
                                })
                                .collect(),
                        ),
                    }
                })
                .collect();
            Ok(TopkResponse {
                k: q.k,
                engine,
                partial,
                results,
            })
        })
        .collect();
    st.finish();

    if partial {
        galign_telemetry::counter_add("router.scatter.partial", 1);
    }
    let engine = combine_engines(&reply_engines.iter().map(String::as_str).collect::<Vec<_>>());
    let st = context::stage("serialize");
    let body = api::render_batch(&slots);
    st.finish_with(vec![("bytes", body.len().to_string())]);
    RoutedReply {
        status: 200,
        body,
        partial,
        engine,
    }
}

/// Renders the routed response in exactly the shard servers' format (via
/// the shared [`TopkResponse::render`]), with `"partial":true,` inserted
/// after the engine field only when degraded.
fn render_response(
    nodes: &[usize],
    merged: &[Vec<Match>],
    k: usize,
    engine: &str,
    partial: bool,
) -> String {
    TopkResponse {
        k,
        engine: engine.to_string(),
        partial,
        results: nodes
            .iter()
            .zip(merged)
            .map(|(&node, matches)| NodeResult {
                node,
                matches: Arc::new(
                    matches
                        .iter()
                        .map(|m| Hit {
                            target: m.target,
                            score: m.score,
                        })
                        .collect(),
                ),
            })
            .collect(),
    }
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::simblock::select_topk_bruteforce;

    #[test]
    fn merge_matches_full_scan_including_ties() {
        // A synthetic score vector with duplicate scores spanning a shard
        // boundary at id 4: the merged selection must keep the full
        // scan's tie order (ascending global id).
        let scores = [0.5, 0.9, 0.9, 0.1, 0.9, 0.3, 0.9, 0.2, 0.05];
        for k in 1..=scores.len() + 2 {
            let reference: Vec<(usize, f64)> = select_topk_bruteforce(&scores, k)
                .into_iter()
                .map(|h| (h.target, h.score))
                .collect();
            // Split into shards [0,4) and [4,9); each shard contributes
            // its local top-k translated to global ids — delivered here
            // in the (arbitrary) order shard1-then-shard0 to prove the
            // pre-merge sort does its job.
            let mut candidates = Vec::new();
            for (start, end) in [(4, 9), (0, 4)] {
                let local: Vec<f64> = scores[start..end].to_vec();
                for hit in select_topk(&local, k) {
                    candidates.push(Match {
                        target: start + hit.target,
                        score: hit.score,
                    });
                }
            }
            let merged: Vec<(usize, f64)> = merge_topk(&mut candidates, k)
                .into_iter()
                .map(|m| (m.target, m.score))
                .collect();
            assert_eq!(merged, reference, "k={k}");
        }
    }

    #[test]
    fn parse_routed_query_mirrors_server_rules() {
        let q = parse_routed_query(br#"{"nodes":[3,1],"k":7}"#, 10, 100).unwrap();
        assert_eq!((q.nodes, q.k), (vec![3, 1], 7));
        let q = parse_routed_query(br#"{"node":2}"#, 10, 100).unwrap();
        assert_eq!((q.nodes, q.k), (vec![2], 10));
        assert!(parse_routed_query(b"nope", 10, 100).is_err());
        assert!(parse_routed_query(br#"{"nodes":[]}"#, 10, 100).is_err());
        assert!(parse_routed_query(br#"{"nodes":[0],"k":0}"#, 10, 100).is_err());
        assert!(parse_routed_query(br#"{"nodes":[0],"k":101}"#, 10, 100).is_err());
    }

    #[test]
    fn parse_routed_batch_isolates_slot_errors() {
        let batch =
            parse_routed_batch(br#"{"queries":[{"node":1},{"nodes":[],"k":2}]}"#, 10, 100).unwrap();
        assert_eq!(batch.queries.len(), 2);
        assert!(batch.queries[0].is_ok());
        assert!(batch.queries[1].as_ref().unwrap_err().contains("empty"));
        // Envelope-level problems fail the whole request.
        assert!(parse_routed_batch(br#"{"node":1}"#, 10, 100)
            .unwrap_err()
            .contains("queries"));
    }

    #[test]
    fn translate_rejects_out_of_range_and_wrong_arity() {
        let resp = TopkResponse::from_body(
            br#"{"k":1,"engine":"exact","results":[{"node":0,"matches":[{"target":3,"score":0.5}]}]}"#,
        )
        .unwrap();
        // Shard [10, 14): local id 3 is the last valid row → global 13.
        let per_node = translate_response(&resp, 10, 4, 1).unwrap();
        assert_eq!(
            per_node,
            vec![vec![Match {
                target: 13,
                score: 0.5
            }]]
        );
        assert!(translate_response(&resp, 10, 3, 1)
            .unwrap_err()
            .contains("out of range"));
        assert!(translate_response(&resp, 10, 4, 2)
            .unwrap_err()
            .contains("expected 2"));
    }

    #[test]
    fn render_inserts_partial_after_engine() {
        let merged = vec![vec![Match {
            target: 7,
            score: 0.25,
        }]];
        let full = render_response(&[0], &merged, 1, "exact", false);
        assert_eq!(
            full,
            r#"{"k":1,"engine":"exact","results":[{"node":0,"matches":[{"target":7,"score":0.25}]}]}"#
        );
        let partial = render_response(&[0], &merged, 1, "exact", true);
        assert_eq!(
            partial,
            r#"{"k":1,"engine":"exact","partial":true,"results":[{"node":0,"matches":[{"target":7,"score":0.25}]}]}"#
        );
    }
}
