//! The scatter-gather core: fan a top-k query out to one replica per
//! shard, merge the per-shard heaps through the shared `select_topk` tie
//! contract, and render a response byte-identical to what a single
//! unsharded `galign-serve` node would have produced. Both wire shapes
//! route through here: `/v1/align/topk` (one query) and `/v2/align/topk`
//! (a `queries` batch, merged slot by slot).
//!
//! Parsing and rendering go through `galign_serve::api` — the same typed
//! schema the shard servers use — so the router cannot drift from the
//! fleet's validation rules or serialization bytes.
//!
//! ## Why the merge is exact
//!
//! Scoring is per-(query, target) pair — `SimPanel` accumulates the
//! θ-weighted layer products for one pair independently of every other
//! target row — so slicing the target matrix across shards changes *no
//! score bits*. Each shard returns its local top-k under the global tie
//! contract (descending score, ties by ascending target id), and any
//! member of the global top-k is necessarily in its own shard's local
//! top-k. Gather therefore only has to re-select over the union of the
//! per-shard candidates: candidates are collected as `(global_id, score)`
//! pairs, sorted ascending by global id, and pushed through the very same
//! [`select_topk`] used by the exact scan — ascending candidate order
//! makes "ascending index" coincide with "ascending global id", so the
//! tie-break resolves exactly as the full scan's would. Scores travel as
//! JSON through `fmt_f64`, which is round-trip exact for every finite
//! `f64`.
//!
//! ## Degradation
//!
//! A shard whose every replica fails yields a response with
//! `"partial": true` inserted after the `"engine"` field and the missing
//! shard's candidates absent — a *labelled* under-answer, never a silent
//! wrong one. (In a `/v2` batch the marker lands inside every answered
//! slot.) Replicas are tried healthy-first, with unhealthy ones kept as a
//! last resort so a recovered node heals the rotation organically.

use crate::topology::{Shard, Topology};
use galign_matrix::simblock::select_topk;
use galign_serve::api::{
    self, BatchRequest, Hit, NodeResult, QueryOutcome, RequestDefaults, TopkRequest, TopkResponse,
};
use galign_serve::client::Client;
use galign_serve::json;
use galign_serve::topk::EngineMode;
use galign_telemetry::context::{self, PropagationHandle};
use galign_telemetry::failpoint::{self, Action};
use galign_telemetry::flight::{FlightRecorder, RecordKind, TraceRecord};
use std::sync::Arc;
use std::time::Instant;

/// One merged match (global target id + exact score).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Target id in the parent (unsharded) artifact.
    pub target: usize,
    /// Exact θ-weighted score (bit-identical to the single-node scan).
    pub score: f64,
}

/// One shard's answer to a single query: per-query-node matches already
/// translated to global target ids, plus the engine it used.
struct ShardAnswer {
    engine: String,
    per_node: Vec<Vec<Match>>,
}

/// One shard's answer to one slot of a `/v2` batch. A slot can fail on
/// its own (a per-query validation error) without failing its siblings.
struct SlotAnswer {
    engine: String,
    per_node: Vec<Vec<Match>>,
}

/// What querying one shard produced, generic over the answer payload
/// (`ShardAnswer` for `/v1`, per-slot outcomes for `/v2`).
enum ShardOutcome<T> {
    /// A parsed, validated answer.
    Answer(T),
    /// The shard rejected the request as malformed — deterministic across
    /// shards, so the first one is returned to the caller verbatim.
    ClientError { status: u16, body: String },
    /// Every replica of the shard failed.
    Unavailable,
}

/// A fully merged routed reply.
pub struct RoutedReply {
    /// HTTP status (200 for merged answers, the shard's own status for
    /// forwarded client errors).
    pub status: u16,
    /// Response body; for 200s byte-identical to a single node's unless
    /// `partial`.
    pub body: String,
    /// Whether at least one shard was unavailable.
    pub partial: bool,
    /// Engine label reported in the body (`exact`, `ann`, or `mixed`).
    pub engine: String,
}

/// The merge-relevant projection of a routed query: node count and `k`.
/// The *body bytes are forwarded to the shards verbatim* — the router
/// never re-serializes θ or anything else, so nothing can drift.
pub struct RoutedQuery {
    /// Number of query nodes (response `results` arity).
    pub nodes: Vec<usize>,
    /// Effective k after defaulting.
    pub k: usize,
}

/// The [`RequestDefaults`] a router applies; must match the shard fleet's
/// configuration for routed responses to agree with a single node's.
fn defaults(default_k: usize, max_k: usize) -> RequestDefaults {
    RequestDefaults {
        default_k,
        max_k,
        default_mode: EngineMode::Auto,
    }
}

/// Parses a routed `/v1` query through the shared server-side rules
/// ([`TopkRequest::from_body`]), so the router rejects exactly what a
/// shard would, with the same message.
///
/// # Errors
/// A human-readable message, rendered as the router's own `400`.
pub fn parse_routed_query(
    body: &[u8],
    default_k: usize,
    max_k: usize,
) -> Result<RoutedQuery, String> {
    let req = TopkRequest::from_body(body, &defaults(default_k, max_k))?;
    Ok(RoutedQuery {
        nodes: req.nodes,
        k: req.k,
    })
}

/// Parses a routed `/v2` batch envelope through the shared rules
/// ([`BatchRequest::from_body`]). Per-query failures stay in their slot;
/// only envelope-level problems error here.
///
/// # Errors
/// Envelope-level problems, rendered as the router's own `400`.
pub fn parse_routed_batch(
    body: &[u8],
    default_k: usize,
    max_k: usize,
) -> Result<BatchRequest, String> {
    BatchRequest::from_body(body, &defaults(default_k, max_k))
}

/// Validates one response document against the shard's identity and
/// translates shard-local target ids to global ids.
fn translate_response(
    resp: &TopkResponse,
    start: usize,
    rows: usize,
    expected_nodes: usize,
) -> Result<Vec<Vec<Match>>, String> {
    if resp.results.len() != expected_nodes {
        return Err(format!(
            "shard answered {} nodes, expected {expected_nodes}",
            resp.results.len()
        ));
    }
    let mut per_node = Vec::with_capacity(resp.results.len());
    for entry in &resp.results {
        let mut out = Vec::with_capacity(entry.matches.len());
        for hit in entry.matches.iter() {
            if hit.target >= rows {
                return Err(format!(
                    "shard-local target {} out of range for {rows} rows",
                    hit.target
                ));
            }
            out.push(Match {
                target: start + hit.target,
                score: hit.score,
            });
        }
        per_node.push(out);
    }
    Ok(per_node)
}

/// Parses one shard's `/v1/align/topk` response body into global-id
/// matches, validating arity and id ranges against the shard identity.
fn parse_shard_response(
    body: &str,
    shard: &Shard,
    expected_nodes: usize,
) -> Result<ShardAnswer, String> {
    let resp = TopkResponse::from_body(body.as_bytes())?;
    let rows = shard.identity.end - shard.identity.start;
    let per_node = translate_response(&resp, shard.identity.start, rows, expected_nodes)?;
    Ok(ShardAnswer {
        engine: resp.engine,
        per_node,
    })
}

/// Parses one shard's `/v2/align/topk` response envelope into per-slot
/// outcomes. Slots the router itself failed to parse keep the router's
/// own (identical, since the validation code is shared) error message;
/// answered slots are validated and translated like `/v1` responses. Any
/// structural mismatch fails the whole hop.
fn parse_shard_batch_response(
    body: &str,
    shard: &Shard,
    batch: &BatchRequest,
) -> Result<Vec<Result<SlotAnswer, String>>, String> {
    let doc = json::parse(body).map_err(|e| format!("unparseable shard response: {e}"))?;
    let outcomes = api::parse_batch_response(&doc)?;
    if outcomes.len() != batch.queries.len() {
        return Err(format!(
            "shard answered {} queries, expected {}",
            outcomes.len(),
            batch.queries.len()
        ));
    }
    let start = shard.identity.start;
    let rows = shard.identity.end - start;
    batch
        .queries
        .iter()
        .zip(outcomes)
        .map(|(query, outcome)| match (query, outcome) {
            // The router's own parse failure is deterministic and uses
            // the exact validation code the shard ran; keep ours.
            (Err(msg), _) => Ok(Err(msg.clone())),
            // The shard rejected a query the router accepted (mismatched
            // fleet config, e.g. a lower max_k): a deterministic per-slot
            // rejection, forwarded as that slot's error.
            (Ok(_), Err(msg)) => Ok(Err(msg)),
            (Ok(q), Ok(resp)) => {
                let per_node = translate_response(&resp, start, rows, q.nodes.len())?;
                Ok(Ok(SlotAnswer {
                    engine: resp.engine,
                    per_node,
                }))
            }
        })
        .collect()
}

/// Merges per-shard candidate lists for one query node through the
/// shared `select_topk` tie contract.
///
/// Candidates are sorted ascending by global id before selection so that
/// `select_topk`'s "ties by ascending index" resolves identically to the
/// single-node full scan, where index *is* global id.
pub fn merge_topk(candidates: &mut [Match], k: usize) -> Vec<Match> {
    candidates.sort_unstable_by_key(|m| m.target);
    let scores: Vec<f64> = candidates.iter().map(|m| m.score).collect();
    select_topk(&scores, k)
        .into_iter()
        .map(|hit| Match {
            target: candidates[hit.target].target,
            score: hit.score,
        })
        .collect()
}

/// Queries one shard, trying replicas healthy-first and failing over on
/// transport errors, 5xx, and 200s that fail `parse`. Returns the first
/// definitive outcome.
fn query_shard<T>(
    shard: &Shard,
    clients: &[Client],
    path: &str,
    body: &str,
    recorder: &FlightRecorder,
    parse: impl Fn(&str) -> Result<T, String>,
) -> ShardOutcome<T> {
    let mut order: Vec<usize> = (0..shard.replicas.len()).collect();
    // Healthy-first, stable: config order is the tie-break, unhealthy
    // replicas stay reachable as a last resort (that retry is how they
    // heal).
    order.sort_by_key(|&i| !shard.replicas[i].is_healthy());
    let shard_label = shard.identity.shard_id;
    let mut tried = 0u64;
    for idx in order {
        let replica = &shard.replicas[idx];
        let client = &clients[idx];
        tried += 1;
        // Failpoint `router.scatter`: a `trigger` action fails this hop
        // before it is sent (simulated replica blackout); `delay(ms)`
        // stalls it. Used by the replica-kill suite. Only the first
        // choice per shard query is eligible, so one trigger charge
        // exercises failover rather than blacking out the whole shard.
        if tried == 1 {
            if let Some(Action::Trigger(_)) = failpoint::eval("router.scatter") {
                replica.set_healthy(false);
                galign_telemetry::counter_add("router.hop.failpoint_faults", 1);
                continue;
            }
        }
        let hop_started = Instant::now();
        let outcome = client.post_json(path, body);
        let hop_us = hop_started.elapsed().as_micros() as u64;
        galign_telemetry::histogram_record("router.hop.ms", hop_us as f64 / 1e3);
        galign_telemetry::counter_add(&format!("router.shard{shard_label}.hops"), 1);
        let status = match &outcome {
            Ok(resp) => resp.status,
            Err(_) => 0,
        };
        record_hop(recorder, shard_label, &replica.addr, status, hop_us);
        match outcome {
            Ok(resp) if resp.status == 200 => match parse(&resp.body_str()) {
                Ok(answer) => {
                    replica.set_healthy(true);
                    if tried > 1 {
                        galign_telemetry::counter_add(
                            &format!("router.shard{shard_label}.failovers"),
                            1,
                        );
                    }
                    return ShardOutcome::Answer(answer);
                }
                Err(msg) => {
                    // A 200 we cannot trust is a failed hop, not an
                    // answer.
                    galign_telemetry::info!(
                        "router",
                        "shard {shard_label} replica {}: {msg}",
                        replica.addr
                    );
                    replica.set_healthy(false);
                }
            },
            Ok(resp) if (400..500).contains(&resp.status) => {
                // The replica is alive and the request itself is bad —
                // deterministic across the fleet, so no failover.
                replica.set_healthy(true);
                return ShardOutcome::ClientError {
                    status: resp.status,
                    body: resp.body_str(),
                };
            }
            Ok(_) | Err(_) => {
                replica.set_healthy(false);
                galign_telemetry::counter_add("router.hop.failures", 1);
            }
        }
    }
    galign_telemetry::counter_add(&format!("router.shard{shard_label}.unavailable"), 1);
    ShardOutcome::Unavailable
}

fn record_hop(recorder: &FlightRecorder, shard_id: usize, addr: &str, status: u16, hop_us: u64) {
    recorder.record(TraceRecord {
        trace_id: context::current_trace_id().unwrap_or(galign_telemetry::context::TraceId(0)),
        kind: RecordKind::Hop,
        name: format!("shard{shard_id} {addr}"),
        status,
        engine: String::new(),
        end_ms: galign_telemetry::clock_ms(),
        total_us: hop_us,
        events: Vec::new(),
        notes: Vec::new(),
        fields: Vec::new(),
    });
}

/// Fans one query-per-shard out on scoped threads, one replica set per
/// thread (`Client` pools sockets behind a `RefCell`, so it is `Send` but
/// not `Sync` — each shard's clients are handed over exclusively), and
/// gathers the outcomes in shard order. Trace context propagates into
/// every hop via a captured [`PropagationHandle`].
fn fan_out<T: Send>(
    topology: &Topology,
    clients: &mut [Vec<Client>],
    query: impl Fn(&Shard, &[Client]) -> ShardOutcome<T> + Sync,
) -> Vec<ShardOutcome<T>> {
    let handle = PropagationHandle::capture();
    std::thread::scope(|scope| {
        let joins: Vec<_> = topology
            .shards
            .iter()
            .zip(clients.iter_mut())
            .map(|(shard, shard_clients)| {
                let shard_clients: &mut Vec<Client> = shard_clients;
                let handle = &handle;
                let query = &query;
                scope.spawn(move || handle.scope(|| query(shard, shard_clients)))
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().unwrap_or(ShardOutcome::Unavailable))
            .collect()
    })
}

/// `exact` when empty, the common label when all shards agree, `mixed`
/// otherwise.
fn combine_engines(engines: &[&str]) -> String {
    match engines.split_first() {
        None => "exact".to_string(),
        Some((first, rest)) if rest.iter().all(|e| e == first) => (*first).to_string(),
        _ => "mixed".to_string(),
    }
}

/// Scatters `body` (forwarded verbatim) to one replica per shard, gathers
/// and merges. `clients` is indexed `[shard][replica]`, aligned with
/// `topology.shards`.
pub fn scatter_gather(
    topology: &Topology,
    clients: &mut [Vec<Client>],
    body: &str,
    query: &RoutedQuery,
    recorder: &FlightRecorder,
) -> RoutedReply {
    let st = context::stage("scatter");
    let expected = query.nodes.len();
    let outcomes = fan_out(topology, clients, |shard, shard_clients| {
        query_shard(
            shard,
            shard_clients,
            "/v1/align/topk",
            body,
            recorder,
            |b| parse_shard_response(b, shard, expected),
        )
    });
    st.finish();

    // A deterministic client error from any shard is the answer for the
    // whole request — forward the first, in shard order.
    for outcome in &outcomes {
        if let ShardOutcome::ClientError { status, body } = outcome {
            return RoutedReply {
                status: *status,
                body: body.clone(),
                partial: false,
                engine: String::new(),
            };
        }
    }

    let st = context::stage("merge");
    let mut partial = false;
    let mut engines: Vec<&str> = Vec::new();
    let mut answers: Vec<&ShardAnswer> = Vec::new();
    for outcome in &outcomes {
        match outcome {
            ShardOutcome::Answer(answer) => {
                engines.push(answer.engine.as_str());
                answers.push(answer);
            }
            ShardOutcome::Unavailable => partial = true,
            ShardOutcome::ClientError { .. } => unreachable!("handled above"),
        }
    }
    let engine = combine_engines(&engines);
    let merged: Vec<Vec<Match>> = (0..expected)
        .map(|i| {
            let mut candidates: Vec<Match> = answers
                .iter()
                .flat_map(|a| a.per_node[i].iter().copied())
                .collect();
            merge_topk(&mut candidates, query.k)
        })
        .collect();
    st.finish();

    if partial {
        galign_telemetry::counter_add("router.scatter.partial", 1);
    }
    let st = context::stage("serialize");
    let body = render_response(&query.nodes, &merged, query.k, &engine, partial);
    st.finish_with(vec![("bytes", body.len().to_string())]);
    RoutedReply {
        status: 200,
        body,
        partial,
        engine,
    }
}

/// Scatters a `/v2` batch envelope (forwarded verbatim) to one replica
/// per shard and merges slot by slot: per-query validation errors keep
/// their slot, answered slots merge exactly like `/v1` queries, and a
/// shard blackout stamps `"partial":true` into every answered slot.
pub fn scatter_gather_batch(
    topology: &Topology,
    clients: &mut [Vec<Client>],
    body: &str,
    batch: &BatchRequest,
    recorder: &FlightRecorder,
) -> RoutedReply {
    let st = context::stage("scatter");
    let outcomes = fan_out(topology, clients, |shard, shard_clients| {
        query_shard(
            shard,
            shard_clients,
            "/v2/align/topk",
            body,
            recorder,
            |b| parse_shard_batch_response(b, shard, batch),
        )
    });
    st.finish();

    for outcome in &outcomes {
        if let ShardOutcome::ClientError { status, body } = outcome {
            return RoutedReply {
                status: *status,
                body: body.clone(),
                partial: false,
                engine: String::new(),
            };
        }
    }

    let st = context::stage("merge");
    let mut partial = false;
    let mut answers: Vec<&Vec<Result<SlotAnswer, String>>> = Vec::new();
    for outcome in &outcomes {
        match outcome {
            ShardOutcome::Answer(slots) => answers.push(slots),
            ShardOutcome::Unavailable => partial = true,
            ShardOutcome::ClientError { .. } => unreachable!("handled above"),
        }
    }
    let mut reply_engines: Vec<String> = Vec::new();
    let slots: Vec<QueryOutcome> = batch
        .queries
        .iter()
        .enumerate()
        .map(|(i, query)| {
            let q = match query {
                // The router's parse failure for this slot is what every
                // shard reported too (same shared validation code).
                Err(msg) => return Err(msg.clone()),
                Ok(q) => q,
            };
            let mut engines: Vec<&str> = Vec::new();
            let mut slot_answers: Vec<&SlotAnswer> = Vec::new();
            for shard_slots in &answers {
                match &shard_slots[i] {
                    Ok(answer) => {
                        engines.push(answer.engine.as_str());
                        slot_answers.push(answer);
                    }
                    // A shard-side deterministic rejection of this slot.
                    Err(msg) => return Err(msg.clone()),
                }
            }
            let engine = combine_engines(&engines);
            reply_engines.push(engine.clone());
            let results = q
                .nodes
                .iter()
                .enumerate()
                .map(|(ni, &node)| {
                    let mut candidates: Vec<Match> = slot_answers
                        .iter()
                        .flat_map(|a| a.per_node[ni].iter().copied())
                        .collect();
                    let merged = merge_topk(&mut candidates, q.k);
                    NodeResult {
                        node,
                        matches: Arc::new(
                            merged
                                .into_iter()
                                .map(|m| Hit {
                                    target: m.target,
                                    score: m.score,
                                })
                                .collect(),
                        ),
                    }
                })
                .collect();
            Ok(TopkResponse {
                k: q.k,
                engine,
                partial,
                results,
            })
        })
        .collect();
    st.finish();

    if partial {
        galign_telemetry::counter_add("router.scatter.partial", 1);
    }
    let engine = combine_engines(&reply_engines.iter().map(String::as_str).collect::<Vec<_>>());
    let st = context::stage("serialize");
    let body = api::render_batch(&slots);
    st.finish_with(vec![("bytes", body.len().to_string())]);
    RoutedReply {
        status: 200,
        body,
        partial,
        engine,
    }
}

/// Renders the routed response in exactly the shard servers' format (via
/// the shared [`TopkResponse::render`]), with `"partial":true,` inserted
/// after the engine field only when degraded.
fn render_response(
    nodes: &[usize],
    merged: &[Vec<Match>],
    k: usize,
    engine: &str,
    partial: bool,
) -> String {
    TopkResponse {
        k,
        engine: engine.to_string(),
        partial,
        results: nodes
            .iter()
            .zip(merged)
            .map(|(&node, matches)| NodeResult {
                node,
                matches: Arc::new(
                    matches
                        .iter()
                        .map(|m| Hit {
                            target: m.target,
                            score: m.score,
                        })
                        .collect(),
                ),
            })
            .collect(),
    }
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::simblock::select_topk_bruteforce;

    #[test]
    fn merge_matches_full_scan_including_ties() {
        // A synthetic score vector with duplicate scores spanning a shard
        // boundary at id 4: the merged selection must keep the full
        // scan's tie order (ascending global id).
        let scores = [0.5, 0.9, 0.9, 0.1, 0.9, 0.3, 0.9, 0.2, 0.05];
        for k in 1..=scores.len() + 2 {
            let reference: Vec<(usize, f64)> = select_topk_bruteforce(&scores, k)
                .into_iter()
                .map(|h| (h.target, h.score))
                .collect();
            // Split into shards [0,4) and [4,9); each shard contributes
            // its local top-k translated to global ids — delivered here
            // in the (arbitrary) order shard1-then-shard0 to prove the
            // pre-merge sort does its job.
            let mut candidates = Vec::new();
            for (start, end) in [(4, 9), (0, 4)] {
                let local: Vec<f64> = scores[start..end].to_vec();
                for hit in select_topk(&local, k) {
                    candidates.push(Match {
                        target: start + hit.target,
                        score: hit.score,
                    });
                }
            }
            let merged: Vec<(usize, f64)> = merge_topk(&mut candidates, k)
                .into_iter()
                .map(|m| (m.target, m.score))
                .collect();
            assert_eq!(merged, reference, "k={k}");
        }
    }

    #[test]
    fn parse_routed_query_mirrors_server_rules() {
        let q = parse_routed_query(br#"{"nodes":[3,1],"k":7}"#, 10, 100).unwrap();
        assert_eq!((q.nodes, q.k), (vec![3, 1], 7));
        let q = parse_routed_query(br#"{"node":2}"#, 10, 100).unwrap();
        assert_eq!((q.nodes, q.k), (vec![2], 10));
        assert!(parse_routed_query(b"nope", 10, 100).is_err());
        assert!(parse_routed_query(br#"{"nodes":[]}"#, 10, 100).is_err());
        assert!(parse_routed_query(br#"{"nodes":[0],"k":0}"#, 10, 100).is_err());
        assert!(parse_routed_query(br#"{"nodes":[0],"k":101}"#, 10, 100).is_err());
    }

    #[test]
    fn parse_routed_batch_isolates_slot_errors() {
        let batch =
            parse_routed_batch(br#"{"queries":[{"node":1},{"nodes":[],"k":2}]}"#, 10, 100).unwrap();
        assert_eq!(batch.queries.len(), 2);
        assert!(batch.queries[0].is_ok());
        assert!(batch.queries[1].as_ref().unwrap_err().contains("empty"));
        // Envelope-level problems fail the whole request.
        assert!(parse_routed_batch(br#"{"node":1}"#, 10, 100)
            .unwrap_err()
            .contains("queries"));
    }

    #[test]
    fn translate_rejects_out_of_range_and_wrong_arity() {
        let resp = TopkResponse::from_body(
            br#"{"k":1,"engine":"exact","results":[{"node":0,"matches":[{"target":3,"score":0.5}]}]}"#,
        )
        .unwrap();
        // Shard [10, 14): local id 3 is the last valid row → global 13.
        let per_node = translate_response(&resp, 10, 4, 1).unwrap();
        assert_eq!(
            per_node,
            vec![vec![Match {
                target: 13,
                score: 0.5
            }]]
        );
        assert!(translate_response(&resp, 10, 3, 1)
            .unwrap_err()
            .contains("out of range"));
        assert!(translate_response(&resp, 10, 4, 2)
            .unwrap_err()
            .contains("expected 2"));
    }

    #[test]
    fn render_inserts_partial_after_engine() {
        let merged = vec![vec![Match {
            target: 7,
            score: 0.25,
        }]];
        let full = render_response(&[0], &merged, 1, "exact", false);
        assert_eq!(
            full,
            r#"{"k":1,"engine":"exact","results":[{"node":0,"matches":[{"target":7,"score":0.25}]}]}"#
        );
        let partial = render_response(&[0], &merged, 1, "exact", true);
        assert_eq!(
            partial,
            r#"{"k":1,"engine":"exact","partial":true,"results":[{"node":0,"matches":[{"target":7,"score":0.25}]}]}"#
        );
    }
}
