//! The router's HTTP front: a bounded worker pool (same shape as
//! `galign_serve::server`) whose workers each own one retrying client
//! per replica, scattering every top-k query across the shard fleet.
//!
//! ## Endpoints
//!
//! | method | path                 | purpose                                 |
//! |--------|----------------------|-----------------------------------------|
//! | POST   | `/v1/align/topk`     | routed top-k (body forwarded to shards) |
//! | POST   | `/v2/align/topk`     | routed batch top-k, merged slot by slot |
//! | GET    | `/healthz`           | router + per-shard replica health       |
//! | GET    | `/metrics`           | telemetry snapshot (JSON / Prometheus)  |
//! | GET    | `/v1/debug/requests` | flight recorder (requests + hops)       |
//! | POST   | `/v1/admin/shutdown` | graceful shutdown                       |
//!
//! One trace id spans the routed request and all of its shard hops: the
//! router honors/assigns `x-galign-trace-id` exactly like a shard node,
//! propagates it to every hop through the clients, and records each hop
//! as a [`RecordKind::Hop`] entry in the flight recorder next to the
//! routed request itself.
//!
//! Health: `/healthz` reports `degraded` while any shard has zero
//! healthy replicas — the state in which answers carry
//! `"partial": true` — and lists every replica's circuit-breaker state.
//! Keep-alive follows the shard servers' contract (opt-in,
//! fairness-gated idle linger).
//!
//! Tail tolerance: every routed hop runs under the [`RouterConfig`]'s
//! hedge policy (slow hops race the next replica), replica eligibility
//! is breaker-gated, a background loop re-probes tripped replicas every
//! [`RouterConfig::reprobe_interval`], and each hop carries the routed
//! request's remaining deadline budget so shards shed doomed work.

use crate::breaker::BreakerConfig;
use crate::scatter::{
    parse_routed_batch, parse_routed_query, scatter_gather, scatter_gather_batch, HedgePolicy,
    RoutedReply,
};
use crate::topology::Topology;
use galign_serve::api::error_body;
use galign_serve::client::{Client, ClientConfig};
use galign_serve::http::{self, ReadOutcome, Request};
use galign_telemetry::context::{self, TraceContext, TraceId};
use galign_telemetry::flight::{self, FlightRecorder, RecordKind, TraceRecord};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Trace-id header, shared with the shard tier.
pub use galign_serve::server::TRACE_HEADER;

/// Router tunables.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Worker threads handling routed requests (each owns its own client
    /// set, so workers never contend on sockets).
    pub workers: usize,
    /// Per-request socket read/write timeout on the router's own front.
    pub request_timeout: Duration,
    /// Bound on connections waiting for a free worker; excess is shed
    /// with `503` + `Retry-After`.
    pub queue_depth: usize,
    /// `Retry-After` seconds attached to shed 503s.
    pub retry_after_secs: u64,
    /// `k` used when a query omits it — must match the shard fleet's.
    pub default_k: usize,
    /// Largest accepted `k` — must match the shard fleet's.
    pub max_k: usize,
    /// Idle linger for keep-alive connections (fairness-gated, as on the
    /// shard servers).
    pub keep_alive_idle: Duration,
    /// Retry/backoff policy of the per-replica clients. Failover across
    /// replicas multiplies with this client's own retries; keep
    /// `max_retries` small for fast failover.
    pub client: ClientConfig,
    /// Static hedge delay: how long a shard hop may be in flight before
    /// it is raced against the next replica. `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Derive the hedge delay from the observed `router.hop.ms` p99 once
    /// the histogram has warmed up, using `hedge_after` as the cold
    /// fallback.
    pub hedge_adaptive: bool,
    /// Fraction of hop traffic that may be hedges (token-bucket earn
    /// rate; `<= 0` removes the meter).
    pub hedge_budget_ratio: f64,
    /// Hedge token-bucket burst ceiling (and initial balance).
    pub hedge_budget_cap: f64,
    /// Per-replica circuit-breaker tunables.
    pub breaker: BreakerConfig,
    /// How often the background loop re-probes tripped replicas; `None`
    /// leaves healing to live traffic alone.
    pub reprobe_interval: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            workers: 4,
            request_timeout: Duration::from_secs(10),
            queue_depth: 64,
            retry_after_secs: 1,
            default_k: 10,
            max_k: 1000,
            keep_alive_idle: Duration::from_millis(250),
            client: ClientConfig {
                max_retries: 1,
                ..ClientConfig::default()
            },
            hedge_after: Some(Duration::from_millis(50)),
            hedge_adaptive: true,
            hedge_budget_ratio: 0.1,
            hedge_budget_cap: 10.0,
            breaker: BreakerConfig::default(),
            reprobe_interval: Some(Duration::from_millis(500)),
        }
    }
}

struct Inner {
    topology: Topology,
    cfg: RouterConfig,
    policy: HedgePolicy,
    addr: SocketAddr,
    shutting_down: AtomicBool,
    pending: AtomicU64,
    in_flight: AtomicU64,
    shed_total: AtomicU64,
    flight: &'static FlightRecorder,
}

struct CounterGuard<'a>(&'a AtomicU64);

impl Drop for CounterGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A bound (not yet running) router.
pub struct Router {
    inner: Arc<Inner>,
    listener: TcpListener,
}

/// Handle to a router running on a background thread.
pub struct RouterHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    join: JoinHandle<io::Result<()>>,
}

impl Router {
    /// Binds `addr` in front of a validated topology. Resolves every
    /// replica address once up front so worker threads cannot fail later.
    ///
    /// # Errors
    /// Bind failures or unresolvable replica addresses.
    pub fn bind(addr: &str, topology: Topology, cfg: RouterConfig) -> io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        galign_telemetry::set_metrics_enabled(true);
        for shard in &topology.shards {
            for replica in &shard.replicas {
                Client::with_config(&replica.addr, cfg.client.clone())?;
            }
        }
        galign_telemetry::info!(
            "router",
            "routing on {local}: {} shards over {} targets ({} replicas total, {} workers)",
            topology.shards.len(),
            topology.parent_targets,
            topology
                .shards
                .iter()
                .map(|s| s.replicas.len())
                .sum::<usize>(),
            cfg.workers.max(1),
        );
        // The topology's breakers were created at discovery with default
        // tunables; impose this router's configuration on them.
        topology.configure_breakers(cfg.breaker);
        let policy = HedgePolicy::new(
            cfg.hedge_after,
            cfg.hedge_adaptive,
            cfg.hedge_budget_ratio,
            cfg.hedge_budget_cap,
            cfg.client.clone(),
        );
        Ok(Router {
            inner: Arc::new(Inner {
                topology,
                cfg,
                policy,
                addr: local,
                shutting_down: AtomicBool::new(false),
                pending: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
                shed_total: AtomicU64::new(0),
                flight: flight::global(),
            }),
            listener,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Runs the accept loop until graceful shutdown; workers joined on
    /// return.
    ///
    /// # Errors
    /// Fatal listener failures.
    pub fn run(self) -> io::Result<()> {
        let workers = self.inner.cfg.workers.max(1);
        let queue_depth = self.inner.cfg.queue_depth.max(1);
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers + 1);
        for seed in 0..workers {
            let rx = Arc::clone(&rx);
            let inner = Arc::clone(&self.inner);
            pool.push(std::thread::spawn(move || {
                // Per-worker clients, [shard][replica]. `Client` is
                // deliberately single-threaded (pooled socket + jitter
                // cells); the mutex hands each attempt exclusive use while
                // letting detached hedge threads share ownership. Jitter
                // seeds vary per worker so backoffs do not march in step.
                let clients: Vec<Vec<Arc<Mutex<Client>>>> = inner
                    .topology
                    .shards
                    .iter()
                    .map(|s| {
                        s.replicas
                            .iter()
                            .map(|r| {
                                let cfg = ClientConfig {
                                    jitter_seed: inner.cfg.client.jitter_seed + seed as u64,
                                    ..inner.cfg.client.clone()
                                };
                                Arc::new(Mutex::new(
                                    Client::with_config(&r.addr, cfg)
                                        .expect("replica address resolved at bind"),
                                ))
                            })
                            .collect()
                    })
                    .collect();
                loop {
                    let stream = rx.lock().expect("worker queue lock").recv();
                    match stream {
                        Ok(stream) => {
                            inner.pending.fetch_sub(1, Ordering::Relaxed);
                            handle_connection(&inner, &clients, stream);
                        }
                        Err(_) => break,
                    }
                }
            }));
        }
        if let Some(interval) = self.inner.cfg.reprobe_interval {
            let inner = Arc::clone(&self.inner);
            pool.push(std::thread::spawn(move || {
                // Background re-probe loop: heals tripped replicas even
                // when no live traffic would retry them. Probes are
                // single-shot (no client retries) — the breaker's own
                // cadence is the retry policy.
                let probe_cfg = ClientConfig {
                    max_retries: 0,
                    ..inner.cfg.client.clone()
                };
                let tick = Duration::from_millis(50).min(interval.max(Duration::from_millis(1)));
                let mut since_probe = Duration::ZERO;
                while !inner.shutting_down.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    since_probe += tick;
                    if since_probe >= interval {
                        since_probe = Duration::ZERO;
                        inner.topology.reprobe(&probe_cfg);
                    }
                }
            }));
        }
        for stream in self.listener.incoming() {
            if self.inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    self.inner.pending.fetch_add(1, Ordering::Relaxed);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(stream)) => {
                            self.inner.pending.fetch_sub(1, Ordering::Relaxed);
                            shed(&self.inner, &stream);
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            self.inner.pending.fetch_sub(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                Err(e) => {
                    galign_telemetry::debug!("router", "accept error: {e}");
                }
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        galign_telemetry::info!("router", "shut down cleanly");
        Ok(())
    }

    /// Runs the router on a background thread.
    #[must_use]
    pub fn spawn(self) -> RouterHandle {
        let inner = Arc::clone(&self.inner);
        let addr = self.local_addr();
        let join = std::thread::spawn(move || self.run());
        RouterHandle { inner, addr, join }
    }
}

impl RouterHandle {
    /// The router's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown and waits for every worker.
    ///
    /// # Errors
    /// The run loop's error, if it failed.
    ///
    /// # Panics
    /// If the router thread panicked.
    pub fn shutdown(self) -> io::Result<()> {
        begin_shutdown(&self.inner);
        self.join.join().expect("router thread panicked")
    }
}

fn begin_shutdown(inner: &Inner) {
    if !inner.shutting_down.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect_timeout(&inner.addr, Duration::from_secs(1));
    }
}

fn shed(inner: &Inner, stream: &TcpStream) {
    inner.shed_total.fetch_add(1, Ordering::Relaxed);
    galign_telemetry::counter_add("router.http.shed", 1);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut writer = stream;
    let _ = http::write_json_with_headers(
        &mut writer,
        503,
        &[("retry-after", inner.cfg.retry_after_secs.to_string())],
        &error_body("router overloaded, retry later"),
    );
}

struct Reply {
    status: u16,
    content_type: &'static str,
    body: String,
    engine: String,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body,
            engine: String::new(),
        }
    }
}

enum ConnectionFate {
    KeepAlive,
    Close,
}

fn handle_connection(inner: &Inner, clients: &[Vec<Arc<Mutex<Client>>>], stream: TcpStream) {
    // Same Nagle opt-out as the shard servers: header and body land in
    // separate writes, and a routed response otherwise eats a delayed-ACK
    // stall per hop.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(inner.cfg.request_timeout));
    let mut reader = BufReader::new(&stream);
    let mut served = 0u64;
    loop {
        let _ = stream.set_read_timeout(Some(inner.cfg.request_timeout));
        match serve_one(inner, clients, &stream, &mut reader, served) {
            ConnectionFate::KeepAlive => served += 1,
            ConnectionFate::Close => return,
        }
        if inner.pending.load(Ordering::Relaxed) > 0 {
            return; // fairness: free the worker while others wait
        }
        if reader.buffer().is_empty() {
            let idle = inner.cfg.keep_alive_idle.max(Duration::from_millis(1));
            let _ = stream.set_read_timeout(Some(idle));
            let mut probe = [0u8; 1];
            match stream.peek(&mut probe) {
                Ok(n) if n > 0 => {}
                _ => return,
            }
        }
    }
}

fn serve_one(
    inner: &Inner,
    clients: &[Vec<Arc<Mutex<Client>>>],
    stream: &TcpStream,
    reader: &mut BufReader<&TcpStream>,
    served: u64,
) -> ConnectionFate {
    let started = Instant::now();
    inner.in_flight.fetch_add(1, Ordering::Relaxed);
    let _guard = CounterGuard(&inner.in_flight);
    let outcome = http::read_request(reader);
    let mut writer = stream;
    let (reply, trace, request, keep) = match outcome {
        Ok(ReadOutcome::Ok(request)) => {
            let trace_id = request
                .header(TRACE_HEADER)
                .and_then(TraceId::parse_hex)
                .unwrap_or_else(TraceId::generate);
            let ctx = TraceContext::root(trace_id);
            let reply = {
                let _span_scope = ctx.enter();
                route(inner, clients, &request, started)
            };
            let keep = request.wants_keep_alive() && !inner.shutting_down.load(Ordering::SeqCst);
            (reply, ctx, Some(request), keep)
        }
        Ok(ReadOutcome::Bad(bad)) => (
            Reply::json(400, error_body(&bad.0)),
            TraceContext::root(TraceId::generate()),
            None,
            false,
        ),
        Ok(ReadOutcome::Closed) => return ConnectionFate::Close,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            if served > 0 {
                return ConnectionFate::Close;
            }
            (
                Reply::json(408, error_body("request timed out")),
                TraceContext::root(TraceId::generate()),
                None,
                false,
            )
        }
        Err(e) => {
            galign_telemetry::debug!("router", "connection error: {e}");
            return ConnectionFate::Close;
        }
    };
    let trace_id = trace.trace_id();
    let mut extra_headers = vec![(TRACE_HEADER, trace_id.to_hex())];
    if reply.status == 503 {
        extra_headers.push(("retry-after", inner.cfg.retry_after_secs.to_string()));
    }
    let _ = http::write_response_with_options(
        &mut writer,
        reply.status,
        reply.content_type,
        &extra_headers,
        reply.body.as_bytes(),
        keep,
    );
    if galign_telemetry::metrics_enabled() {
        galign_telemetry::counter_add("router.http.requests", 1);
        galign_telemetry::counter_add(
            match reply.status {
                200 => "router.http.status.2xx",
                500..=599 => "router.http.status.5xx",
                _ => "router.http.status.4xx",
            },
            1,
        );
        galign_telemetry::histogram_record(
            "router.request.ms",
            started.elapsed().as_secs_f64() * 1e3,
        );
    }
    let (events, notes) = trace.take_events();
    let (method, path) = match &request {
        Some(r) => (r.method.as_str(), r.path.as_str()),
        None => ("-", "-"),
    };
    inner.flight.record(TraceRecord {
        trace_id,
        kind: RecordKind::Request,
        name: format!("{method} {path}"),
        status: reply.status,
        engine: reply.engine.clone(),
        end_ms: galign_telemetry::clock_ms(),
        total_us: started.elapsed().as_micros() as u64,
        events,
        notes,
        fields: Vec::new(),
    });
    if keep {
        ConnectionFate::KeepAlive
    } else {
        ConnectionFate::Close
    }
}

fn route(
    inner: &Inner,
    clients: &[Vec<Arc<Mutex<Client>>>],
    request: &Request,
    started: Instant,
) -> Reply {
    // The routed request's deadline: hops propagate whatever budget is
    // left of it, so shards can shed work the router will time out on.
    let deadline = started + inner.cfg.request_timeout;
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/align/topk") => {
            galign_telemetry::counter_add("router.route.topk", 1);
            topk_route(inner, clients, &request.body, deadline)
        }
        ("POST", "/v2/align/topk") => {
            galign_telemetry::counter_add("router.route.topk_v2", 1);
            topk_batch_route(inner, clients, &request.body, deadline)
        }
        ("GET", "/healthz") => {
            galign_telemetry::counter_add("router.route.healthz", 1);
            Reply::json(200, healthz(inner))
        }
        ("GET", "/metrics") => {
            galign_telemetry::counter_add("router.route.metrics", 1);
            if request.query_param("format") == Some("prometheus") {
                Reply {
                    status: 200,
                    content_type: galign_telemetry::prom::CONTENT_TYPE,
                    body: galign_telemetry::prom::render(&galign_telemetry::snapshot()),
                    engine: String::new(),
                }
            } else {
                Reply::json(200, galign_telemetry::snapshot_json())
            }
        }
        ("GET", "/v1/debug/requests") => {
            galign_telemetry::counter_add("router.route.debug_requests", 1);
            Reply::json(200, inner.flight.to_json())
        }
        ("POST", "/v1/admin/shutdown") => {
            galign_telemetry::info!("router", "shutdown requested via admin endpoint");
            begin_shutdown(inner);
            Reply::json(200, "{\"status\":\"shutting-down\"}".to_string())
        }
        ("GET" | "HEAD", "/v1/align/topk" | "/v2/align/topk")
        | ("POST", "/healthz" | "/metrics" | "/v1/debug/requests")
        | ("GET", "/v1/admin/shutdown") => {
            Reply::json(405, error_body("wrong method for this path"))
        }
        _ => Reply::json(404, error_body("no such endpoint")),
    }
}

fn topk_route(
    inner: &Inner,
    clients: &[Vec<Arc<Mutex<Client>>>],
    body: &[u8],
    deadline: Instant,
) -> Reply {
    let st = context::stage("parse");
    let query = match parse_routed_query(body, inner.cfg.default_k, inner.cfg.max_k) {
        Ok(q) => q,
        Err(msg) => return Reply::json(400, error_body(&msg)),
    };
    st.finish_with(vec![("nodes", query.nodes.len().to_string())]);
    // The body is forwarded verbatim: θ and friends never round-trip
    // through the router's serializer.
    let body = String::from_utf8_lossy(body).into_owned();
    let RoutedReply {
        status,
        body,
        partial,
        engine,
    } = scatter_gather(
        &inner.topology,
        clients,
        &body,
        &query,
        &inner.policy,
        Some(deadline),
        inner.flight,
    );
    if partial {
        galign_telemetry::counter_add("router.topk.partial", 1);
    }
    Reply {
        status,
        content_type: "application/json",
        body,
        engine,
    }
}

fn topk_batch_route(
    inner: &Inner,
    clients: &[Vec<Arc<Mutex<Client>>>],
    body: &[u8],
    deadline: Instant,
) -> Reply {
    let st = context::stage("parse");
    let batch = match parse_routed_batch(body, inner.cfg.default_k, inner.cfg.max_k) {
        Ok(b) => b,
        Err(msg) => return Reply::json(400, error_body(&msg)),
    };
    st.finish_with(vec![("queries", batch.queries.len().to_string())]);
    // As on /v1, the envelope is forwarded verbatim.
    let body = String::from_utf8_lossy(body).into_owned();
    let RoutedReply {
        status,
        body,
        partial,
        engine,
    } = scatter_gather_batch(
        &inner.topology,
        clients,
        &body,
        &batch,
        &inner.policy,
        Some(deadline),
        inner.flight,
    );
    if partial {
        galign_telemetry::counter_add("router.topk.partial", 1);
    }
    Reply {
        status,
        content_type: "application/json",
        body,
        engine,
    }
}

fn healthz(inner: &Inner) -> String {
    // Degraded = at least one shard has no healthy replica: exactly the
    // state in which routed answers carry `"partial": true`.
    let degraded = !inner.topology.fully_healthy();
    let status = if degraded { "degraded" } else { "ok" };
    galign_telemetry::gauge_set("router.degraded", f64::from(u8::from(degraded)));
    let mut shards = String::new();
    for (i, shard) in inner.topology.shards.iter().enumerate() {
        if i > 0 {
            shards.push(',');
        }
        let breakers = shard
            .replicas
            .iter()
            .map(|r| format!("\"{}\"", r.breaker().state().as_str()))
            .collect::<Vec<_>>()
            .join(",");
        shards.push_str(&format!(
            "{{\"shard_id\":{},\"start\":{},\"end\":{},\"replicas\":{},\"healthy\":{},\"breakers\":[{breakers}]}}",
            shard.identity.shard_id,
            shard.identity.start,
            shard.identity.end,
            shard.replicas.len(),
            shard.healthy_replicas(),
        ));
    }
    format!(
        "{{\"status\":\"{status}\",\"role\":\"router\",\"num_shards\":{},\"source_nodes\":{},\"target_nodes\":{},\"layers\":{},\"workers\":{},\"pending\":{},\"in_flight\":{},\"shed_total\":{},\"queue_depth\":{},\"shards\":[{shards}]}}",
        inner.topology.shards.len(),
        inner.topology.source_nodes,
        inner.topology.parent_targets,
        inner.topology.layers,
        inner.cfg.workers.max(1),
        inner.pending.load(Ordering::Relaxed),
        inner.in_flight.load(Ordering::Relaxed),
        inner.shed_total.load(Ordering::Relaxed),
        inner.cfg.queue_depth,
    )
}
