//! Shard topology: which replicas serve which contiguous slice of the
//! target network, discovered and validated by probing each replica's
//! `/healthz`.
//!
//! The topology is *configuration-light*: the operator only lists replica
//! addresses grouped by shard. Everything else — each shard's id range,
//! the parent artifact's checksum, the query-side shape — comes from the
//! shard nodes themselves, and discovery refuses to build a topology
//! whose shards disagree (mixed parents) or whose ranges do not tile the
//! parent's target ids exactly. A router can therefore never be
//! mis-wired into silently answering from half a network.
//!
//! Replica health lives here too, in two layers shared by every router
//! worker. The advisory `last_ok` bool records the outcome of the most
//! recent attempt and only *orders* candidates (and feeds `/healthz`'s
//! degraded signal). Eligibility is decided by each replica's
//! [`CircuitBreaker`]: a tripped replica is **skipped** by selection
//! until its cooldown grants a half-open probe, driven either by live
//! traffic or by the router's background [`Topology::reprobe`] loop —
//! which is how a recovered node heals without a control plane.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use galign_serve::client::{Client, ClientConfig};
use galign_serve::json;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Identity of one shard: its slice of the parent's target ids plus the
/// parent fingerprint, as advertised on `/healthz`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIdentity {
    /// Position in the split (`0..num_shards`).
    pub shard_id: usize,
    /// Total shards in the split.
    pub num_shards: usize,
    /// First parent target id served (inclusive).
    pub start: usize,
    /// One past the last parent target id served.
    pub end: usize,
    /// Target rows of the parent artifact.
    pub parent_targets: usize,
    /// Parent fingerprint as 16 lowercase hex digits (empty for an
    /// unsharded node standing in as the single "shard").
    pub parent_checksum: String,
}

/// One replica's shared health state: the advisory last-outcome flag
/// plus the circuit breaker. Lives behind an `Arc` so detached
/// hedge-attempt threads can report outcomes even after their shard's
/// scatter call has already returned with the other replica's answer.
#[derive(Debug)]
pub struct ReplicaHealth {
    last_ok: AtomicBool,
    breaker: CircuitBreaker,
}

impl ReplicaHealth {
    fn new() -> ReplicaHealth {
        ReplicaHealth {
            last_ok: AtomicBool::new(true),
            breaker: CircuitBreaker::new(BreakerConfig::default()),
        }
    }

    /// Last-known health (advisory: selection order and the `/healthz`
    /// degraded signal, not eligibility).
    pub fn is_healthy(&self) -> bool {
        self.last_ok.load(Ordering::Relaxed)
    }

    /// The eligibility gate.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Records a successful request: flips the advisory flag to healthy
    /// and closes the breaker.
    pub fn record_success(&self) {
        self.last_ok.store(true, Ordering::Relaxed);
        self.breaker.record_success();
    }

    /// Records a failed request (hop timeout, connect failure, 5xx or
    /// unparseable 200): flips the advisory flag and feeds the breaker's
    /// consecutive-failure streak.
    pub fn record_failure(&self) {
        self.last_ok.store(false, Ordering::Relaxed);
        self.breaker.record_failure();
    }

    /// Marks a replica found unreachable at discovery: unhealthy *and*
    /// tripped, so it only takes traffic again once a probe heals it.
    pub fn mark_unreachable(&self) {
        self.last_ok.store(false, Ordering::Relaxed);
        self.breaker.force_open();
    }
}

/// One replica address plus its shared health state.
#[derive(Debug)]
pub struct Replica {
    /// Address as configured (e.g. `"127.0.0.1:7001"`).
    pub addr: String,
    health: Arc<ReplicaHealth>,
}

impl Replica {
    fn new(addr: String) -> Replica {
        Replica {
            addr,
            health: Arc::new(ReplicaHealth::new()),
        }
    }

    /// A handle to this replica's health state, cloneable into detached
    /// attempt threads.
    pub fn health(&self) -> Arc<ReplicaHealth> {
        Arc::clone(&self.health)
    }

    /// Last-known health (advisory: selection order, not eligibility).
    pub fn is_healthy(&self) -> bool {
        self.health.is_healthy()
    }

    /// This replica's circuit breaker (the eligibility gate).
    pub fn breaker(&self) -> &CircuitBreaker {
        self.health.breaker()
    }

    /// See [`ReplicaHealth::record_success`].
    pub fn record_success(&self) {
        self.health.record_success();
    }

    /// See [`ReplicaHealth::record_failure`].
    pub fn record_failure(&self) {
        self.health.record_failure();
    }

    /// See [`ReplicaHealth::mark_unreachable`].
    pub fn mark_unreachable(&self) {
        self.health.mark_unreachable();
    }
}

/// One shard: its identity and its replica set.
#[derive(Debug)]
pub struct Shard {
    /// The id-range identity every replica of this shard agreed on.
    pub identity: ShardIdentity,
    /// Replicas serving this shard.
    pub replicas: Vec<Replica>,
}

impl Shard {
    /// Number of replicas currently marked healthy.
    pub fn healthy_replicas(&self) -> usize {
        self.replicas.iter().filter(|r| r.is_healthy()).count()
    }
}

/// A validated shard topology: shards ordered by `shard_id`, tiling
/// `0..parent_targets` contiguously, all from the same parent artifact.
#[derive(Debug)]
pub struct Topology {
    /// Shards in `shard_id` order.
    pub shards: Vec<Shard>,
    /// Target rows of the parent artifact (= sum of shard ranges).
    pub parent_targets: usize,
    /// Source (query) nodes every shard serves.
    pub source_nodes: usize,
    /// Embedding layers per node.
    pub layers: usize,
}

/// What one `/healthz` probe told us about a replica.
struct Probe {
    identity: Option<ShardIdentity>,
    source_nodes: usize,
    target_nodes: usize,
    layers: usize,
}

fn probe_replica(addr: &str, cfg: &ClientConfig) -> io::Result<Probe> {
    let client = Client::with_config(addr, cfg.clone())?;
    let resp = client.get("/healthz")?;
    if resp.status != 200 {
        return Err(io::Error::other(format!(
            "{addr}: /healthz returned {}",
            resp.status
        )));
    }
    let body = resp.body_str();
    let doc = json::parse(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{addr}: {e}")))?;
    let usize_field = |name: &str| {
        doc.get(name).and_then(|v| v.as_usize()).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{addr}: /healthz lacks \"{name}\""),
            )
        })
    };
    let (source_nodes, target_nodes, layers) = (
        usize_field("source_nodes")?,
        usize_field("target_nodes")?,
        usize_field("layers")?,
    );
    let identity = match doc.get("shard") {
        None => None,
        Some(shard) => {
            let field = |name: &str| {
                shard.get(name).and_then(|v| v.as_usize()).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{addr}: shard block lacks \"{name}\""),
                    )
                })
            };
            Some(ShardIdentity {
                shard_id: field("shard_id")?,
                num_shards: field("num_shards")?,
                start: field("start")?,
                end: field("end")?,
                parent_targets: field("parent_targets")?,
                parent_checksum: shard
                    .get("parent_checksum")
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string(),
            })
        }
    };
    Ok(Probe {
        identity,
        source_nodes,
        target_nodes,
        layers,
    })
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Topology {
    /// Discovers and validates the topology behind `groups`: one replica
    /// address list per shard. Every *reachable* replica is probed and
    /// must agree with its group; replicas that cannot be reached now are
    /// kept (marked unhealthy) so they can heal later, but each group
    /// needs at least one reachable member to establish its identity.
    ///
    /// A single group of unsharded (plain-artifact) nodes is accepted as
    /// a one-shard topology covering the whole target network.
    ///
    /// # Errors
    /// Unreachable groups, disagreeing replicas, mixed parents, and
    /// ranges that do not tile `0..parent_targets` exactly.
    pub fn discover(groups: &[Vec<String>], cfg: &ClientConfig) -> io::Result<Topology> {
        if groups.is_empty() || groups.iter().any(Vec::is_empty) {
            return Err(invalid(
                "topology needs at least one shard, each with at least one replica".to_string(),
            ));
        }
        let mut shards = Vec::with_capacity(groups.len());
        let mut shape: Option<(usize, usize)> = None; // (source_nodes, layers)
        for (group_idx, group) in groups.iter().enumerate() {
            let mut established: Option<ShardIdentity> = None;
            let mut replicas = Vec::with_capacity(group.len());
            for addr in group {
                let replica = Replica::new(addr.clone());
                match probe_replica(addr, cfg) {
                    Ok(probe) => {
                        let identity = probe.identity.unwrap_or_else(|| ShardIdentity {
                            shard_id: 0,
                            num_shards: 1,
                            start: 0,
                            end: probe.target_nodes,
                            parent_targets: probe.target_nodes,
                            parent_checksum: String::new(),
                        });
                        match &established {
                            None => established = Some(identity),
                            Some(first) if *first == identity => {}
                            Some(first) => {
                                return Err(invalid(format!(
                                    "shard group {group_idx}: {addr} serves {identity:?} but \
                                     {} serves {first:?}",
                                    group[0]
                                )));
                            }
                        }
                        match shape {
                            None => shape = Some((probe.source_nodes, probe.layers)),
                            Some(s) if s == (probe.source_nodes, probe.layers) => {}
                            Some(s) => {
                                return Err(invalid(format!(
                                    "{addr}: shape {:?} differs from {s:?}",
                                    (probe.source_nodes, probe.layers)
                                )));
                            }
                        }
                    }
                    Err(e) => {
                        galign_telemetry::info!(
                            "router",
                            "replica {addr} unreachable at discovery ({e}); keeping it \
                             tripped until a probe heals it"
                        );
                        replica.mark_unreachable();
                    }
                }
                replicas.push(replica);
            }
            let identity = established.ok_or_else(|| {
                io::Error::other(format!(
                    "shard group {group_idx}: no reachable replica to establish identity"
                ))
            })?;
            shards.push(Shard { identity, replicas });
        }
        let (source_nodes, layers) = shape.expect("at least one probe succeeded");
        shards.sort_by_key(|s| s.identity.shard_id);
        Topology::validate(&shards)?;
        let parent_targets = shards[0].identity.parent_targets;
        Ok(Topology {
            shards,
            parent_targets,
            source_nodes,
            layers,
        })
    }

    /// The structural invariants: one group per shard id, one parent,
    /// contiguous full coverage.
    fn validate(shards: &[Shard]) -> io::Result<()> {
        let first = &shards[0].identity;
        let mut expected_start = 0usize;
        for (i, shard) in shards.iter().enumerate() {
            let id = &shard.identity;
            if id.num_shards != shards.len() {
                return Err(invalid(format!(
                    "shard {}: artifact was split into {} shards but {} groups are configured",
                    id.shard_id,
                    id.num_shards,
                    shards.len()
                )));
            }
            if id.shard_id != i {
                return Err(invalid(format!(
                    "shard ids are not exactly 0..{} (got duplicate or missing id {})",
                    shards.len(),
                    id.shard_id
                )));
            }
            if (id.parent_targets, id.parent_checksum.as_str())
                != (first.parent_targets, first.parent_checksum.as_str())
            {
                return Err(invalid(format!(
                    "shard {} comes from a different parent artifact than shard 0",
                    id.shard_id
                )));
            }
            if id.start != expected_start {
                return Err(invalid(format!(
                    "shard {} starts at {} but coverage reached {expected_start}: \
                     ranges must tile the parent contiguously",
                    id.shard_id, id.start
                )));
            }
            if id.end < id.start {
                return Err(invalid(format!("shard {}: inverted range", id.shard_id)));
            }
            expected_start = id.end;
        }
        if expected_start != first.parent_targets {
            return Err(invalid(format!(
                "shards cover targets 0..{expected_start} but the parent has {}",
                first.parent_targets
            )));
        }
        Ok(())
    }

    /// Whether every shard has at least one healthy replica.
    pub fn fully_healthy(&self) -> bool {
        self.shards.iter().all(|s| s.healthy_replicas() > 0)
    }

    /// Re-applies breaker tunables to every replica (how `Router::bind`
    /// imposes its `RouterConfig` on a topology discovered earlier).
    pub fn configure_breakers(&self, cfg: BreakerConfig) {
        for shard in &self.shards {
            for replica in &shard.replicas {
                replica.breaker().configure(cfg);
            }
        }
    }

    /// One pass of the background health re-probe loop: every replica
    /// whose breaker is open and past its cooldown gets one `/healthz`
    /// probe (claiming the half-open slot, so live traffic and the loop
    /// never double-probe). A `200` heals the replica; anything else
    /// re-opens it for another cooldown. Returns how many replicas
    /// healed; bumps `router.reprobe.probes` / `router.reprobe.healed`.
    pub fn reprobe(&self, cfg: &ClientConfig) -> usize {
        let mut healed = 0;
        for shard in &self.shards {
            for replica in &shard.replicas {
                if !replica.breaker().probe_due() || !replica.breaker().try_acquire() {
                    continue;
                }
                galign_telemetry::counter_add("router.reprobe.probes", 1);
                let ok = Client::with_config(&replica.addr, cfg.clone())
                    .and_then(|client| client.get("/healthz"))
                    .map(|resp| resp.status == 200)
                    .unwrap_or(false);
                if ok {
                    replica.record_success();
                    healed += 1;
                    galign_telemetry::counter_add("router.reprobe.healed", 1);
                    galign_telemetry::info!(
                        "router",
                        "replica {} healed by background re-probe",
                        replica.addr
                    );
                } else {
                    replica.record_failure();
                }
            }
        }
        healed
    }

    /// Breaker states of every replica, shard by shard (for `/healthz`).
    pub fn breaker_states(&self) -> Vec<Vec<BreakerState>> {
        self.shards
            .iter()
            .map(|s| s.replicas.iter().map(|r| r.breaker().state()).collect())
            .collect()
    }
}

/// Parses a replica-set spec: shards separated by `;`, replicas within a
/// shard by `,` — e.g. `"127.0.0.1:7001,127.0.0.1:7002;127.0.0.1:7003"`.
///
/// # Errors
/// Empty shards or replicas.
pub fn parse_replica_spec(spec: &str) -> io::Result<Vec<Vec<String>>> {
    let groups: Vec<Vec<String>> = spec
        .split(';')
        .map(|group| {
            group
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .collect();
    if groups.is_empty() || groups.iter().any(Vec::is_empty) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("bad replica spec {spec:?}: want \"addr,addr;addr,addr\""),
        ));
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(id: usize, n: usize, start: usize, end: usize, parent: usize) -> Shard {
        Shard {
            identity: ShardIdentity {
                shard_id: id,
                num_shards: n,
                start,
                end,
                parent_targets: parent,
                parent_checksum: "00000000deadbeef".to_string(),
            },
            replicas: vec![Replica::new("127.0.0.1:1".to_string())],
        }
    }

    #[test]
    fn validate_accepts_contiguous_tiling() {
        let shards = vec![
            shard(0, 3, 0, 4, 9),
            shard(1, 3, 4, 7, 9),
            shard(2, 3, 7, 9, 9),
        ];
        Topology::validate(&shards).unwrap();
    }

    #[test]
    fn validate_rejects_gaps_overlaps_and_mixed_parents() {
        // Gap between 4 and 5.
        let gap = vec![shard(0, 2, 0, 4, 9), shard(1, 2, 5, 9, 9)];
        assert!(Topology::validate(&gap).is_err());
        // Overlap.
        let overlap = vec![shard(0, 2, 0, 5, 9), shard(1, 2, 4, 9, 9)];
        assert!(Topology::validate(&overlap).is_err());
        // Incomplete coverage.
        let short = vec![shard(0, 2, 0, 4, 9), shard(1, 2, 4, 8, 9)];
        assert!(Topology::validate(&short).is_err());
        // Wrong group count vs num_shards.
        let count = vec![shard(0, 3, 0, 4, 9), shard(1, 3, 4, 9, 9)];
        assert!(Topology::validate(&count).is_err());
        // Mixed parents.
        let mut mixed = vec![shard(0, 2, 0, 4, 9), shard(1, 2, 4, 9, 9)];
        mixed[1].identity.parent_checksum = "ffffffffffffffff".to_string();
        assert!(Topology::validate(&mixed).is_err());
        // Duplicate shard ids.
        let dup = vec![shard(0, 2, 0, 4, 9), shard(0, 2, 4, 9, 9)];
        assert!(Topology::validate(&dup).is_err());
    }

    #[test]
    fn replica_spec_parses_groups() {
        let groups = parse_replica_spec("a:1,b:2;c:3").unwrap();
        assert_eq!(
            groups,
            vec![
                vec!["a:1".to_string(), "b:2".to_string()],
                vec!["c:3".to_string()]
            ]
        );
        assert!(parse_replica_spec("").is_err());
        assert!(parse_replica_spec("a:1;;b:2").is_err());
    }

    #[test]
    fn advisory_health_tracks_last_outcome_only() {
        let s = shard(0, 1, 0, 9, 9);
        assert_eq!(s.healthy_replicas(), 1);
        // A single failure flips the advisory flag (so /healthz degrades
        // loudly) without tripping the default threshold-3 breaker.
        s.replicas[0].record_failure();
        assert_eq!(s.healthy_replicas(), 0);
        assert_eq!(s.replicas[0].breaker().state(), BreakerState::Closed);
        s.replicas[0].record_success();
        assert!(s.replicas[0].is_healthy());
    }

    #[test]
    fn unreachable_at_discovery_starts_tripped() {
        let s = shard(0, 1, 0, 9, 9);
        s.replicas[0].mark_unreachable();
        assert!(!s.replicas[0].is_healthy());
        assert_eq!(s.replicas[0].breaker().state(), BreakerState::Open);
        assert!(!s.replicas[0].breaker().try_acquire());
    }

    /// The heal path: a tripped replica whose cooldown has elapsed is
    /// probed by `Topology::reprobe` and closes on a 200 `/healthz`.
    #[test]
    fn reprobe_heals_a_tripped_replica() {
        use std::io::{Read as _, Write as _};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = conn.read(&mut buf);
            let body = "{}";
            let _ = write!(
                conn,
                "HTTP/1.1 200 OK\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            );
        });

        let topo = Topology {
            shards: vec![Shard {
                identity: ShardIdentity {
                    shard_id: 0,
                    num_shards: 1,
                    start: 0,
                    end: 9,
                    parent_targets: 9,
                    parent_checksum: String::new(),
                },
                replicas: vec![Replica::new(addr)],
            }],
            parent_targets: 9,
            source_nodes: 4,
            layers: 1,
        };
        let replica = &topo.shards[0].replicas[0];
        replica.mark_unreachable();
        topo.configure_breakers(BreakerConfig {
            failure_threshold: 3,
            cooldown: std::time::Duration::from_millis(100),
        });
        assert_eq!(topo.reprobe(&ClientConfig::default()), 0, "still cooling");
        std::thread::sleep(std::time::Duration::from_millis(200));
        assert_eq!(topo.reprobe(&ClientConfig::default()), 1);
        assert!(replica.is_healthy());
        assert_eq!(replica.breaker().state(), BreakerState::Closed);
        server.join().unwrap();
    }
}
