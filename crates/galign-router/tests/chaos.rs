//! Deterministic chaos suite: failpoint schedules drive the tail-latency
//! failure modes one at a time — a slow replica, a hedge budget running
//! dry, a replica dead from discovery, a full shard blackout with
//! restart, a shard stalled past the propagated deadline — and every
//! scenario asserts the same contract: routed bytes identical to a
//! single node's or *loudly* `"partial":true`, client-visible errors
//! bounded (here: zero), and the tail-tolerance machinery observable
//! through `router.breaker.*` / `router.hedge.*` / `router.reprobe.*`
//! counters on `/metrics` and `Hop` records in the flight recorder.
//!
//! Run with `cargo test -p galign-router --features failpoints`.
#![cfg(feature = "failpoints")]

use galign_router::breaker::BreakerConfig;
use galign_router::server::{Router, RouterConfig, RouterHandle};
use galign_router::topology::Topology;
use galign_serve::artifact::{Artifact, Mat};
use galign_serve::client::ClientConfig;
use galign_serve::json;
use galign_serve::server::{ServeConfig, Server, ServerHandle};
use galign_serve::topk::TopkIndex;
use galign_telemetry::failpoint::{self, Scenario};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

fn fixture() -> Artifact {
    let mut rng = Rng(23 | 1);
    let mk = |n: usize, d: usize, rng: &mut Rng| {
        Mat::new(n, d, (0..n * d).map(|_| rng.signed_unit()).collect()).unwrap()
    };
    let source = mk(6, 4, &mut rng);
    let target = mk(12, 4, &mut rng);
    Artifact::new(vec![1.0], vec![source], vec![target], false).unwrap()
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        request_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

fn bind_shard(artifact: &Artifact, addr: &str) -> ServerHandle {
    Server::bind(
        addr,
        TopkIndex::from_artifact(artifact.clone()),
        serve_cfg(),
    )
    .expect("bind shard node")
    .spawn()
}

/// 2 shards x 2 replicas; returns the split artifacts too so scenarios
/// can restart replicas on their original addresses.
fn start_fleet(artifact: &Artifact) -> (Vec<Vec<ServerHandle>>, Vec<Vec<String>>, Vec<Artifact>) {
    let shards = artifact.split(2, None).expect("split");
    let mut fleet = Vec::new();
    let mut groups = Vec::new();
    for shard in &shards {
        let mut row = Vec::new();
        let mut group = Vec::new();
        for _ in 0..2 {
            let handle = bind_shard(shard, "127.0.0.1:0");
            group.push(handle.addr().to_string());
            row.push(handle);
        }
        fleet.push(row);
        groups.push(group);
    }
    (fleet, groups, shards)
}

fn start_router(groups: &[Vec<String>], cfg: RouterConfig) -> RouterHandle {
    let client = ClientConfig {
        max_retries: 1,
        io_timeout: Duration::from_secs(2),
        ..ClientConfig::default()
    };
    let topology = Topology::discover(groups, &client).expect("discover topology");
    Router::bind("127.0.0.1:0", topology, cfg)
        .expect("bind router")
        .spawn()
}

fn send(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

/// Reads one counter from the router's JSON `/metrics` snapshot. The
/// telemetry registry is process-global (shared by every test in this
/// binary), so assertions must always be on deltas from a baseline read
/// inside the same [`Scenario`].
fn counter(addr: SocketAddr, name: &str) -> f64 {
    let (status, body) = send(addr, "GET", "/metrics", None);
    assert_eq!(status, 200, "{body}");
    json::parse(&body)
        .expect("metrics JSON")
        .get("counters")
        .and_then(|c| c.get(name).and_then(|v| v.as_f64()))
        .unwrap_or(0.0)
}

/// The breaker states `/healthz` reports for one shard.
fn breaker_states(addr: SocketAddr, shard: usize) -> Vec<String> {
    let (status, health) = send(addr, "GET", "/healthz", None);
    assert_eq!(status, 200, "{health}");
    let doc = json::parse(&health).expect("healthz JSON");
    doc.get("shards").unwrap().as_arr().unwrap()[shard]
        .get("breakers")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|s| s.as_str().unwrap().to_string())
        .collect()
}

const QUERY: &str = r#"{"nodes": [0, 1, 2, 3, 4, 5], "k": 12}"#;

/// Single-node ground truth for [`QUERY`]. Computed before any failpoint
/// is armed.
fn expected_body(artifact: &Artifact) -> String {
    let single = bind_shard(artifact, "127.0.0.1:0");
    let (status, body) = send(single.addr(), "POST", "/v1/align/topk", Some(QUERY));
    assert_eq!(status, 200, "{body}");
    single.shutdown().expect("single shutdown");
    body
}

fn shutdown_fleet(fleet: Vec<Vec<ServerHandle>>) {
    for row in fleet {
        for h in row {
            h.shutdown().expect("shard shutdown");
        }
    }
}

/// A replica stalled well past the hedge threshold must be raced, not
/// waited out: with the primary hop held 400ms by the `router.hop.slow`
/// failpoint and a 40ms static hedge delay, every answer comes from the
/// hedge in a fraction of the stall — byte-identical, with the wins
/// visible on `/metrics` (JSON and Prometheus) and hops in the flight
/// recorder.
#[test]
fn slow_replica_is_hedged_not_waited_out() {
    let _scenario = Scenario::setup();
    let artifact = fixture();
    let expected = expected_body(&artifact);
    let (fleet, groups, _) = start_fleet(&artifact);
    let router = start_router(
        &groups,
        RouterConfig {
            hedge_after: Some(Duration::from_millis(40)),
            hedge_adaptive: false, // a fixed threshold keeps the test deterministic
            hedge_budget_ratio: 0.0, // unmetered
            reprobe_interval: None,
            ..RouterConfig::default()
        },
    );
    let fired_base = counter(router.addr(), "router.hedge.fired");
    let wins_base = counter(router.addr(), "router.hedge.wins");
    failpoint::cfg("router.hop.slow", "delay(400)").expect("configure failpoint");

    let mut worst = Duration::ZERO;
    for round in 0..8 {
        let t0 = Instant::now();
        let (status, body) = send(router.addr(), "POST", "/v1/align/topk", Some(QUERY));
        worst = worst.max(t0.elapsed());
        assert_eq!(status, 200, "round {round}: {body}");
        assert_eq!(body, expected, "round {round}: hedged answer drifted");
    }
    // Every request beat the 400ms stall: the hedge won the race. (The
    // bound is the stall itself, an order of magnitude above the
    // hedge-path latency, so scheduler noise cannot flake this.)
    assert!(
        worst < Duration::from_millis(400),
        "hedge never won: worst round took {worst:?}"
    );
    let fired = counter(router.addr(), "router.hedge.fired") - fired_base;
    let wins = counter(router.addr(), "router.hedge.wins") - wins_base;
    assert!(
        fired >= 8.0,
        "hedge fired {fired} times, expected every round"
    );
    assert!(wins >= 8.0, "hedge won {wins} times, expected every round");

    // The same counters are visible in Prometheus exposition...
    let (status, prom) = send(router.addr(), "GET", "/metrics?format=prometheus", None);
    assert_eq!(status, 200);
    assert!(
        prom.contains("router_hedge_fired") && prom.contains("router_hedge_wins"),
        "hedge counters missing from Prometheus exposition: {prom}"
    );
    // ...and every attempt (stalled primaries included) left a Hop
    // record in the flight recorder.
    let (status, flights) = send(router.addr(), "GET", "/v1/debug/requests", None);
    assert_eq!(status, 200);
    assert!(
        flights.contains("\"hop\"") || flights.contains("\"Hop\""),
        "no hop records in the flight recorder: {flights}"
    );

    failpoint::remove("router.hop.slow");
    router.shutdown().expect("router shutdown");
    shutdown_fleet(fleet);
}

/// When the hedge token bucket runs dry, hedging stops — the router
/// waits out the slow primary instead of doubling load — and the request
/// still completes byte-identically, just slower. The refusals are
/// observable via `router.hedge.budget_exhausted`.
#[test]
fn exhausted_hedge_budget_degrades_to_waiting_not_erroring() {
    let _scenario = Scenario::setup();
    let artifact = fixture();
    let expected = expected_body(&artifact);
    let (fleet, groups, _) = start_fleet(&artifact);
    let router = start_router(
        &groups,
        RouterConfig {
            hedge_after: Some(Duration::from_millis(10)),
            hedge_adaptive: false,
            // One token, earned back at 1/1000 of a token per hop: the
            // first hedge drains the bucket for the rest of the test.
            hedge_budget_ratio: 0.001,
            hedge_budget_cap: 1.0,
            reprobe_interval: None,
            ..RouterConfig::default()
        },
    );
    let exhausted_base = counter(router.addr(), "router.hedge.budget_exhausted");
    let fired_base = counter(router.addr(), "router.hedge.fired");
    failpoint::cfg("router.hop.slow", "delay(120)").expect("configure failpoint");

    for round in 0..6 {
        let (status, body) = send(router.addr(), "POST", "/v1/align/topk", Some(QUERY));
        assert_eq!(status, 200, "round {round}: {body}");
        assert_eq!(
            body, expected,
            "round {round}: bytes drifted under budget pressure"
        );
    }
    let exhausted = counter(router.addr(), "router.hedge.budget_exhausted") - exhausted_base;
    let fired = counter(router.addr(), "router.hedge.fired") - fired_base;
    assert!(
        exhausted >= 1.0,
        "budget never refused a hedge (fired {fired}, exhausted {exhausted})"
    );
    assert!(fired <= 2.0, "a 1-token bucket cannot fund {fired} hedges");

    failpoint::remove("router.hop.slow");
    router.shutdown().expect("router shutdown");
    shutdown_fleet(fleet);
}

/// A replica that is unreachable at discovery starts with its breaker
/// open and *stays* skipped: no ping-pong of connect attempts against
/// the corpse (zero hop failures over the whole run), zero
/// client-visible errors, full — not partial — answers off the healthy
/// sibling.
#[test]
fn replica_dead_at_discovery_is_skipped_without_ping_pong() {
    let _scenario = Scenario::setup();
    let artifact = fixture();
    let expected = expected_body(&artifact);
    let shards = artifact.split(2, None).expect("split");

    // Shard 0: one live replica + one address that refuses connections
    // (bound, then dropped). Shard 1: two live replicas.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let live0 = bind_shard(&shards[0], "127.0.0.1:0");
    let live1a = bind_shard(&shards[1], "127.0.0.1:0");
    let live1b = bind_shard(&shards[1], "127.0.0.1:0");
    let groups = vec![
        vec![dead_addr, live0.addr().to_string()],
        vec![live1a.addr().to_string(), live1b.addr().to_string()],
    ];
    let router = start_router(
        &groups,
        RouterConfig {
            hedge_after: None, // isolate the breaker from the hedger
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_secs(60), // no half-open during the test
            },
            reprobe_interval: None,
            ..RouterConfig::default()
        },
    );

    assert_eq!(
        breaker_states(router.addr(), 0),
        vec!["open", "closed"],
        "discovery must trip the unreachable replica's breaker"
    );
    let failures_base = counter(router.addr(), "router.hop.failures");
    for round in 0..12 {
        let (status, body) = send(router.addr(), "POST", "/v1/align/topk", Some(QUERY));
        assert_eq!(status, 200, "round {round}: {body}");
        assert_eq!(body, expected, "round {round}: sibling answer drifted");
    }
    // No ping-pong: with the breaker open and 60s of cooldown, the dead
    // address was never dialed — a single post-discovery hop failure
    // would show up here.
    assert_eq!(
        counter(router.addr(), "router.hop.failures") - failures_base,
        0.0,
        "the tripped replica was redialed"
    );
    assert_eq!(breaker_states(router.addr(), 0), vec!["open", "closed"]);

    router.shutdown().expect("router shutdown");
    for h in [live0, live1a, live1b] {
        h.shutdown().expect("shard shutdown");
    }
}

/// A flapping replica — alternating fail/succeed, driven by the
/// `router.scatter` trigger, which faults each query's *first-choice*
/// candidate while advisory demotion flips which replica that is — is
/// contained by its breaker instead of ping-ponging selection: with a
/// 1-failure threshold each fault trips the faulted replica immediately,
/// open replicas are *skipped* during the 60s cooldown
/// (`router.breaker.skipped`), and every response during and after the
/// flap schedule is a byte-identical 200 off whichever sibling is
/// healthy — zero client-visible errors.
#[test]
fn flapping_replica_is_contained_by_breakers_without_client_errors() {
    let _scenario = Scenario::setup();
    let artifact = fixture();
    let expected = expected_body(&artifact);
    let (fleet, groups, _) = start_fleet(&artifact);
    let router = start_router(
        &groups,
        RouterConfig {
            hedge_after: None,
            breaker: BreakerConfig {
                failure_threshold: 1, // every flap failure trips immediately
                cooldown: Duration::from_secs(60),
            },
            reprobe_interval: None,
            ..RouterConfig::default()
        },
    );
    let opened_base = counter(router.addr(), "router.breaker.opened");
    let skipped_base = counter(router.addr(), "router.breaker.skipped");
    let faults_base = counter(router.addr(), "router.hop.failpoint_faults");
    // Three flap strikes; each lands on the current first-choice replica
    // (alternating as advisory health flips), then the schedule ends.
    failpoint::cfg("router.scatter", "3*trigger").expect("configure failpoint");

    for round in 0..10 {
        let (status, body) = send(router.addr(), "POST", "/v1/align/topk", Some(QUERY));
        assert_eq!(
            status, 200,
            "round {round}: flap leaked to the client: {body}"
        );
        assert_eq!(body, expected, "round {round}: flap changed the bytes");
    }
    assert_eq!(
        counter(router.addr(), "router.hop.failpoint_faults") - faults_base,
        3.0,
        "every flap strike should have landed"
    );
    assert!(
        counter(router.addr(), "router.breaker.opened") - opened_base >= 3.0,
        "each strike must trip the struck replica's breaker"
    );
    // No ping-pong: once open and inside the 60s cooldown, a flapped
    // replica is skipped during selection, not retried into.
    assert!(
        counter(router.addr(), "router.breaker.skipped") - skipped_base >= 1.0,
        "open breakers must be skipped during candidate selection"
    );

    failpoint::remove("router.scatter");
    router.shutdown().expect("router shutdown");
    shutdown_fleet(fleet);
}

/// Full shard blackout, then recovery: killing both replicas of a shard
/// degrades loudly (`"partial":true`, breakers open on /healthz, the
/// `router.breaker.opened` counter moving) with zero 5xx, and once the
/// replicas restart on their old addresses the *background re-probe
/// loop* — no live traffic needed — closes the breakers and the very
/// next answers are full and byte-identical again.
#[test]
fn shard_blackout_trips_breakers_and_reprobe_heals_the_restart() {
    let _scenario = Scenario::setup();
    let artifact = fixture();
    let expected = expected_body(&artifact);
    let (mut fleet, groups, shards) = start_fleet(&artifact);
    let router = start_router(
        &groups,
        RouterConfig {
            hedge_after: None,
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(100),
            },
            reprobe_interval: Some(Duration::from_millis(50)),
            ..RouterConfig::default()
        },
    );

    let opened_base = counter(router.addr(), "router.breaker.opened");
    let healed_base = counter(router.addr(), "router.reprobe.healed");

    // Blackout: kill both replicas of shard 1.
    let victim_addrs = groups[1].clone();
    for h in fleet.remove(1) {
        h.shutdown().expect("shard 1 shutdown");
    }
    // Enough sequential requests to run every replica's failure streak
    // past the threshold. Every response must be a *loud* 200.
    for round in 0..5 {
        let (status, body) = send(router.addr(), "POST", "/v1/align/topk", Some(QUERY));
        assert_eq!(
            status, 200,
            "round {round}: blackout must shed, not error: {body}"
        );
        assert!(
            body.contains("\"partial\":true"),
            "round {round}: silent under-answer: {body}"
        );
    }
    assert!(
        counter(router.addr(), "router.breaker.opened") - opened_base >= 2.0,
        "both shard-1 breakers should have tripped"
    );
    let states = breaker_states(router.addr(), 1);
    assert!(
        states.iter().any(|s| s == "open"),
        "no open breaker on the blacked-out shard: {states:?}"
    );

    // Recovery: restart both replicas on their original addresses and
    // *wait* — only the re-probe loop may heal them (no client traffic
    // between restart and the healthz flip).
    let restarted: Vec<ServerHandle> = victim_addrs
        .iter()
        .map(|addr| bind_shard(&shards[1], addr))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let states = breaker_states(router.addr(), 1);
        if states.iter().all(|s| s == "closed") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "re-probe loop never healed the restarted replicas: {states:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        counter(router.addr(), "router.reprobe.healed") - healed_base >= 2.0,
        "healing must be attributed to the re-probe loop"
    );
    let (status, body) = send(router.addr(), "POST", "/v1/align/topk", Some(QUERY));
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body, expected,
        "post-recovery answer must be full and exact"
    );

    router.shutdown().expect("router shutdown");
    shutdown_fleet(fleet);
    for h in restarted {
        h.shutdown().expect("restarted shard shutdown");
    }
}

/// Deadline propagation end to end: a shard stalled past the routed
/// request's budget is abandoned by the router *and* sheds its own
/// doomed work — the flush-time deadline check fires on the shard
/// (`serve.topk.deadline_exceeded`), proving the budget the router
/// stamped into `x-galign-deadline-ms` clamped the shard-side deadline
/// (`serve.topk.deadline_clamped`). The routed answer is a loud partial
/// in bounded time, never a hang.
#[test]
fn stalled_shard_is_shed_by_its_propagated_deadline() {
    let _scenario = Scenario::setup();
    let artifact = fixture();
    let (fleet, groups, _) = start_fleet(&artifact);
    let router = start_router(
        &groups,
        RouterConfig {
            request_timeout: Duration::from_millis(250),
            hedge_after: None,
            reprobe_interval: None,
            ..RouterConfig::default()
        },
    );
    let exceeded_base = counter(router.addr(), "serve.topk.deadline_exceeded");
    let clamped_base = counter(router.addr(), "serve.topk.deadline_clamped");
    // Stall every shard flush far past the router's 250ms budget. (The
    // serve nodes run in-process, so the global failpoint reaches their
    // worker threads.)
    failpoint::cfg("serve.topk.stall", "delay(600)").expect("configure failpoint");

    let t0 = Instant::now();
    let (status, body) = send(router.addr(), "POST", "/v1/align/topk", Some(QUERY));
    let elapsed = t0.elapsed();
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"partial\":true"),
        "stalled shards must degrade loudly: {body}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline did not bound the request: {elapsed:?}"
    );

    // The shards shed their stalled flushes instead of computing doomed
    // answers; the counters land once the 600ms stalls drain.
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        let exceeded = counter(router.addr(), "serve.topk.deadline_exceeded") - exceeded_base;
        let clamped = counter(router.addr(), "serve.topk.deadline_clamped") - clamped_base;
        if exceeded >= 1.0 && clamped >= 1.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shards never shed: exceeded={exceeded} clamped={clamped}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    failpoint::remove("serve.topk.stall");
    router.shutdown().expect("router shutdown");
    shutdown_fleet(fleet);
}
