//! Replica failure under load: killing one replica of a shard mid-burst
//! must be invisible to clients — zero errors, responses byte-identical
//! to a single node holding the full matrix — because the router fails
//! over to the surviving replica. Losing *every* replica of a shard
//! must degrade loudly, never silently: `"partial": true` in the body
//! and `degraded` on the router's `/healthz`.
//!
//! A failpoints-gated variant drives the same guarantee through the
//! `router.scatter` failpoint (deterministic hop blackouts) instead of
//! real process death.

use galign_router::server::{Router, RouterConfig, RouterHandle};
use galign_router::topology::Topology;
use galign_serve::artifact::{Artifact, Mat};
use galign_serve::client::ClientConfig;
use galign_serve::json;
use galign_serve::server::{ServeConfig, Server, ServerHandle};
use galign_serve::topk::TopkIndex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

fn fixture() -> Artifact {
    let mut rng = Rng(7 | 1);
    let mk = |n: usize, d: usize, rng: &mut Rng| {
        Mat::new(n, d, (0..n * d).map(|_| rng.signed_unit()).collect()).unwrap()
    };
    let source = mk(6, 4, &mut rng);
    let target = mk(12, 4, &mut rng);
    Artifact::new(vec![1.0], vec![source], vec![target], false).unwrap()
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        request_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

/// 2 shards x 2 replicas; returns handles as `fleet[shard][replica]`.
fn start_fleet(artifact: &Artifact) -> (Vec<Vec<ServerHandle>>, Vec<Vec<String>>) {
    let shards = artifact.split(2, None).expect("split");
    let mut fleet = Vec::new();
    let mut groups = Vec::new();
    for shard in &shards {
        let mut row = Vec::new();
        let mut group = Vec::new();
        for _ in 0..2 {
            let handle = Server::bind(
                "127.0.0.1:0",
                TopkIndex::from_artifact(shard.clone()),
                serve_cfg(),
            )
            .expect("bind shard node")
            .spawn();
            group.push(handle.addr().to_string());
            row.push(handle);
        }
        fleet.push(row);
        groups.push(group);
    }
    (fleet, groups)
}

fn start_router(groups: &[Vec<String>]) -> RouterHandle {
    let client = ClientConfig {
        max_retries: 1,
        io_timeout: Duration::from_secs(2),
        ..ClientConfig::default()
    };
    let topology = Topology::discover(groups, &client).expect("discover topology");
    Router::bind(
        "127.0.0.1:0",
        topology,
        RouterConfig {
            workers: 4,
            ..RouterConfig::default()
        },
    )
    .expect("bind router")
    .spawn()
}

fn send(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

const QUERIES: [&str; 3] = [
    r#"{"nodes": [0, 1, 2], "k": 4}"#,
    r#"{"nodes": [3, 4, 5], "k": 12}"#,
    r#"{"node": 2, "k": 1}"#,
];

/// Single-node ground truth for every burst query.
fn expected_bodies(artifact: &Artifact) -> Vec<String> {
    let single = Server::bind(
        "127.0.0.1:0",
        TopkIndex::from_artifact(artifact.clone()),
        serve_cfg(),
    )
    .expect("bind single")
    .spawn();
    let bodies = QUERIES
        .iter()
        .map(|q| {
            let (status, body) = send(single.addr(), "POST", "/v1/align/topk", Some(q));
            assert_eq!(status, 200, "{body}");
            body
        })
        .collect();
    single.shutdown().expect("single shutdown");
    bodies
}

/// Fires `rounds` rounds of all queries from `threads` client threads;
/// every response must be a 200 with the exact expected bytes.
fn burst(addr: SocketAddr, expected: &Arc<Vec<String>>, threads: usize, rounds: usize) {
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let expected = Arc::clone(expected);
            std::thread::spawn(move || {
                for r in 0..rounds {
                    let i = (t + r) % QUERIES.len();
                    let (status, body) = send(addr, "POST", "/v1/align/topk", Some(QUERIES[i]));
                    assert_eq!(status, 200, "client-visible error: {body}");
                    assert_eq!(body, expected[i], "round {r} thread {t}");
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("burst client panicked");
    }
}

#[test]
fn killing_one_replica_mid_burst_is_invisible() {
    let artifact = fixture();
    let expected = Arc::new(expected_bodies(&artifact));
    let (mut fleet, groups) = start_fleet(&artifact);
    let router = start_router(&groups);
    let addr = router.addr();

    // Run the burst on client threads; kill shard 0's first replica
    // partway through.
    let killer_expected = Arc::clone(&expected);
    let burst_join = std::thread::spawn(move || {
        burst(addr, &killer_expected, 4, 30);
    });
    std::thread::sleep(Duration::from_millis(40));
    let victim = fleet[0].remove(0);
    victim.shutdown().expect("victim shutdown");
    burst_join.join().expect("burst failed");

    // Still fully answerable (replica 1 of shard 0 covers), so health
    // recovers to ok once the router has routed around the corpse.
    let (status, body) = send(addr, "POST", "/v1/align/topk", Some(QUERIES[0]));
    assert_eq!(status, 200);
    assert_eq!(body, expected[0]);
    let (status, health) = send(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    let doc = json::parse(&health).unwrap();
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"), "{health}");

    router.shutdown().expect("router shutdown");
    for row in fleet {
        for h in row {
            h.shutdown().expect("shard shutdown");
        }
    }
}

#[test]
fn losing_every_replica_of_a_shard_degrades_loudly() {
    let artifact = fixture();
    let (mut fleet, groups) = start_fleet(&artifact);
    let router = start_router(&groups);
    let addr = router.addr();

    // Kill both replicas of shard 1 (global targets [6, 12)).
    for h in fleet.remove(1) {
        h.shutdown().expect("shard 1 shutdown");
    }

    let (status, body) = send(addr, "POST", "/v1/align/topk", Some(QUERIES[1]));
    assert_eq!(status, 200, "partial answers are 200s: {body}");
    assert!(
        body.contains("\"partial\":true"),
        "missing partial marker: {body}"
    );
    let doc = json::parse(&body).unwrap();
    for entry in doc.get("results").unwrap().as_arr().unwrap() {
        for m in entry.get("matches").unwrap().as_arr().unwrap() {
            let target = m.get("target").unwrap().as_usize().unwrap();
            assert!(target < 6, "target {target} from the dead shard: {body}");
        }
    }

    // The failed scatter marked shard 1's replicas unhealthy: degraded.
    let (status, health) = send(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    let doc = json::parse(&health).unwrap();
    assert_eq!(
        doc.get("status").unwrap().as_str(),
        Some("degraded"),
        "{health}"
    );

    router.shutdown().expect("router shutdown");
    for row in fleet {
        for h in row {
            h.shutdown().expect("shard shutdown");
        }
    }
}

/// Deterministic hop blackouts through the `router.scatter` failpoint:
/// each triggered hop is treated as a dead replica, and with two
/// replicas per shard every answer still comes back byte-identical.
#[cfg(feature = "failpoints")]
#[test]
fn scatter_failpoint_blackouts_fail_over_bit_identically() {
    use galign_telemetry::failpoint::{self, Scenario};
    let _scenario = Scenario::setup();
    let artifact = fixture();
    let expected = Arc::new(expected_bodies(&artifact));
    let (fleet, groups) = start_fleet(&artifact);
    let router = start_router(&groups);
    failpoint::cfg("router.scatter", "8*trigger(blackout)").expect("configure failpoint");

    burst(router.addr(), &expected, 3, 12);

    let metrics = {
        let (status, body) = send(router.addr(), "GET", "/metrics", None);
        assert_eq!(status, 200);
        body
    };
    let doc = json::parse(&metrics).unwrap();
    let faults = doc
        .get("counters")
        .unwrap()
        .get("router.hop.failpoint_faults")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    assert!(faults >= 1.0, "failpoint never fired: {metrics}");

    failpoint::remove("router.scatter");
    router.shutdown().expect("router shutdown");
    for row in fleet {
        for h in row {
            h.shutdown().expect("shard shutdown");
        }
    }
}
