//! Routed == single-node, byte for byte.
//!
//! The tentpole guarantee of the router: a top-k query answered by a
//! sharded fleet is **bit-identical** to the same query answered by one
//! node holding the full embedding matrix — for any shard split (uneven,
//! single-shard, many shards), ties straddling merge boundaries, and
//! `k` larger than any single shard's row count. A separate test pins
//! the ANN contract per shard: the ANN engine may miss targets, never
//! mis-score one, so every routed ANN hit carries the exact kernel's
//! score bits.

use galign_router::server::{Router, RouterConfig, RouterHandle};
use galign_router::topology::Topology;
use galign_serve::artifact::{Artifact, Mat};
use galign_serve::client::ClientConfig;
use galign_serve::json;
use galign_serve::server::{ServeConfig, Server, ServerHandle};
use galign_serve::topk::{Backend, TopkIndex};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// xorshift64* — deterministic fixtures without external RNG deps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [-1, 1).
    fn signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

fn random_layers(rng: &mut Rng, n: usize, dims: &[usize]) -> Vec<Mat> {
    dims.iter()
        .map(|&d| {
            let data: Vec<f64> = (0..n * d).map(|_| rng.signed_unit()).collect();
            Mat::new(n, d, data).expect("shape by construction")
        })
        .collect()
}

fn random_artifact(seed: u64, source: usize, target: usize, dims: &[usize]) -> Artifact {
    let mut rng = Rng::new(seed);
    Artifact::new(
        vec![1.0 / dims.len() as f64; dims.len()],
        random_layers(&mut rng, source, dims),
        random_layers(&mut rng, target, dims),
        false,
    )
    .expect("fixture artifact")
}

/// Target rows cycle through 3 prototypes, so every score is exactly
/// tied with every ⌈rows/3⌉-th row — including across any shard
/// boundary. The tie contract (ascending global id) must survive the
/// merge for these to come back byte-identical.
fn tie_heavy_artifact(rows: usize) -> Artifact {
    let mut rng = Rng::new(99);
    let protos: Vec<Vec<f64>> = (0..3)
        .map(|_| (0..4).map(|_| rng.signed_unit()).collect())
        .collect();
    let data: Vec<f64> = (0..rows).flat_map(|r| protos[r % 3].clone()).collect();
    let target = Mat::new(rows, 4, data).unwrap();
    let source = random_layers(&mut rng, 5, &[4]).remove(0);
    Artifact::new(vec![1.0], vec![source], vec![target], false).unwrap()
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        request_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

fn start_single(artifact: &Artifact) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        TopkIndex::from_artifact(artifact.clone()),
        serve_cfg(),
    )
    .expect("bind single node")
    .spawn()
}

/// Splits and serves: `replicas` serve nodes per shard, returning the
/// handles plus the replica address groups for topology discovery.
fn start_fleet(
    artifact: &Artifact,
    num_shards: usize,
    replicas: usize,
    ann: bool,
) -> (Vec<ServerHandle>, Vec<Vec<String>>) {
    let shards = artifact.split(num_shards, None).expect("split");
    let mut handles = Vec::new();
    let mut groups = Vec::new();
    for shard in &shards {
        let mut group = Vec::new();
        for _ in 0..replicas {
            let mut index = TopkIndex::from_artifact(shard.clone());
            let mut cfg = serve_cfg();
            if ann {
                index.build_ann(Backend::Hnsw).expect("per-shard ANN");
                cfg.ann_threshold = Some(1);
            }
            let handle = Server::bind("127.0.0.1:0", index, cfg)
                .expect("bind shard node")
                .spawn();
            group.push(handle.addr().to_string());
            handles.push(handle);
        }
        groups.push(group);
    }
    (handles, groups)
}

fn start_router(groups: &[Vec<String>]) -> RouterHandle {
    start_router_with(groups, RouterConfig::default())
}

fn start_router_with(groups: &[Vec<String>], cfg: RouterConfig) -> RouterHandle {
    let client = ClientConfig {
        max_retries: 1,
        ..ClientConfig::default()
    };
    let topology = Topology::discover(groups, &client).expect("discover topology");
    Router::bind("127.0.0.1:0", topology, cfg)
        .expect("bind router")
        .spawn()
}

/// The most aggressive hedge policy expressible: every shard hop races
/// two replicas from the first instant, unmetered. Byte-identity must be
/// indifferent to which racer wins.
fn hedge_everything() -> RouterConfig {
    RouterConfig {
        hedge_after: Some(Duration::ZERO),
        hedge_adaptive: false,
        hedge_budget_ratio: 0.0, // <= 0 removes the meter
        ..RouterConfig::default()
    }
}

fn send(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn shutdown_all(handles: Vec<ServerHandle>) {
    for h in handles {
        h.shutdown().expect("shard shutdown");
    }
}

#[test]
fn routed_topk_is_byte_identical_across_shard_splits() {
    let rows = 11;
    let artifact = tie_heavy_artifact(rows);
    let single = start_single(&artifact);
    // Uneven splits (11 rows over 2, 3, 5 shards), the degenerate
    // single-shard split, and k exceeding every shard's row count.
    for num_shards in [1usize, 2, 3, 5] {
        let (fleet, groups) = start_fleet(&artifact, num_shards, 1, false);
        let router = start_router(&groups);
        let queries = [
            r#"{"nodes": [0, 1, 2, 3, 4], "k": 1}"#.to_string(),
            r#"{"nodes": [0, 2, 4], "k": 3}"#.to_string(),
            r#"{"node": 1, "k": 4}"#.to_string(),
            r#"{"nodes": [0, 1, 2, 3, 4]}"#.to_string(), // default k
            format!("{{\"nodes\": [4, 0, 3], \"k\": {rows}}}"), // k == all rows
            format!("{{\"nodes\": [1], \"k\": {}}}", rows + 7), // k > shard rows
            r#"{"nodes": [2, 3], "k": 5, "theta": [1.0]}"#.to_string(),
        ];
        for body in &queries {
            let (s1, b1) = send(single.addr(), "POST", "/v1/align/topk", Some(body));
            let (s2, b2) = send(router.addr(), "POST", "/v1/align/topk", Some(body));
            assert_eq!(s1, 200, "single: {b1}");
            assert_eq!(s2, 200, "routed ({num_shards} shards): {b2}");
            assert_eq!(b1, b2, "{num_shards} shards, body {body}");
        }
        // Error parity: the router rejects what the fleet would reject.
        for bad in ["{", r#"{"nodes": []}"#, r#"{"node": 0, "k": 0}"#] {
            let (s1, _) = send(single.addr(), "POST", "/v1/align/topk", Some(bad));
            let (s2, _) = send(router.addr(), "POST", "/v1/align/topk", Some(bad));
            assert_eq!(s1, s2, "status parity for {bad}");
        }
        // Out-of-range node: shards reject it, the router forwards the
        // shard's 400 verbatim.
        let oob = format!("{{\"node\": {}}}", 5);
        let (s1, b1) = send(single.addr(), "POST", "/v1/align/topk", Some(&oob));
        let (s2, b2) = send(router.addr(), "POST", "/v1/align/topk", Some(&oob));
        assert_eq!((s1, b1), (s2, b2), "forwarded 400 must match bytes");
        router.shutdown().expect("router shutdown");
        shutdown_all(fleet);
    }
    single.shutdown().expect("single shutdown");
}

#[test]
fn routed_v2_batches_are_byte_identical_to_single_node() {
    let rows = 11;
    let artifact = tie_heavy_artifact(rows);
    let single = start_single(&artifact);
    for num_shards in [1usize, 3] {
        let (fleet, groups) = start_fleet(&artifact, num_shards, 1, false);
        let router = start_router(&groups);
        // Mixed batch: defaults, ties across shard boundaries, per-query
        // θ, k beyond every shard's rows, and two per-slot rejections
        // (bad k, out-of-range node) that must come back as slot errors,
        // not whole-request failures.
        let envelope = format!(
            "{{\"queries\": [\
             {{\"nodes\": [0, 1, 2], \"k\": 4}}, \
             {{\"node\": 3}}, \
             {{\"nodes\": [4, 0], \"k\": {}, \"theta\": [1.0]}}, \
             {{\"nodes\": [1], \"k\": 0}}, \
             {{\"node\": 9, \"k\": 2}}]}}",
            rows + 5
        );
        let (s1, b1) = send(single.addr(), "POST", "/v2/align/topk", Some(&envelope));
        let (s2, b2) = send(router.addr(), "POST", "/v2/align/topk", Some(&envelope));
        assert_eq!(s1, 200, "single: {b1}");
        assert_eq!(s2, 200, "routed ({num_shards} shards): {b2}");
        assert_eq!(b1, b2, "{num_shards} shards: routed v2 bytes drifted");
        // Envelope-level failures keep status parity too.
        for bad in ["{", r#"{"nodes": [0]}"#, r#"{"queries": []}"#] {
            let (s1, _) = send(single.addr(), "POST", "/v2/align/topk", Some(bad));
            let (s2, _) = send(router.addr(), "POST", "/v2/align/topk", Some(bad));
            assert_eq!(s1, s2, "status parity for {bad}");
        }
        router.shutdown().expect("router shutdown");
        shutdown_all(fleet);
    }
    single.shutdown().expect("single shutdown");
}

#[test]
fn routed_ann_hits_carry_exact_score_bits() {
    let artifact = random_artifact(41, 7, 60, &[5, 3]);
    // Ground truth: the exact kernel's score for every (node, target).
    let exact = TopkIndex::from_artifact(artifact.clone());
    let (fleet, groups) = start_fleet(&artifact, 3, 1, true);
    let router = start_router(&groups);
    let (status, body) = send(
        router.addr(),
        "POST",
        "/v1/align/topk",
        Some(r#"{"nodes": [0, 1, 2, 3, 4, 5, 6], "k": 8}"#),
    );
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).expect("routed JSON");
    assert_eq!(
        doc.get("engine").unwrap().as_str(),
        Some("ann"),
        "per-shard ANN must be reported: {body}"
    );
    let results = doc.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 7);
    for (node, entry) in results.iter().enumerate() {
        let truth: std::collections::HashMap<usize, f64> = exact
            .topk(node, 60, None)
            .unwrap()
            .into_iter()
            .map(|h| (h.target, h.score))
            .collect();
        let matches = entry.get("matches").unwrap().as_arr().unwrap();
        assert!(!matches.is_empty());
        let mut prev = f64::INFINITY;
        for m in matches {
            let target = m.get("target").unwrap().as_usize().unwrap();
            let score = m.get("score").unwrap().as_f64().unwrap();
            let want = truth[&target];
            assert_eq!(
                score.to_bits(),
                want.to_bits(),
                "node {node} target {target}: ANN score drifted"
            );
            assert!(score <= prev, "merged ANN hits out of order");
            prev = score;
        }
    }
    router.shutdown().expect("router shutdown");
    shutdown_all(fleet);
}

/// Hedging is a *race*: with the hedge delay at zero every shard query
/// fires at both replicas and whichever finishes first is the answer.
/// Since replicas of a shard serve the same artifact and the response
/// path is deterministic, the winner must not be observable — routed
/// bytes stay identical to the single node's no matter who wins, across
/// repeated rounds so both orderings actually occur.
#[test]
fn hedged_races_are_byte_identical_whichever_replica_wins() {
    let rows = 11;
    let artifact = tie_heavy_artifact(rows);
    let single = start_single(&artifact);
    let (fleet, groups) = start_fleet(&artifact, 2, 2, false);
    let router = start_router_with(&groups, hedge_everything());
    let queries = [
        r#"{"nodes": [0, 1, 2, 3, 4], "k": 3}"#.to_string(),
        format!("{{\"nodes\": [4, 0, 3], \"k\": {rows}}}"),
        r#"{"nodes": [2, 3], "k": 5, "theta": [1.0]}"#.to_string(),
    ];
    for round in 0..10 {
        for body in &queries {
            let (s1, b1) = send(single.addr(), "POST", "/v1/align/topk", Some(body));
            let (s2, b2) = send(router.addr(), "POST", "/v1/align/topk", Some(body));
            assert_eq!((s1, s2), (200, 200), "round {round}: {b1} / {b2}");
            assert_eq!(b1, b2, "round {round}: hedged race changed the bytes");
        }
    }
    router.shutdown().expect("router shutdown");
    shutdown_all(fleet);
    single.shutdown().expect("single shutdown");
}

#[test]
fn router_healthz_reports_topology() {
    let artifact = tie_heavy_artifact(9);
    let (fleet, groups) = start_fleet(&artifact, 3, 1, false);
    let router = start_router(&groups);
    let (status, body) = send(router.addr(), "GET", "/healthz", None);
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).expect("healthz JSON");
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(doc.get("role").unwrap().as_str(), Some("router"));
    assert_eq!(doc.get("num_shards").unwrap().as_usize(), Some(3));
    assert_eq!(doc.get("target_nodes").unwrap().as_usize(), Some(9));
    let shards = doc.get("shards").unwrap().as_arr().unwrap();
    assert_eq!(shards.len(), 3);
    for (i, s) in shards.iter().enumerate() {
        assert_eq!(s.get("shard_id").unwrap().as_usize(), Some(i));
        assert_eq!(s.get("healthy").unwrap().as_usize(), Some(1));
    }
    router.shutdown().expect("router shutdown");
    shutdown_all(fleet);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random artifact, any shard count, any k: routed bytes equal
    /// single-node bytes.
    #[test]
    fn routed_matches_single_node_for_random_splits(
        seed in 1u64..1000,
        target in 6usize..14,
        num_shards in 1usize..4,
        k in 1usize..9,
    ) {
        let num_shards = num_shards.min(target);
        let artifact = random_artifact(seed, 4, target, &[3, 2]);
        let single = start_single(&artifact);
        let (fleet, groups) = start_fleet(&artifact, num_shards, 1, false);
        let router = start_router(&groups);
        let body = format!("{{\"nodes\": [0, 1, 2, 3], \"k\": {k}}}");
        let (s1, b1) = send(single.addr(), "POST", "/v1/align/topk", Some(&body));
        let (s2, b2) = send(router.addr(), "POST", "/v1/align/topk", Some(&body));
        prop_assert_eq!(s1, 200, "single: {}", b1);
        prop_assert_eq!(s2, 200, "routed: {}", b2);
        prop_assert_eq!(b1, b2, "seed {} target {} shards {}", seed, target, num_shards);
        router.shutdown().expect("router shutdown");
        shutdown_all(fleet);
        single.shutdown().expect("single shutdown");
    }

    /// The hedged variant of the property: two replicas per shard, the
    /// hedge fired on every hop. Whichever replica wins each race, the
    /// routed bytes must equal the single node's.
    #[test]
    fn hedged_routed_matches_single_node_for_random_splits(
        seed in 1u64..1000,
        target in 6usize..12,
        num_shards in 1usize..3,
        k in 1usize..9,
    ) {
        let num_shards = num_shards.min(target);
        let artifact = random_artifact(seed, 4, target, &[3, 2]);
        let single = start_single(&artifact);
        let (fleet, groups) = start_fleet(&artifact, num_shards, 2, false);
        let router = start_router_with(&groups, hedge_everything());
        let body = format!("{{\"nodes\": [0, 1, 2, 3], \"k\": {k}}}");
        let (s1, b1) = send(single.addr(), "POST", "/v1/align/topk", Some(&body));
        let (s2, b2) = send(router.addr(), "POST", "/v1/align/topk", Some(&body));
        prop_assert_eq!(s1, 200, "single: {}", b1);
        prop_assert_eq!(s2, 200, "hedged routed: {}", b2);
        prop_assert_eq!(b1, b2, "seed {} target {} shards {}", seed, target, num_shards);
        router.shutdown().expect("router shutdown");
        shutdown_all(fleet);
        single.shutdown().expect("single shutdown");
    }
}
