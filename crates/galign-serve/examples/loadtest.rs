//! Load generator for a running `galign serve` instance.
//!
//! Hammers `POST /v1/align/topk` with N concurrent clients and reports
//! p50/p95/p99 latency plus throughput, so serving performance can sit
//! next to the kernel benchmarks in the experiment trajectory.
//!
//! ```text
//! cargo run --release -p galign-serve --example loadtest -- \
//!     --addr 127.0.0.1:8080 --requests 2000 --concurrency 8 --k 10 --batch 4
//! ```
//!
//! Each thread drives a [`galign_serve::client::Client`], so shed `503`s
//! (the server's overload protection) are retried with backoff honoring
//! `Retry-After` rather than counted as failures — the report separates
//! "requests that eventually succeeded after shedding" from hard
//! failures. The node-id range is discovered from `/healthz`. Exits
//! nonzero if any request fails after retries, so CI can gate on it.
//!
//! Every request carries an `x-galign-trace-id` header and the response
//! echo is verified (a mismatch counts as a failure) — so a loadtest run
//! doubles as an end-to-end check of trace propagation. `--untraced`
//! omits the header entirely, for A/B measurements of the propagation
//! overhead against the same server.
//!
//! Works unchanged against a `galign route` scatter-gather router (its
//! `/healthz` reports the same `source_nodes`). `--router` asserts the
//! probed endpoint really is a router (role check) so A/B runs cannot
//! silently hit the wrong tier; `--targets N` overrides the discovered
//! node-id range when the query mix should not come from `/healthz`.
//!
//! `--queries Q` switches to `POST /v2/align/topk`, packing Q independent
//! queries (each of `--batch` nodes) into one envelope per request; every
//! slot of the response is verified. `--open-loop RPS` replaces the
//! closed per-client loop with a fixed aggregate arrival rate: requests
//! fire on schedule regardless of completions and latency is measured
//! from the *scheduled* send time, so queueing delay under overload shows
//! up in the percentiles instead of silently throttling the offered load.
//!
//! `--chaos-summary` snapshots the target's `/metrics` counters around
//! the run and prints the movement of every tail-tolerance counter —
//! hedges fired/won, breakers opened/closed/skipped, re-probe heals,
//! partial answers, deadline sheds — plus this process's own
//! retry-budget spend, so a brownout run reports not just percentiles
//! but *which* defense absorbed the fault.
//!
//! `--quant int8|f16` stamps a `quant` field on every query so the run
//! exercises the server's quantized first-pass scan (responses stay
//! byte-identical, so all verification is unchanged). `--report-rss`
//! appends this process's `VmRSS` (from `/proc/self/status`) and the
//! target's resident artifact bytes (from `/healthz`) to the report,
//! for memory-footprint A/Bs of quantized vs f64 serving.

use galign_serve::api::{self, BatchRequest, TopkRequest};
use galign_serve::client::{Client, ClientConfig};
use galign_serve::json::{self, Json};
use galign_serve::server::TRACE_HEADER;
use galign_serve::testutil::Xorshift;
use galign_serve::QuantMode;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    requests: usize,
    concurrency: usize,
    k: usize,
    batch: usize,
    queries: usize,
    open_loop: Option<f64>,
    seed: u64,
    max_retries: u32,
    untraced: bool,
    router: bool,
    targets: Option<usize>,
    chaos_summary: bool,
    quant: QuantMode,
    report_rss: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        requests: 1000,
        concurrency: 8,
        k: 10,
        batch: 1,
        queries: 0,
        open_loop: None,
        seed: 1,
        max_retries: 5,
        untraced: false,
        router: false,
        targets: None,
        chaos_summary: false,
        quant: QuantMode::Off,
        report_rss: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("--{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = take("addr"),
            "--requests" => args.requests = take("requests").parse().expect("--requests"),
            "--concurrency" => {
                args.concurrency = take("concurrency").parse().expect("--concurrency");
            }
            "--k" => args.k = take("k").parse().expect("--k"),
            "--batch" => args.batch = take("batch").parse().expect("--batch"),
            "--queries" => args.queries = take("queries").parse().expect("--queries"),
            "--open-loop" => {
                args.open_loop = Some(take("open-loop").parse().expect("--open-loop"));
            }
            "--seed" => args.seed = take("seed").parse().expect("--seed"),
            "--max-retries" => {
                args.max_retries = take("max-retries").parse().expect("--max-retries");
            }
            "--untraced" => args.untraced = true,
            "--router" => args.router = true,
            "--targets" => args.targets = Some(take("targets").parse().expect("--targets")),
            "--chaos-summary" => args.chaos_summary = true,
            "--quant" => {
                let value = take("quant");
                args.quant = QuantMode::from_name(&value).unwrap_or_else(|| {
                    panic!("--quant must be 'off', 'int8' or 'f16', got '{value}'")
                });
            }
            "--report-rss" => args.report_rss = true,
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: loadtest [--addr HOST:PORT] [--requests N] \
                     [--concurrency C] [--k K] [--batch B] [--queries Q] [--open-loop RPS] \
                     [--seed S] [--max-retries R] [--untraced] [--router] [--targets N] \
                     [--chaos-summary] [--quant off|int8|f16] [--report-rss]"
                );
                std::process::exit(2);
            }
        }
    }
    args.concurrency = args.concurrency.max(1);
    args.batch = args.batch.max(1);
    args
}

fn client_config(max_retries: u32, jitter_seed: u64, untraced: bool) -> ClientConfig {
    ClientConfig {
        max_retries,
        io_timeout: Duration::from_secs(30),
        jitter_seed,
        trace_header: !untraced,
        ..ClientConfig::default()
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((q / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Tail-tolerance counters worth diffing across a chaos run: the target's
/// hedging, circuit-breaker, re-probe, partial-answer, and deadline-shed
/// activity, plus the load generator's own retry-budget spend.
const CHAOS_PREFIXES: &[&str] = &[
    "router.hedge.",
    "router.breaker.",
    "router.reprobe.",
    "router.scatter.partial",
    "router.topk.partial",
    "serve.topk.deadline",
];

const CHAOS_LOCAL: &[&str] = &[
    "client.retry_budget.exhausted",
    "client.http.shed_responses",
    "client.http.io_errors",
];

/// Snapshot of the target's `/metrics` counters (remote) and this
/// process's client-side counters (local).
fn chaos_snapshot(probe: &Client) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Ok(resp) = probe.get("/metrics") {
        if let Ok(doc) = json::parse(&resp.body_str()) {
            if let Some(counters) = doc.get("counters").and_then(Json::as_obj) {
                for (name, value) in counters {
                    if CHAOS_PREFIXES.iter().any(|p| name.starts_with(p)) {
                        out.insert(name.clone(), value.as_f64().unwrap_or(0.0));
                    }
                }
            }
        }
    }
    for name in CHAOS_LOCAL {
        out.insert(
            format!("local {name}"),
            galign_telemetry::counter_value(name) as f64,
        );
    }
    out
}

/// This process's resident set size in kB, read from `/proc/self/status`
/// (std-only). `None` off Linux or if the field is absent — the report
/// degrades to printing "unavailable" rather than failing the run.
fn vm_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Prints the memory-footprint section: this process's VmRSS plus the
/// resident artifact bytes the target reported on `/healthz` (f64 and
/// quantized separately, when the server is new enough to report them).
fn print_rss_report(health: Option<&Json>) {
    match vm_rss_kb() {
        Some(kb) => println!("memory: loadtest VmRSS {kb} kB"),
        None => println!("memory: loadtest VmRSS unavailable (no /proc/self/status)"),
    }
    let bytes = |key: &str| health.and_then(|h| h.get(key).and_then(Json::as_usize));
    if let (Some(f64_bytes), Some(quant_bytes)) =
        (bytes("artifact_f64_bytes"), bytes("artifact_quant_bytes"))
    {
        println!(
            "memory: target artifact {} bytes resident (f64 {f64_bytes}, quantized {quant_bytes})",
            f64_bytes + quant_bytes
        );
    }
}

/// Prints the counter movement between two snapshots; zero-delta rows are
/// elided so a calm run prints a single line.
fn print_chaos_summary(before: &BTreeMap<String, f64>, after: &BTreeMap<String, f64>) {
    let mut moved = false;
    for (name, end) in after {
        let delta = end - before.get(name).copied().unwrap_or(0.0);
        if delta > 0.0 {
            println!("chaos: {name} +{delta:.0}");
            moved = true;
        }
    }
    if !moved {
        println!("chaos: no hedge/breaker/reprobe/deadline counter moved during the run");
    }
}

fn main() {
    let args = parse_args();

    // Discover the queryable node range from the server itself.
    let probe = Client::with_config(
        &args.addr,
        client_config(args.max_retries, args.seed, args.untraced),
    )
    .unwrap_or_else(|e| {
        eprintln!("loadtest: bad address {}: {e}", args.addr);
        std::process::exit(1);
    });
    let health = probe.get("/healthz").unwrap_or_else(|e| {
        eprintln!("loadtest: server unreachable: {e}");
        std::process::exit(1);
    });
    assert_eq!(
        health.status,
        200,
        "healthz returned {}: {}",
        health.status,
        health.body_str()
    );
    let doc = json::parse(&health.body_str()).ok();
    let role = doc
        .as_ref()
        .and_then(|h| h.get("role").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| "serve".to_string());
    if args.router && role != "router" {
        eprintln!(
            "loadtest: --router given but {} reports role '{role}'",
            args.addr
        );
        std::process::exit(1);
    }
    let shards = doc
        .as_ref()
        .and_then(|h| h.get("num_shards").and_then(Json::as_usize));
    // --targets overrides the discovered node-id range (queries draw
    // source ids below it), e.g. to replay a single-node id mix against
    // a router fronting a differently sized fixture.
    let nodes = args.targets.or_else(|| {
        doc.as_ref()
            .and_then(|h| h.get("source_nodes").and_then(Json::as_usize))
    });
    let nodes = nodes.unwrap_or_else(|| {
        eprintln!(
            "loadtest: healthz did not report source_nodes (pass --targets N): {}",
            health.body_str()
        );
        std::process::exit(1);
    });
    println!(
        "loadtest: {} requests x {} clients against {} ({role}{}, {} source nodes, k={}, batch={}{}{}{}{})",
        args.requests,
        args.concurrency,
        args.addr,
        shards.map_or(String::new(), |s| format!(", {s} shards")),
        nodes,
        args.k,
        args.batch,
        if args.queries > 0 {
            format!(", v2 x{} queries", args.queries)
        } else {
            String::new()
        },
        args.open_loop
            .map_or(String::new(), |r| format!(", open-loop {r:.0} req/s")),
        if args.untraced { ", untraced" } else { "" },
        if args.quant == QuantMode::Off {
            String::new()
        } else {
            format!(", quant {}", args.quant)
        }
    );

    let chaos_before = args.chaos_summary.then(|| chaos_snapshot(&probe));

    let per_client = args.requests.div_ceil(args.concurrency);
    // Open loop: each of C clients fires every C/RPS seconds, offering an
    // aggregate RPS independent of how fast responses come back.
    let interval = args
        .open_loop
        .map(|rps| Duration::from_secs_f64(args.concurrency as f64 / rps.max(1e-9)));
    let started = Instant::now();
    let mut handles = Vec::new();
    for client_id in 0..args.concurrency {
        let addr = args.addr.clone();
        let (k, batch, queries, seed, max_retries) = (
            args.k,
            args.batch,
            args.queries,
            args.seed,
            args.max_retries,
        );
        let (untraced, quant) = (args.untraced, args.quant);
        handles.push(std::thread::spawn(move || {
            let thread_seed = seed ^ (client_id as u64).wrapping_mul(0x9e37);
            let client =
                Client::with_config(&addr, client_config(max_retries, thread_seed, untraced))
                    .expect("address already validated");
            let mut rng = Xorshift::new(thread_seed);
            let mut latencies_ms = Vec::with_capacity(per_client);
            let mut failures = 0usize;
            let mut retried = 0usize;
            let mut shed = 0u32;
            let path = if queries > 0 {
                "/v2/align/topk"
            } else {
                "/v1/align/topk"
            };
            let schedule_base = Instant::now();
            for i in 0..per_client {
                let mut one_query = || {
                    let mut req =
                        TopkRequest::new((0..batch).map(|_| rng.below(nodes)).collect(), k);
                    req.quant = quant;
                    req
                };
                let body = if queries > 0 {
                    let qs: Vec<TopkRequest> = (0..queries).map(|_| one_query()).collect();
                    BatchRequest::to_json(&qs)
                } else {
                    one_query().to_json()
                };
                let t0 = match interval {
                    // Closed loop: send as soon as the last answer landed.
                    None => Instant::now(),
                    // Open loop: send on schedule; latency counts from the
                    // scheduled instant so queueing delay is visible.
                    Some(interval) => {
                        let due = schedule_base + interval * i as u32;
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        due
                    }
                };
                match client.post_json_traced(path, &body) {
                    Ok((resp, stats, trace_id)) if resp.status == 200 => {
                        // Every 200 must echo the trace id the client sent
                        // (unless we deliberately sent none).
                        if !untraced
                            && resp.header(TRACE_HEADER) != Some(trace_id.to_hex().as_str())
                        {
                            eprintln!(
                                "loadtest: trace echo mismatch: sent {}, got {:?}",
                                trace_id.to_hex(),
                                resp.header(TRACE_HEADER)
                            );
                            failures += 1;
                            continue;
                        }
                        // In v2 mode every slot must answer: a per-query
                        // error inside a 200 envelope is still a failure.
                        if queries > 0 {
                            let slots = json::parse(&resp.body_str())
                                .ok()
                                .and_then(|doc| api::parse_batch_response(&doc).ok());
                            match slots {
                                Some(slots)
                                    if slots.len() == queries
                                        && slots.iter().all(Result::is_ok) => {}
                                _ => {
                                    eprintln!("loadtest: bad v2 envelope: {}", resp.body_str());
                                    failures += 1;
                                    continue;
                                }
                            }
                        }
                        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        if stats.tries > 1 {
                            retried += 1;
                        }
                        shed += stats.shed;
                    }
                    Ok((resp, _, _)) => {
                        eprintln!("loadtest: HTTP {}: {}", resp.status, resp.body_str());
                        failures += 1;
                    }
                    Err(e) => {
                        eprintln!("loadtest: {e}");
                        failures += 1;
                    }
                }
            }
            (latencies_ms, failures, retried, shed)
        }));
    }

    let mut latencies = Vec::new();
    let mut failures = 0;
    let mut retried = 0;
    let mut shed = 0u32;
    for h in handles {
        let (l, f, r, s) = h.join().expect("client thread panicked");
        latencies.extend(l);
        failures += f;
        retried += r;
        shed += s;
    }
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);

    let total = latencies.len() + failures;
    println!(
        "loadtest: {} ok / {failures} failed in {wall:.2}s  ({:.0} req/s{})",
        latencies.len(),
        latencies.len() as f64 / wall.max(1e-9),
        if args.queries > 0 {
            format!(
                ", {:.0} queries/s",
                (latencies.len() * args.queries) as f64 / wall.max(1e-9)
            )
        } else {
            String::new()
        }
    );
    println!("loadtest: {retried} requests needed retries; {shed} shed 503 responses absorbed");
    if !args.untraced {
        println!("loadtest: trace-id echo verified on every 200 response");
    }
    if !latencies.is_empty() {
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        println!(
            "latency ms: mean {mean:.3}  p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}",
            percentile(&latencies, 50.0),
            percentile(&latencies, 95.0),
            percentile(&latencies, 99.0),
            latencies.last().copied().unwrap_or(f64::NAN)
        );
    }
    if let Some(before) = chaos_before {
        print_chaos_summary(&before, &chaos_snapshot(&probe));
    }
    if args.report_rss {
        print_rss_report(doc.as_ref());
    }
    if failures > 0 || total == 0 {
        std::process::exit(1);
    }
}
