//! The typed wire surface of the alignment query API, shared by the
//! server, the HTTP client helpers, the router and the loadtest.
//!
//! Requests and responses used to be assembled ad hoc (`format!` strings
//! in the server, the router's gather and the loadtest) and parsed ad hoc
//! on the other side. This module is the single source of truth for both
//! directions:
//!
//! * [`TopkRequest`] — one top-k query, parsed with the server's exact
//!   validation rules (and error strings) or built programmatically and
//!   rendered with [`TopkRequest::to_json`].
//! * [`BatchRequest`] — the `/v2/align/topk` envelope: a `queries` array
//!   of [`TopkRequest`] objects, each validated independently so errors
//!   are reported *per query*, not per request.
//! * [`TopkResponse`] — the response document (`k`, `engine`, optional
//!   `partial`, per-node `results`), rendered byte-identically to the
//!   historical server serializer and parseable back for the router's
//!   scatter-gather merge.
//! * [`error_body`] — the `{"error": "..."}` envelope every non-200
//!   carries.
//!
//! The `/v1` single-query format is the degenerate case throughout: a v1
//! response body is exactly one [`TopkResponse::render`], and a v2
//! response is `{"results":[...]}` where each entry is either a v1-shaped
//! body or an error envelope. That containment is what makes the v1 shim
//! over the batched execution path byte-identical by construction.

use crate::json::{self, Json};
use crate::topk::{EngineMode, QuantMode};
use std::sync::Arc;

pub use galign_matrix::simblock::Hit;

/// Server-side defaults and limits applied while parsing a query.
#[derive(Debug, Clone, Copy)]
pub struct RequestDefaults {
    /// `k` used when the body omits it.
    pub default_k: usize,
    /// Largest accepted `k`.
    pub max_k: usize,
    /// Engine used when the body omits `mode`.
    pub default_mode: EngineMode,
    /// First-pass scan precision when the body omits `quant` (the
    /// server's `--quant` flag).
    pub default_quant: QuantMode,
}

/// One fully resolved top-k query: defaults applied, limits checked.
#[derive(Debug, Clone, PartialEq)]
pub struct TopkRequest {
    /// Source nodes to query (never empty).
    pub nodes: Vec<usize>,
    /// Hits per node.
    pub k: usize,
    /// Per-query θ override (`None` uses the artifact default).
    pub theta: Option<Vec<f64>>,
    /// Engine selection.
    pub mode: EngineMode,
    /// First-pass scan precision (results are bit-identical across
    /// settings; see [`QuantMode`]).
    pub quant: QuantMode,
}

impl TopkRequest {
    /// A plain query with default θ, `auto` engine selection and f64
    /// scans.
    #[must_use]
    pub fn new(nodes: Vec<usize>, k: usize) -> TopkRequest {
        TopkRequest {
            nodes,
            k,
            theta: None,
            mode: EngineMode::Auto,
            quant: QuantMode::Off,
        }
    }

    /// Parses and validates one query object (the `/v1` body shape, also
    /// each element of a `/v2` `queries` array).
    ///
    /// # Errors
    /// The exact human-readable validation messages the server has always
    /// returned (clients grep for substrings like `"k"` and `limit`).
    pub fn from_json(doc: &Json, defaults: &RequestDefaults) -> Result<TopkRequest, String> {
        let nodes: Vec<usize> = match (doc.get("nodes"), doc.get("node")) {
            (Some(arr), _) => arr
                .as_arr()
                .ok_or("\"nodes\" must be an array of node ids")?
                .iter()
                .map(|v| {
                    v.as_usize()
                        .ok_or("\"nodes\" entries must be non-negative integers")
                })
                .collect::<Result<_, _>>()?,
            (None, Some(one)) => vec![one
                .as_usize()
                .ok_or("\"node\" must be a non-negative integer")?],
            (None, None) => return Err("body needs \"nodes\" (array) or \"node\" (integer)".into()),
        };
        if nodes.is_empty() {
            return Err("\"nodes\" must not be empty".into());
        }
        let k = match doc.get("k") {
            None => defaults.default_k,
            Some(v) => v
                .as_usize()
                .filter(|&k| k >= 1)
                .ok_or("\"k\" must be an integer >= 1")?,
        };
        if k > defaults.max_k {
            return Err(format!(
                "\"k\" exceeds the server limit of {}",
                defaults.max_k
            ));
        }
        let theta = match doc.get("theta") {
            None => None,
            Some(v) => Some(
                v.as_arr()
                    .ok_or("\"theta\" must be an array of numbers")?
                    .iter()
                    .map(|w| w.as_f64().ok_or("\"theta\" entries must be numbers"))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        let mode = match doc.get("mode") {
            None => defaults.default_mode,
            Some(v) => v
                .as_str()
                .and_then(EngineMode::from_name)
                .ok_or("\"mode\" must be \"exact\", \"ann\" or \"auto\"")?,
        };
        let quant = match doc.get("quant") {
            None => defaults.default_quant,
            Some(v) => v
                .as_str()
                .and_then(QuantMode::from_name)
                .ok_or("\"quant\" must be \"off\", \"int8\" or \"f16\"")?,
        };
        Ok(TopkRequest {
            nodes,
            k,
            theta,
            mode,
            quant,
        })
    }

    /// [`TopkRequest::from_json`] over raw body bytes.
    ///
    /// # Errors
    /// Same as [`TopkRequest::from_json`], plus UTF-8 and JSON syntax
    /// failures.
    pub fn from_body(body: &[u8], defaults: &RequestDefaults) -> Result<TopkRequest, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        TopkRequest::from_json(&doc, defaults)
    }

    /// Renders the query as a request body (client-side assembly). `k` is
    /// always explicit; θ is included when set; `mode` is included unless
    /// it is `auto` (the universal server default); `quant` is included
    /// unless it is `off`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&n.to_string());
        }
        out.push_str(&format!("],\"k\":{}", self.k));
        if let Some(theta) = &self.theta {
            out.push_str(",\"theta\":[");
            for (i, w) in theta.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json::fmt_f64(*w));
            }
            out.push(']');
        }
        if self.mode != EngineMode::Auto {
            out.push_str(&format!(",\"mode\":\"{}\"", self.mode.name()));
        }
        if self.quant != QuantMode::Off {
            out.push_str(&format!(",\"quant\":\"{}\"", self.quant.name()));
        }
        out.push('}');
        out
    }
}

/// The parsed `/v2/align/topk` envelope: each query validated on its own,
/// so one malformed query cannot fail its batch siblings.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// Per-query parse outcome, in request order.
    pub queries: Vec<Result<TopkRequest, String>>,
}

impl BatchRequest {
    /// Parses a `{"queries": [...]}` envelope. Envelope-level problems
    /// (bad JSON, missing/empty array) fail the whole request; per-query
    /// validation failures land in the corresponding [`BatchRequest::queries`]
    /// slot instead.
    ///
    /// # Errors
    /// Envelope-level problems only.
    pub fn from_body(body: &[u8], defaults: &RequestDefaults) -> Result<BatchRequest, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let queries = doc
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or("body needs \"queries\" (array of query objects)")?;
        if queries.is_empty() {
            return Err("\"queries\" must not be empty".into());
        }
        Ok(BatchRequest {
            queries: queries
                .iter()
                .map(|q| TopkRequest::from_json(q, defaults))
                .collect(),
        })
    }

    /// Renders a `/v2` request body from built queries (client-side
    /// assembly).
    #[must_use]
    pub fn to_json(queries: &[TopkRequest]) -> String {
        let mut out = String::from("{\"queries\":[");
        for (i, q) in queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&q.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// One queried node's matches in a response.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeResult {
    /// The queried source node.
    pub node: usize,
    /// Its hits, best first (shared so cached results render without a
    /// copy).
    pub matches: Arc<Vec<Hit>>,
}

/// A top-k response document — the `/v1` body, each entry of a `/v2`
/// `results` array, and the router's merged reply all share this shape.
#[derive(Debug, Clone, PartialEq)]
pub struct TopkResponse {
    /// Effective `k` after defaulting.
    pub k: usize,
    /// Engine label (`exact`, `ann`, or the router's `mixed`).
    pub engine: String,
    /// Router degradation marker; rendered as `"partial":true` right
    /// after `engine` only when set.
    pub partial: bool,
    /// Per queried node, in request order.
    pub results: Vec<NodeResult>,
}

impl TopkResponse {
    /// Renders the document byte-identically to the historical server
    /// (and router) serializers.
    #[must_use]
    pub fn render(&self) -> String {
        let partial_field = if self.partial {
            "\"partial\":true,"
        } else {
            ""
        };
        let mut out = format!(
            "{{\"k\":{},\"engine\":\"{}\",{partial_field}\"results\":[",
            self.k, self.engine
        );
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"node\":{},\"matches\":[", r.node));
            for (j, hit) in r.matches.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"target\":{},\"score\":{}}}",
                    hit.target,
                    json::fmt_f64(hit.score)
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a response document (the router's gather, clients, tests).
    ///
    /// # Errors
    /// A human-readable message naming the first missing or mistyped
    /// field.
    pub fn from_json(doc: &Json) -> Result<TopkResponse, String> {
        let k = doc
            .get("k")
            .and_then(Json::as_usize)
            .ok_or("response lacks \"k\"")?;
        let engine = doc
            .get("engine")
            .and_then(Json::as_str)
            .ok_or("response lacks \"engine\"")?
            .to_string();
        let partial = matches!(doc.get("partial"), Some(Json::Bool(true)));
        let entries = doc
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("response lacks \"results\"")?;
        let mut results = Vec::with_capacity(entries.len());
        for entry in entries {
            let node = entry
                .get("node")
                .and_then(Json::as_usize)
                .ok_or("result entry lacks \"node\"")?;
            let matches = entry
                .get("matches")
                .and_then(Json::as_arr)
                .ok_or("result entry lacks \"matches\"")?;
            let mut hits = Vec::with_capacity(matches.len());
            for m in matches {
                let target = m
                    .get("target")
                    .and_then(Json::as_usize)
                    .ok_or("match lacks \"target\"")?;
                let score = m
                    .get("score")
                    .and_then(Json::as_f64)
                    .ok_or("match lacks \"score\"")?;
                hits.push(Hit { target, score });
            }
            results.push(NodeResult {
                node,
                matches: Arc::new(hits),
            });
        }
        Ok(TopkResponse {
            k,
            engine,
            partial,
            results,
        })
    }

    /// [`TopkResponse::from_json`] over raw body bytes.
    ///
    /// # Errors
    /// Same as [`TopkResponse::from_json`], plus UTF-8/JSON failures.
    pub fn from_body(body: &[u8]) -> Result<TopkResponse, String> {
        let text = std::str::from_utf8(body).map_err(|_| "response is not UTF-8".to_string())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        TopkResponse::from_json(&doc)
    }
}

/// Outcome of one query inside a `/v2` batch: a full response document or
/// that query's own error message.
pub type QueryOutcome = Result<TopkResponse, String>;

/// Renders the `/v2/align/topk` response envelope: `{"results":[...]}`,
/// one v1-shaped body or error envelope per query, in request order.
#[must_use]
pub fn render_batch(outcomes: &[QueryOutcome]) -> String {
    let mut out = String::from("{\"results\":[");
    for (i, outcome) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match outcome {
            Ok(resp) => out.push_str(&resp.render()),
            Err(msg) => out.push_str(&error_body(msg)),
        }
    }
    out.push_str("]}");
    out
}

/// Parses a `/v2` response envelope back into per-query outcomes.
///
/// # Errors
/// Envelope-level problems; per-query errors land in their slot.
pub fn parse_batch_response(doc: &Json) -> Result<Vec<QueryOutcome>, String> {
    let entries = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("batch response lacks \"results\"")?;
    Ok(entries
        .iter()
        .map(|entry| match entry.get("error").and_then(Json::as_str) {
            Some(msg) => Err(msg.to_string()),
            None => TopkResponse::from_json(entry),
        })
        .collect())
}

/// The `{"error": "..."}` envelope carried by every non-200 response.
#[must_use]
pub fn error_body(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json::escape(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> RequestDefaults {
        RequestDefaults {
            default_k: 10,
            max_k: 1000,
            default_mode: EngineMode::Auto,
            default_quant: QuantMode::Off,
        }
    }

    #[test]
    fn request_roundtrips_through_its_own_renderer() {
        let req = TopkRequest {
            nodes: vec![3, 0, 7],
            k: 5,
            theta: Some(vec![0.25, 0.75]),
            mode: EngineMode::Ann,
            quant: QuantMode::Int8,
        };
        let body = req.to_json();
        assert_eq!(
            body,
            r#"{"nodes":[3,0,7],"k":5,"theta":[0.25,0.75],"mode":"ann","quant":"int8"}"#
        );
        let back = TopkRequest::from_body(body.as_bytes(), &defaults()).unwrap();
        assert_eq!(back, req);
        // Auto mode and f64 scans are the wire defaults and stay implicit.
        let plain = TopkRequest::new(vec![1], 2).to_json();
        assert_eq!(plain, r#"{"nodes":[1],"k":2}"#);
    }

    #[test]
    fn request_parse_applies_quant_default() {
        let d = RequestDefaults {
            default_quant: QuantMode::F16,
            ..defaults()
        };
        let req = TopkRequest::from_body(br#"{"node":4}"#, &d).unwrap();
        assert_eq!(req.quant, QuantMode::F16);
        // An explicit "off" overrides a server-side quantized default.
        let req = TopkRequest::from_body(br#"{"node":4,"quant":"off"}"#, &d).unwrap();
        assert_eq!(req.quant, QuantMode::Off);
    }

    #[test]
    fn request_parse_applies_defaults_and_limits() {
        let d = defaults();
        let req = TopkRequest::from_body(br#"{"node":4}"#, &d).unwrap();
        assert_eq!(req.nodes, vec![4]);
        assert_eq!(req.k, 10);
        assert_eq!(req.mode, EngineMode::Auto);
        for (body, needle) in [
            (&b"nope"[..], "invalid JSON"),
            (br#"{}"#, "nodes"),
            (br#"{"nodes":[]}"#, "empty"),
            (br#"{"nodes":[0],"k":0}"#, "k"),
            (br#"{"nodes":[0],"k":5000}"#, "limit"),
            (br#"{"nodes":[0],"theta":3}"#, "theta"),
            (br#"{"nodes":[-1]}"#, "non-negative"),
            (br#"{"nodes":[0],"mode":"warp"}"#, "mode"),
            (br#"{"nodes":[0],"quant":"int4"}"#, "quant"),
        ] {
            let msg = TopkRequest::from_body(body, &d).unwrap_err();
            assert!(
                msg.to_lowercase().contains(&needle.to_lowercase()),
                "error {msg:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn batch_envelope_isolates_per_query_errors() {
        let d = defaults();
        let body = br#"{"queries":[{"node":1},{"nodes":[]},{"nodes":[2],"k":3}]}"#;
        let batch = BatchRequest::from_body(body, &d).unwrap();
        assert_eq!(batch.queries.len(), 3);
        assert!(batch.queries[0].is_ok());
        assert!(batch.queries[1].as_ref().unwrap_err().contains("empty"));
        assert_eq!(batch.queries[2].as_ref().unwrap().k, 3);
        // Envelope-level failures reject the whole request.
        assert!(BatchRequest::from_body(br#"{"queries":[]}"#, &d)
            .unwrap_err()
            .contains("empty"));
        assert!(BatchRequest::from_body(br#"{"nodes":[0]}"#, &d)
            .unwrap_err()
            .contains("queries"));
        // Client-side assembly round-trips.
        let built = BatchRequest::to_json(&[TopkRequest::new(vec![0], 1)]);
        assert_eq!(built, r#"{"queries":[{"nodes":[0],"k":1}]}"#);
        assert!(BatchRequest::from_body(built.as_bytes(), &d).is_ok());
    }

    #[test]
    fn response_renders_byte_identically_and_roundtrips() {
        let resp = TopkResponse {
            k: 1,
            engine: "exact".to_string(),
            partial: false,
            results: vec![NodeResult {
                node: 0,
                matches: Arc::new(vec![Hit {
                    target: 7,
                    score: 0.25,
                }]),
            }],
        };
        // The exact bytes the historical serializer produced.
        assert_eq!(
            resp.render(),
            r#"{"k":1,"engine":"exact","results":[{"node":0,"matches":[{"target":7,"score":0.25}]}]}"#
        );
        let partial = TopkResponse {
            partial: true,
            ..resp.clone()
        };
        assert_eq!(
            partial.render(),
            r#"{"k":1,"engine":"exact","partial":true,"results":[{"node":0,"matches":[{"target":7,"score":0.25}]}]}"#
        );
        let back = TopkResponse::from_body(partial.render().as_bytes()).unwrap();
        assert_eq!(back, partial);
    }

    #[test]
    fn batch_response_envelope_roundtrips() {
        let ok = TopkResponse {
            k: 2,
            engine: "ann".to_string(),
            partial: false,
            results: vec![NodeResult {
                node: 3,
                matches: Arc::new(vec![]),
            }],
        };
        let rendered = render_batch(&[Ok(ok.clone()), Err("k must be >= 1".to_string())]);
        assert_eq!(
            rendered,
            r#"{"results":[{"k":2,"engine":"ann","results":[{"node":3,"matches":[]}]},{"error":"k must be >= 1"}]}"#
        );
        let doc = json::parse(&rendered).unwrap();
        let outcomes = parse_batch_response(&doc).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].as_ref().unwrap(), &ok);
        assert_eq!(outcomes[1].as_ref().unwrap_err(), "k must be >= 1");
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(
            error_body("no \"such\" path"),
            r#"{"error":"no \"such\" path"}"#
        );
    }
}
