//! Versioned binary artifact format for trained alignment state.
//!
//! A deployment trains GAlign once, exports the θ-weighted multi-order
//! embedding pair as one compact artifact, and serves top-k alignment
//! queries from it forever after. The JSON persistence in
//! `galign::persist` spends ~17 bytes per matrix entry (decimal text plus
//! punctuation); this format spends 8 (little-endian `f64`), cutting
//! artifacts roughly 8x and making loads a bounds-checked `memcpy` instead
//! of a float parse.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic            8 B   b"GALNART1"
//! format version   4 B   u32, 1, 2, 3 or 4
//! flags            4 B   u32, bit 0 = rows already L2-normalized,
//!                        bit 1 = quantized section is primary (v4 only;
//!                        the f64 matrix blocks are omitted and
//!                        reconstructed by dequantization at load)
//! layer count      4 B   u32, layers per side (k+1, incl. attribute layer)
//! reserved         4 B   u32, zero
//! theta section    8·L B f64 layer weights, then 8 B FNV-1a of the bytes
//! source blocks    L ×  [rows u64, cols u64, rows·cols f64, FNV-1a u64]
//! target blocks    L ×  [rows u64, cols u64, rows·cols f64, FNV-1a u64]
//!                        (both omitted when the quant-primary flag is set)
//! index section    v2+:  [len u64, len bytes, FNV-1a u64]
//! quant section    v4:   [len u64, payload, FNV-1a u64] — see
//!                        [`QuantSection`] for the payload layout
//! shard manifest   v3:   [shard_id u32, num_shards u32, start u64,
//!                         end u64, parent_targets u64, parent_checksum
//!                         u64, replica count u32, replicas (len u32 +
//!                         utf8 bytes each), FNV-1a u64 of the section]
//!                  v4:   presence u32 (0 or 1), then the v3 section when
//!                        present (a quantized artifact need not be a
//!                        shard, so presence becomes explicit)
//! file checksum    8 B   FNV-1a of every preceding byte
//! ```
//!
//! Version 2 appends an optional serialized ANN index (an opaque
//! `galign-index` blob — structure only, the vectors live in the target
//! blocks above) so `serve` can start in ANN mode without rebuilding the
//! graph. Version 3 appends a [`ShardManifest`]: the file is one shard of
//! a row-partitioned parent artifact, carrying the contiguous global
//! target-id range `[start, end)`, the replica set that serves it, and
//! `parent_checksum` — the FNV-1a of the *parent's* concatenated target
//! layers ([`Artifact::target_checksum`]) — so an assembled shard set can
//! prove it reconstitutes the exact parent it was split from. Version 4
//! appends a [`QuantSection`]: int8 or f16 panels over the concatenated
//! per-layer rows of both sides (see [`Artifact::with_quant`]). In
//! *sidecar* mode the f64 blocks stay in the file and the panels only
//! accelerate scans; in *primary* mode the f64 blocks are dropped from
//! the file and the canonical values ARE the dequantized values, so the
//! artifact shrinks ~8x (int8) while loads stay bit-deterministic.
//! Writers always emit the lowest version that can represent the artifact
//! (1 with neither section, 2 with an index only, 3 with a manifest, 4
//! with a quant section), so plain artifacts remain readable by old
//! readers; old readers reject newer files with a clear "newer than this
//! build" error rather than silently dropping a section.
//!
//! Loads validate magic, version (future versions are rejected, never
//! silently reinterpreted), shape consistency between the two sides, every
//! section checksum and the whole-file checksum, so a truncated or
//! bit-flipped artifact fails loudly instead of serving garbage scores.

use std::io;
use std::path::Path;

use galign_quant::{QuantMode, QuantizedPanel};

/// File magic: "GALN ARTifact" plus a format generation digit.
pub const MAGIC: [u8; 8] = *b"GALNART1";

/// Current on-disk format version. Readers reject anything newer. Writers
/// emit the lowest version that represents the artifact: 1 with neither
/// optional section, 2 with an ANN index (see [`Artifact::index`]), 3 with
/// a shard manifest (see [`Artifact::manifest`]), 4 with a quantized
/// section (see [`Artifact::quant`]).
pub const FORMAT_VERSION: u32 = 4;

/// Flag bit: matrix rows are already L2-normalized (cosine-ready).
pub const FLAG_ROWS_NORMALIZED: u32 = 1;

/// Flag bit (v4): the quantized section is primary — the file carries no
/// f64 matrix blocks and the canonical rows are reconstructed by
/// dequantizing the panels at load time.
pub const FLAG_QUANT_PRIMARY: u32 = 2;

/// FNV-1a 64-bit offset basis (the running-hash seed for
/// [`fnv1a_extend`]).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a 64-bit hash, so checksums can be
/// streamed across several buffers without concatenating them
/// (`fnv1a(b) == fnv1a_extend(FNV_OFFSET, b)`).
#[must_use]
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a 64-bit hash — the format's checksum primitive (fast, std-only,
/// good avalanche for corruption detection; not cryptographic).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A row-major `f64` matrix — the artifact's own minimal matrix type, so
/// the serving crate stays free of the training stack's dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Wraps a row-major buffer.
    ///
    /// # Errors
    /// When `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> io::Result<Self> {
        if data.len()
            != rows
                .checked_mul(cols)
                .ok_or_else(|| invalid("matrix shape overflows"))?
        {
            return Err(invalid(format!(
                "buffer of length {} cannot back a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Mat { rows, cols, data })
    }

    /// Decodes a matrix from little-endian `f64` bytes (the wire encoding
    /// of one artifact block, and of `galign-matrix`'s `Dense` bytes
    /// round-trip).
    ///
    /// # Errors
    /// When the byte length does not equal `rows * cols * 8`.
    pub fn from_le_bytes(rows: usize, cols: usize, bytes: &[u8]) -> io::Result<Self> {
        let want = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| invalid("matrix shape overflows"))?;
        if bytes.len() != want {
            return Err(invalid(format!(
                "{} bytes cannot back a {rows}x{cols} f64 matrix (want {want})",
                bytes.len()
            )));
        }
        let data = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Ok(Mat { rows, cols, data })
    }

    /// Encodes the matrix as little-endian `f64` bytes.
    #[must_use]
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 8);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// When `i >= rows`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The full row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning its row-major buffer (used to hand
    /// the data to `galign-matrix`'s `Dense` without a copy).
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// A new matrix holding rows `[start, end)` of this one, bit-for-bit
    /// (used by shard splitting — no renormalization, no reordering).
    ///
    /// # Errors
    /// When the range is inverted or runs past the row count.
    pub fn slice_rows(&self, start: usize, end: usize) -> io::Result<Mat> {
        if start > end || end > self.rows {
            return Err(invalid(format!(
                "row slice {start}..{end} out of bounds for {} rows",
                self.rows
            )));
        }
        Ok(Mat {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }

    /// Divides every row by its L2 norm (zero rows are left untouched).
    pub fn normalize_rows(&mut self) {
        for i in 0..self.rows {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in row {
                    *v /= norm;
                }
            }
        }
    }
}

/// Placement metadata of one shard artifact: which contiguous slice of
/// the parent's target rows this file carries, how many siblings exist,
/// and the checksum tying the set back to the parent it was split from.
///
/// A shard artifact is a *standard* artifact on the data path — full
/// source side, full θ, target rows `[start, end)` — so an unmodified
/// `galign-serve` node serves it directly; only the router interprets the
/// manifest (translating shard-local target ids to global ones by adding
/// `start`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// This shard's position in the split, `0..num_shards`.
    pub shard_id: u32,
    /// Total shards the parent was split into.
    pub num_shards: u32,
    /// First global target id held by this shard (inclusive).
    pub start: u64,
    /// One past the last global target id held (exclusive); the shard's
    /// target matrices have `end - start` rows.
    pub end: u64,
    /// Target-node count of the parent artifact (`end` of the last shard).
    pub parent_targets: u64,
    /// [`Artifact::target_checksum`] of the parent — FNV-1a over the
    /// parent's concatenated target-layer bytes in layer order, so an
    /// assembled shard set can prove bit-exact reconstruction without the
    /// parent file.
    pub parent_checksum: u64,
    /// Advisory replica endpoints (`host:port`) that serve this shard;
    /// the router may override them with a live topology probe.
    pub replicas: Vec<String>,
}

impl ShardManifest {
    /// Serializes the manifest section body (checksum appended by the
    /// artifact writer).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.shard_id.to_le_bytes());
        out.extend_from_slice(&self.num_shards.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.end.to_le_bytes());
        out.extend_from_slice(&self.parent_targets.to_le_bytes());
        out.extend_from_slice(&self.parent_checksum.to_le_bytes());
        out.extend_from_slice(&(self.replicas.len() as u32).to_le_bytes());
        for r in &self.replicas {
            out.extend_from_slice(&(r.len() as u32).to_le_bytes());
            out.extend_from_slice(r.as_bytes());
        }
        out
    }

    /// Internal-consistency checks plus agreement with the shard's own
    /// target row count.
    ///
    /// # Errors
    /// `InvalidData` when the id range is inverted, runs past
    /// `parent_targets`, disagrees with `target_rows`, or `shard_id` is
    /// not below `num_shards`.
    pub fn validate(&self, target_rows: usize) -> io::Result<()> {
        if self.num_shards == 0 || self.shard_id >= self.num_shards {
            return Err(invalid(format!(
                "shard id {} not below shard count {}",
                self.shard_id, self.num_shards
            )));
        }
        if self.start > self.end || self.end > self.parent_targets {
            return Err(invalid(format!(
                "shard range {}..{} invalid for parent of {} targets",
                self.start, self.end, self.parent_targets
            )));
        }
        if self.end - self.start != target_rows as u64 {
            return Err(invalid(format!(
                "shard range {}..{} disagrees with {target_rows} target rows",
                self.start, self.end
            )));
        }
        Ok(())
    }

    fn parse(r: &mut Reader<'_>) -> io::Result<ShardManifest> {
        let shard_id = r.u32()?;
        let num_shards = r.u32()?;
        let start = r.u64()?;
        let end = r.u64()?;
        let parent_targets = r.u64()?;
        let parent_checksum = r.u64()?;
        let count = r.u32()? as usize;
        let mut replicas = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            replicas.push(
                std::str::from_utf8(bytes)
                    .map_err(|_| invalid("shard replica address is not UTF-8"))?
                    .to_string(),
            );
        }
        Ok(ShardManifest {
            shard_id,
            num_shards,
            start,
            end,
            parent_targets,
            parent_checksum,
            replicas,
        })
    }
}

/// FNV-1a over the concatenated little-endian bytes of one side's layers,
/// in layer order — the identity that binds a [`QuantSection`] to the f64
/// rows it was encoded from.
#[must_use]
fn side_checksum(mats: &[Mat]) -> u64 {
    let mut hash = FNV_OFFSET;
    for m in mats {
        hash = fnv1a_extend(hash, &m.to_le_bytes());
    }
    hash
}

/// Quantized companion of the embedding pair: one [`QuantizedPanel`] per
/// side over the concatenated per-layer rows, plus the metadata needed to
/// slice dequantized rows back into layers and to prove the panels match
/// the f64 data they were encoded from.
///
/// Payload layout inside the v4 quant section (all little-endian):
///
/// ```text
/// mode              1 B   u8, QuantMode tag (1 = int8, 2 = f16)
/// layer count       4 B   u32, must equal the header layer count
/// dims              4·L B u32 each, per-layer embedding columns
/// source checksum   8 B   FNV-1a of the f64 source layers, layer order
/// target checksum   8 B   FNV-1a of the f64 target layers, layer order
/// source panel      [len u64, len bytes]   QuantizedPanel serialization
/// target panel      [len u64, len bytes]   QuantizedPanel serialization
/// ```
///
/// Whether the section is *primary* (f64 blocks omitted from the file) is
/// carried by the [`FLAG_QUANT_PRIMARY`] header flag, not the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantSection {
    /// Component encoding of both panels.
    pub mode: QuantMode,
    /// Per-layer embedding dimensions, used to slice the concatenated
    /// dequantized rows back into per-layer matrices.
    pub dims: Vec<usize>,
    /// Primary mode: the f64 blocks are not written and the canonical
    /// values are the dequantized panel rows (see [`Artifact::with_quant`]).
    pub primary: bool,
    /// Quantized source-side rows (one row per source node, concatenated
    /// layers).
    pub source: QuantizedPanel,
    /// Quantized target-side rows.
    pub target: QuantizedPanel,
    /// FNV-1a over the f64 source layers this panel was encoded from.
    pub source_checksum: u64,
    /// FNV-1a over the f64 target layers this panel was encoded from.
    pub target_checksum: u64,
}

impl QuantSection {
    /// Serializes the quant section payload (length prefix and checksum
    /// appended by the artifact writer).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.mode.tag());
        out.extend_from_slice(&(self.dims.len() as u32).to_le_bytes());
        for &d in &self.dims {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        out.extend_from_slice(&self.source_checksum.to_le_bytes());
        out.extend_from_slice(&self.target_checksum.to_le_bytes());
        for panel in [&self.source, &self.target] {
            let bytes = panel.to_bytes();
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Parses and structurally validates a quant section payload.
    fn parse(bytes: &[u8], primary: bool, layers: usize) -> io::Result<QuantSection> {
        let mut r = Reader { bytes, pos: 0 };
        let tag = r.take(1)?[0];
        let mode = QuantMode::from_tag(tag)
            .ok_or_else(|| invalid(format!("unknown quantization mode tag {tag}")))?;
        let declared = r.u32()? as usize;
        if declared != layers {
            return Err(invalid(format!(
                "quant section declares {declared} layers but the artifact has {layers}"
            )));
        }
        let mut dims = Vec::with_capacity(layers);
        for _ in 0..layers {
            dims.push(r.u32()? as usize);
        }
        let source_checksum = r.u64()?;
        let target_checksum = r.u64()?;
        let read_panel = |r: &mut Reader<'_>| -> io::Result<QuantizedPanel> {
            let len =
                usize::try_from(r.u64()?).map_err(|_| invalid("quant panel length overflow"))?;
            QuantizedPanel::from_bytes(r.take(len)?).map_err(|e| invalid(e.to_string()))
        };
        let source = read_panel(&mut r)?;
        let target = read_panel(&mut r)?;
        if r.pos != bytes.len() {
            return Err(invalid("trailing bytes in quant section"));
        }
        let dim: usize = dims.iter().sum();
        for (name, panel) in [("source", &source), ("target", &target)] {
            if panel.mode() != mode {
                return Err(invalid(format!(
                    "quant {name} panel mode disagrees with the section mode"
                )));
            }
            if panel.dim() != dim {
                return Err(invalid(format!(
                    "quant {name} panel dimension {} disagrees with the layer dims (sum {dim})",
                    panel.dim()
                )));
            }
        }
        Ok(QuantSection {
            mode,
            dims,
            primary,
            source,
            target,
            source_checksum,
            target_checksum,
        })
    }

    /// Checks that the section agrees with the artifact's f64 rows: layer
    /// dims, panel row counts, and the binding checksums over both sides.
    ///
    /// # Errors
    /// `InvalidData` naming the first disagreement — a checksum mismatch
    /// means the panels were not encoded from these rows (tampered or
    /// mispaired) and the artifact must not serve quantized scans.
    pub fn validate(&self, artifact: &Artifact) -> io::Result<()> {
        if self.dims.len() != artifact.num_layers() {
            return Err(invalid(format!(
                "quant section has {} layer dims but the artifact has {} layers",
                self.dims.len(),
                artifact.num_layers()
            )));
        }
        for (l, &d) in self.dims.iter().enumerate() {
            if artifact.source[l].cols() != d {
                return Err(invalid(format!(
                    "quant dim {d} disagrees with layer {l} dimension {}",
                    artifact.source[l].cols()
                )));
            }
        }
        if self.source.len() != artifact.source_nodes()
            || self.target.len() != artifact.target_nodes()
        {
            return Err(invalid(format!(
                "quant panels hold {}/{} rows but the artifact has {}/{} nodes",
                self.source.len(),
                self.target.len(),
                artifact.source_nodes(),
                artifact.target_nodes()
            )));
        }
        if side_checksum(&artifact.source) != self.source_checksum {
            return Err(invalid(
                "quantized section does not match the f64 source rows (checksum mismatch)",
            ));
        }
        if side_checksum(&artifact.target) != self.target_checksum {
            return Err(invalid(
                "quantized section does not match the f64 target rows (checksum mismatch)",
            ));
        }
        Ok(())
    }
}

/// Splits a flat buffer of `rows` concatenated multi-layer rows back into
/// one matrix per layer (inverse of the row concatenation
/// [`Artifact::with_quant`] encodes).
fn split_layers(flat: &[f64], rows: usize, dims: &[usize]) -> io::Result<Vec<Mat>> {
    let dim: usize = dims.iter().sum();
    let mut mats = Vec::with_capacity(dims.len());
    let mut offset = 0usize;
    for &d in dims {
        let mut data = Vec::with_capacity(rows * d);
        for i in 0..rows {
            let start = i * dim + offset;
            data.extend_from_slice(&flat[start..start + d]);
        }
        mats.push(Mat::new(rows, d, data)?);
        offset += d;
    }
    Ok(mats)
}

/// A trained alignment artifact: θ layer weights plus the multi-order
/// embedding layers of both networks.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Layer-importance weights θ⁽⁰⁾..θ⁽ᵏ⁾ (the serving default).
    pub theta: Vec<f64>,
    /// Source-network embedding, one matrix per layer.
    pub source: Vec<Mat>,
    /// Target-network embedding, one matrix per layer.
    pub target: Vec<Mat>,
    /// Whether rows were L2-normalized before export (if not, the query
    /// index normalizes at load time).
    pub rows_normalized: bool,
    /// Optional serialized ANN index (an opaque `galign-index` blob built
    /// over the concatenated target layers). `Some` forces format
    /// version 2 on write; `None` keeps version 1 for old readers.
    pub index: Option<Vec<u8>>,
    /// Optional shard-placement metadata: `Some` marks this artifact as
    /// one row-partition of a parent (forcing format version 3 on write);
    /// `None` is a whole artifact.
    pub manifest: Option<ShardManifest>,
    /// Optional quantized companion panels (forcing format version 4 on
    /// write; see [`Artifact::with_quant`]).
    pub quant: Option<QuantSection>,
}

impl Artifact {
    /// Builds and shape-validates an artifact.
    ///
    /// # Errors
    /// When the two sides disagree on layer count or per-layer embedding
    /// dimension, a side's layers disagree on node count, θ length does
    /// not match the layer count, or there are no layers at all.
    pub fn new(
        theta: Vec<f64>,
        source: Vec<Mat>,
        target: Vec<Mat>,
        rows_normalized: bool,
    ) -> io::Result<Self> {
        if theta.is_empty() {
            return Err(invalid("artifact needs at least one layer"));
        }
        if source.len() != theta.len() || target.len() != theta.len() {
            return Err(invalid(format!(
                "theta has {} weights but source/target have {}/{} layers",
                theta.len(),
                source.len(),
                target.len()
            )));
        }
        for side in [&source, &target] {
            if side.iter().any(|m| m.rows() != side[0].rows()) {
                return Err(invalid("layers of one side disagree on node count"));
            }
        }
        for (l, (s, t)) in source.iter().zip(&target).enumerate() {
            if s.cols() != t.cols() {
                return Err(invalid(format!(
                    "layer {l}: source dim {} != target dim {}",
                    s.cols(),
                    t.cols()
                )));
            }
        }
        Ok(Artifact {
            theta,
            source,
            target,
            rows_normalized,
            index: None,
            manifest: None,
            quant: None,
        })
    }

    /// Returns the artifact with `index` embedded (written as format
    /// version 2; see [`Artifact::index`]).
    #[must_use]
    pub fn with_index(mut self, index: Vec<u8>) -> Self {
        self.index = Some(index);
        self
    }

    /// Returns the artifact with a shard manifest attached (written as
    /// format version 3; see [`Artifact::manifest`]).
    ///
    /// # Errors
    /// When the manifest disagrees with this artifact's target row count
    /// or is internally inconsistent ([`ShardManifest::validate`]).
    pub fn with_manifest(mut self, manifest: ShardManifest) -> io::Result<Self> {
        manifest.validate(self.target_nodes())?;
        self.manifest = Some(manifest);
        Ok(self)
    }

    /// Attaches quantized panels over the concatenated per-layer rows of
    /// both sides (written as format version 4; see [`Artifact::quant`]).
    ///
    /// Rows are L2-normalized first if they were not already — quantized
    /// scans certify cosine scores, which presumes unit rows — and
    /// normalization invalidates any embedded ANN index, which is dropped.
    ///
    /// With `keep_f64` the panels ride sidecar: the f64 rows stay in the
    /// file bit-for-bit and the panels only accelerate first-pass scans.
    /// Without it the section becomes *primary*: the f64 rows are replaced
    /// by their dequantized reconstruction (so the canonical values round
    /// trip exactly through the panels), the panel error bounds are
    /// rebased to zero, the f64 blocks are omitted from the file (~8x
    /// smaller for int8), and any embedded index is dropped because the
    /// vectors changed.
    ///
    /// # Errors
    /// When this artifact is a shard (quantize the parent and re-split so
    /// every shard shares one encoding), or quantization rejects the rows
    /// (non-finite values, zero total dimension).
    pub fn with_quant(mut self, mode: QuantMode, keep_f64: bool) -> io::Result<Self> {
        if self.manifest.is_some() {
            return Err(invalid(
                "cannot quantize a shard artifact; quantize the parent and re-split",
            ));
        }
        if !self.rows_normalized {
            for m in self.source.iter_mut().chain(&mut self.target) {
                m.normalize_rows();
            }
            self.rows_normalized = true;
            // The embedded index was built over the raw rows.
            self.index = None;
        }
        let dims: Vec<usize> = self.source.iter().map(Mat::cols).collect();
        let dim: usize = dims.iter().sum();
        let encode = |mats: &[Mat]| -> io::Result<QuantizedPanel> {
            let rows = (0..mats[0].rows()).map(|i| {
                let mut row = Vec::with_capacity(dim);
                for m in mats {
                    row.extend_from_slice(m.row(i));
                }
                row
            });
            QuantizedPanel::encode(mode, dim, rows).map_err(|e| invalid(e.to_string()))
        };
        let mut source = encode(&self.source)?;
        let mut target = encode(&self.target)?;
        if !keep_f64 {
            source.rebase_on_dequantized();
            target.rebase_on_dequantized();
            self.source = split_layers(&source.dequantize_all(), source.len(), &dims)?;
            self.target = split_layers(&target.dequantize_all(), target.len(), &dims)?;
            // The canonical vectors changed; an embedded index over the
            // old rows would return wrong neighbors.
            self.index = None;
        }
        self.quant = Some(QuantSection {
            mode,
            dims,
            primary: !keep_f64,
            source_checksum: side_checksum(&self.source),
            target_checksum: side_checksum(&self.target),
            source,
            target,
        });
        Ok(self)
    }

    /// Number of embedding layers per side (k+1).
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.theta.len()
    }

    /// Source-network node count.
    #[must_use]
    pub fn source_nodes(&self) -> usize {
        self.source[0].rows()
    }

    /// Target-network node count.
    #[must_use]
    pub fn target_nodes(&self) -> usize {
        self.target[0].rows()
    }

    /// FNV-1a over the concatenated little-endian bytes of every target
    /// layer, in layer order — the identity a [`ShardManifest`] records as
    /// `parent_checksum`. It covers exactly the data a split partitions
    /// (target rows), so it is reconstructible from an assembled shard set
    /// regardless of flags, θ, or per-shard ANN indexes.
    #[must_use]
    pub fn target_checksum(&self) -> u64 {
        side_checksum(&self.target)
    }

    /// Splits the target side into `num_shards` contiguous row ranges,
    /// producing one shard artifact per range: full source side and θ
    /// (every shard can score every query node), target rows
    /// `[start, end)`, and a [`ShardManifest`] tying the shard back to
    /// this parent. Row counts differ by at most one (the first
    /// `targets % num_shards` shards get the extra row). `replica_sets`,
    /// when given, must have one entry per shard and is recorded as the
    /// advisory replica list. Embedded ANN indexes are **not** inherited —
    /// a shard needs an index over its own rows (build one per shard with
    /// `TopkIndex::build_ann` after loading).
    ///
    /// # Errors
    /// When `num_shards` is zero, exceeds the target-node count, or
    /// `replica_sets` has the wrong length.
    pub fn split(
        &self,
        num_shards: usize,
        replica_sets: Option<&[Vec<String>]>,
    ) -> io::Result<Vec<Artifact>> {
        let targets = self.target_nodes();
        if num_shards == 0 || num_shards > targets {
            return Err(invalid(format!(
                "cannot split {targets} target rows into {num_shards} shards"
            )));
        }
        if let Some(sets) = replica_sets {
            if sets.len() != num_shards {
                return Err(invalid(format!(
                    "{} replica sets for {num_shards} shards",
                    sets.len()
                )));
            }
        }
        let parent_checksum = self.target_checksum();
        let base = targets / num_shards;
        let extra = targets % num_shards;
        let mut shards = Vec::with_capacity(num_shards);
        let mut start = 0usize;
        for shard_id in 0..num_shards {
            let rows = base + usize::from(shard_id < extra);
            let end = start + rows;
            let target: Vec<Mat> = self
                .target
                .iter()
                .map(|m| m.slice_rows(start, end))
                .collect::<io::Result<_>>()?;
            let mut shard = Artifact::new(
                self.theta.clone(),
                self.source.clone(),
                target,
                self.rows_normalized,
            )?
            .with_manifest(ShardManifest {
                shard_id: shard_id as u32,
                num_shards: num_shards as u32,
                start: start as u64,
                end: end as u64,
                parent_targets: targets as u64,
                parent_checksum,
                replicas: replica_sets.map_or_else(Vec::new, |s| s[shard_id].clone()),
            })?;
            if let Some(q) = &self.quant {
                // Full source panel (every shard scores every query node),
                // target panel sliced to this shard's rows; the binding
                // checksum is recomputed over the shard's own f64 rows.
                shard.quant = Some(QuantSection {
                    mode: q.mode,
                    dims: q.dims.clone(),
                    primary: q.primary,
                    source: q.source.clone(),
                    target: q
                        .target
                        .slice_rows(start, end)
                        .map_err(|e| invalid(e.to_string()))?,
                    source_checksum: q.source_checksum,
                    target_checksum: side_checksum(&shard.target),
                });
            }
            shards.push(shard);
            start = end;
        }
        Ok(shards)
    }

    /// Reassembles a complete artifact from a full shard set (any order)
    /// and verifies it: the shards must form one consistent split
    /// (matching `num_shards`, `parent_targets`, `parent_checksum`, θ,
    /// flags and source side; contiguous ranges covering
    /// `0..parent_targets` exactly) and the stitched target layers must
    /// hash back to the recorded `parent_checksum` — a mismatch means the
    /// set does not reconstruct the parent bit-for-bit and is rejected,
    /// never returned silently wrong.
    ///
    /// # Errors
    /// `InvalidData` naming the first inconsistency found.
    pub fn assemble_shards(shards: &[Artifact]) -> io::Result<Artifact> {
        let first = shards
            .first()
            .ok_or_else(|| invalid("cannot assemble zero shards"))?;
        let head = first
            .manifest
            .as_ref()
            .ok_or_else(|| invalid("artifact has no shard manifest"))?;
        if shards.len() != head.num_shards as usize {
            return Err(invalid(format!(
                "{} shards supplied but the manifest says the split has {}",
                shards.len(),
                head.num_shards
            )));
        }
        let mut ordered: Vec<&Artifact> = Vec::with_capacity(shards.len());
        let mut by_id: Vec<Option<&Artifact>> = vec![None; shards.len()];
        for shard in shards {
            let m = shard
                .manifest
                .as_ref()
                .ok_or_else(|| invalid("artifact has no shard manifest"))?;
            m.validate(shard.target_nodes())?;
            if m.num_shards != head.num_shards
                || m.parent_targets != head.parent_targets
                || m.parent_checksum != head.parent_checksum
            {
                return Err(invalid(format!(
                    "shard {} belongs to a different split than shard {}",
                    m.shard_id, head.shard_id
                )));
            }
            if shard.theta != first.theta
                || shard.rows_normalized != first.rows_normalized
                || shard.source != first.source
            {
                return Err(invalid(format!(
                    "shard {} disagrees with shard {} on theta/flags/source",
                    m.shard_id, head.shard_id
                )));
            }
            let quant_agrees = match (&shard.quant, &first.quant) {
                (None, None) => true,
                (Some(a), Some(b)) => {
                    a.mode == b.mode
                        && a.dims == b.dims
                        && a.primary == b.primary
                        && a.source == b.source
                        && a.source_checksum == b.source_checksum
                }
                _ => false,
            };
            if !quant_agrees {
                return Err(invalid(format!(
                    "shard {} disagrees with shard {} on quantization",
                    m.shard_id, head.shard_id
                )));
            }
            let slot = &mut by_id[m.shard_id as usize];
            if slot.is_some() {
                return Err(invalid(format!("duplicate shard id {}", m.shard_id)));
            }
            *slot = Some(shard);
        }
        let mut expect_start = 0u64;
        for (id, slot) in by_id.iter().enumerate() {
            let shard = slot.ok_or_else(|| invalid(format!("missing shard id {id}")))?;
            let m = shard.manifest.as_ref().expect("checked above");
            if m.start != expect_start {
                return Err(invalid(format!(
                    "shard {id} starts at {} but the previous shard ends at {expect_start} \
                     (ranges must tile 0..{} contiguously)",
                    m.start, head.parent_targets
                )));
            }
            expect_start = m.end;
            ordered.push(shard);
        }
        if expect_start != head.parent_targets {
            return Err(invalid(format!(
                "shard ranges cover 0..{expect_start} but the parent has {} targets",
                head.parent_targets
            )));
        }
        let layers = first.num_layers();
        let mut target = Vec::with_capacity(layers);
        for l in 0..layers {
            let cols = first.target[l].cols();
            let mut data = Vec::new();
            for shard in &ordered {
                if shard.target[l].cols() != cols {
                    return Err(invalid(format!(
                        "shard target layer {l} dimension mismatch"
                    )));
                }
                data.extend_from_slice(shard.target[l].as_slice());
            }
            target.push(Mat::new(head.parent_targets as usize, cols, data)?);
        }
        let mut assembled = Artifact::new(
            first.theta.clone(),
            first.source.clone(),
            target,
            first.rows_normalized,
        )?;
        if assembled.target_checksum() != head.parent_checksum {
            return Err(invalid(format!(
                "assembled shards hash to {:#018x} but the manifest records parent \
                 checksum {:#018x} (corrupt or mismatched shard set)",
                assembled.target_checksum(),
                head.parent_checksum
            )));
        }
        if let Some(q) = &first.quant {
            let panels: Vec<QuantizedPanel> = ordered
                .iter()
                .map(|s| s.quant.as_ref().expect("checked above").target.clone())
                .collect();
            let stitched = QuantizedPanel::concat(&panels).map_err(|e| invalid(e.to_string()))?;
            assembled.quant = Some(QuantSection {
                mode: q.mode,
                dims: q.dims.clone(),
                primary: q.primary,
                source: q.source.clone(),
                source_checksum: q.source_checksum,
                target_checksum: side_checksum(&assembled.target),
                target: stitched,
            });
        }
        Ok(assembled)
    }

    /// Serializes to the binary format described in the module docs,
    /// emitting the lowest version that represents the artifact: 1 with
    /// neither optional section (so old readers keep working), 2 with an
    /// ANN index, 3 with a shard manifest, 4 with a quantized section.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let version: u32 = if self.quant.is_some() {
            4
        } else if self.manifest.is_some() {
            3
        } else if self.index.is_some() {
            2
        } else {
            1
        };
        let primary = self.quant.as_ref().is_some_and(|q| q.primary);
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        let mut flags = 0u32;
        if self.rows_normalized {
            flags |= FLAG_ROWS_NORMALIZED;
        }
        if primary {
            flags |= FLAG_QUANT_PRIMARY;
        }
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&(self.theta.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        let theta_start = out.len();
        for t in &self.theta {
            out.extend_from_slice(&t.to_le_bytes());
        }
        let theta_sum = fnv1a(&out[theta_start..]);
        out.extend_from_slice(&theta_sum.to_le_bytes());
        if !primary {
            for m in self.source.iter().chain(&self.target) {
                out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
                out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
                let data = m.to_le_bytes();
                out.extend_from_slice(&data);
                out.extend_from_slice(&fnv1a(&data).to_le_bytes());
            }
        }
        if version >= 2 {
            // The index section is unconditional from v2 on; in v3+ an
            // index-less artifact writes an empty section (length 0).
            let index = self.index.as_deref().unwrap_or(&[]);
            out.extend_from_slice(&(index.len() as u64).to_le_bytes());
            out.extend_from_slice(index);
            out.extend_from_slice(&fnv1a(index).to_le_bytes());
        }
        if let Some(quant) = &self.quant {
            let payload = quant.to_bytes();
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&payload);
            out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        }
        if version >= 4 {
            // v4 makes manifest presence explicit: a quantized artifact
            // need not be a shard.
            match &self.manifest {
                Some(manifest) => {
                    out.extend_from_slice(&1u32.to_le_bytes());
                    let section = manifest.to_bytes();
                    out.extend_from_slice(&section);
                    out.extend_from_slice(&fnv1a(&section).to_le_bytes());
                }
                None => out.extend_from_slice(&0u32.to_le_bytes()),
            }
        } else if let Some(manifest) = &self.manifest {
            let section = manifest.to_bytes();
            out.extend_from_slice(&section);
            out.extend_from_slice(&fnv1a(&section).to_le_bytes());
        }
        let file_sum = fnv1a(&out);
        out.extend_from_slice(&file_sum.to_le_bytes());
        out
    }

    /// Parses and fully validates an artifact from bytes.
    ///
    /// # Errors
    /// Bad magic, a format version newer than [`FORMAT_VERSION`],
    /// truncation, trailing bytes, checksum mismatches (per section and
    /// whole-file), or shape inconsistencies.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        Artifact::from_bytes_with_max_version(bytes, FORMAT_VERSION)
    }

    /// [`Artifact::from_bytes`] with an explicit version ceiling — lets
    /// tests exercise how an old (version-1-only) reader reacts to a
    /// version-2 artifact without keeping an old binary around.
    ///
    /// # Errors
    /// Same as [`Artifact::from_bytes`], plus rejection of versions above
    /// `max_version`.
    pub fn from_bytes_with_max_version(bytes: &[u8], max_version: u32) -> io::Result<Self> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(invalid("not a galign artifact (bad magic)"));
        }
        let version = r.u32()?;
        if version > max_version {
            return Err(invalid(format!(
                "artifact format version {version} is newer than this build \
                 supports ({max_version}); upgrade galign-serve"
            )));
        }
        if version == 0 {
            return Err(invalid("artifact format version 0 does not exist"));
        }
        let flags = r.u32()?;
        let layers = r.u32()? as usize;
        let _reserved = r.u32()?;
        if layers == 0 {
            return Err(invalid("artifact declares zero layers"));
        }
        let primary = flags & FLAG_QUANT_PRIMARY != 0;
        if primary && version < 4 {
            return Err(invalid(format!(
                "quant-primary flag requires format version 4 (file is version {version})"
            )));
        }
        let theta_start = r.pos;
        let mut theta = Vec::with_capacity(layers);
        for _ in 0..layers {
            theta.push(r.f64()?);
        }
        let theta_sum = fnv1a(&bytes[theta_start..r.pos]);
        if r.u64()? != theta_sum {
            return Err(invalid(
                "theta section checksum mismatch (corrupt artifact)",
            ));
        }
        let mut sides = Vec::with_capacity(2 * layers);
        if !primary {
            for i in 0..2 * layers {
                let rows = usize::try_from(r.u64()?).map_err(|_| invalid("rows overflow"))?;
                let cols = usize::try_from(r.u64()?).map_err(|_| invalid("cols overflow"))?;
                let nbytes = rows
                    .checked_mul(cols)
                    .and_then(|n| n.checked_mul(8))
                    .ok_or_else(|| invalid("matrix shape overflows"))?;
                let data = r.take(nbytes)?;
                let sum = fnv1a(data);
                let mat = Mat::from_le_bytes(rows, cols, data)?;
                if r.u64()? != sum {
                    return Err(invalid(format!(
                        "matrix block {i} checksum mismatch (corrupt artifact)"
                    )));
                }
                sides.push(mat);
            }
        }
        let index = if version >= 2 {
            let len = usize::try_from(r.u64()?).map_err(|_| invalid("index length overflow"))?;
            let data = r.take(len)?.to_vec();
            if r.u64()? != fnv1a(&data) {
                return Err(invalid(
                    "index section checksum mismatch (corrupt artifact)",
                ));
            }
            // v3 writes the section unconditionally; empty means "no
            // index". A v2 file only has the section when an index exists.
            if version >= 3 && data.is_empty() {
                None
            } else {
                Some(data)
            }
        } else {
            None
        };
        let quant = if version >= 4 {
            let len = usize::try_from(r.u64()?).map_err(|_| invalid("quant length overflow"))?;
            let payload = r.take(len)?;
            if r.u64()? != fnv1a(payload) {
                return Err(invalid(
                    "quant section checksum mismatch (corrupt artifact)",
                ));
            }
            Some(QuantSection::parse(payload, primary, layers)?)
        } else {
            None
        };
        let manifest = if version >= 4 {
            match r.u32()? {
                0 => None,
                1 => {
                    let section_start = r.pos;
                    let manifest = ShardManifest::parse(&mut r)?;
                    let section_sum = fnv1a(&bytes[section_start..r.pos]);
                    if r.u64()? != section_sum {
                        return Err(invalid(
                            "shard manifest checksum mismatch (corrupt artifact)",
                        ));
                    }
                    Some(manifest)
                }
                other => {
                    return Err(invalid(format!(
                        "manifest presence marker must be 0 or 1, got {other}"
                    )))
                }
            }
        } else if version >= 3 {
            let section_start = r.pos;
            let manifest = ShardManifest::parse(&mut r)?;
            let section_sum = fnv1a(&bytes[section_start..r.pos]);
            if r.u64()? != section_sum {
                return Err(invalid(
                    "shard manifest checksum mismatch (corrupt artifact)",
                ));
            }
            Some(manifest)
        } else {
            None
        };
        let file_sum = fnv1a(&bytes[..r.pos]);
        if r.u64()? != file_sum {
            return Err(invalid("file checksum mismatch (corrupt artifact)"));
        }
        if r.pos != bytes.len() {
            return Err(invalid(format!(
                "{} trailing bytes after artifact",
                bytes.len() - r.pos
            )));
        }
        let (source, target) = if primary {
            // No f64 blocks in the file: the canonical rows are the
            // deterministic dequantization of the panels.
            let q = quant
                .as_ref()
                .ok_or_else(|| invalid("quant-primary artifact is missing the quant section"))?;
            (
                split_layers(&q.source.dequantize_all(), q.source.len(), &q.dims)?,
                split_layers(&q.target.dequantize_all(), q.target.len(), &q.dims)?,
            )
        } else {
            let target = sides.split_off(layers);
            (sides, target)
        };
        let mut artifact = Artifact::new(theta, source, target, flags & FLAG_ROWS_NORMALIZED != 0)?;
        if let Some(m) = &manifest {
            m.validate(artifact.target_nodes())?;
        }
        if let Some(q) = &quant {
            if !artifact.rows_normalized {
                return Err(invalid(
                    "quantized artifacts require the rows-normalized flag",
                ));
            }
            q.validate(&artifact)?;
        }
        artifact.index = index;
        artifact.manifest = manifest;
        artifact.quant = quant;
        Ok(artifact)
    }

    /// Writes the artifact to `path` atomically (tmp file → flush →
    /// `sync_all` → rename), keeping any previous artifact generation as
    /// `<name>.prev` for [`Artifact::read_with_fallback`].
    ///
    /// # Errors
    /// IO failures; on error the previous contents of `path` survive.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        galign_telemetry::fsio::atomic_write_keep_prev(path, &self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates an artifact from `path`.
    ///
    /// # Errors
    /// IO failures plus everything [`Artifact::from_bytes`] rejects.
    pub fn read(path: &Path) -> io::Result<Self> {
        Artifact::from_bytes(&std::fs::read(path)?)
    }

    /// Reads an artifact, recovering from corruption: a file that fails
    /// validation is quarantined as `<name>.corrupt` and the previous
    /// generation (`<name>.prev`, kept by [`Artifact::write`]) is loaded
    /// instead. The boolean reports whether the fallback was taken.
    ///
    /// # Errors
    /// OS-level IO failures, or `InvalidData` when both the current and
    /// previous generations are unreadable (the error message carries both
    /// failure reasons).
    pub fn read_with_fallback(path: &Path) -> io::Result<(Self, bool)> {
        let primary = match Artifact::read(path) {
            Ok(a) => return Ok((a, false)),
            Err(e) => e,
        };
        let missing = primary.kind() == io::ErrorKind::NotFound;
        if !missing && primary.kind() != io::ErrorKind::InvalidData {
            return Err(primary);
        }
        let prev = galign_telemetry::fsio::prev_path(path);
        if missing {
            // Only a half-finished update (crash between the keep-prev
            // rename and the final rename) leaves a .prev behind; a
            // genuinely absent artifact stays a NotFound error.
            if !prev.exists() {
                return Err(primary);
            }
        } else {
            galign_telemetry::fsio::quarantine(path)?;
        }
        match Artifact::read(&prev) {
            Ok(a) => {
                galign_telemetry::counter_add("artifact.recovered_from_prev", 1);
                galign_telemetry::info!(
                    "artifact",
                    "{} was {}; serving previous generation {}",
                    path.display(),
                    if missing { "missing" } else { "corrupt" },
                    prev.display()
                );
                Ok((a, true))
            }
            Err(fallback) => Err(invalid(format!(
                "artifact {} unreadable ({primary}); previous \
                 generation {}: {fallback}",
                path.display(),
                prev.display()
            ))),
        }
    }
}

/// Bounds-checked byte cursor over the artifact buffer.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| invalid("artifact truncated"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::testutil::Xorshift;

    fn random_artifact(seed: u64, normalized: bool) -> Artifact {
        let mut rng = Xorshift::new(seed);
        let dims = [4usize, 3, 5];
        let mk = |rng: &mut Xorshift, rows: usize| -> Vec<Mat> {
            dims.iter()
                .map(|&d| {
                    Mat::new(rows, d, (0..rows * d).map(|_| rng.f64_signed()).collect()).unwrap()
                })
                .collect()
        };
        let source = mk(&mut rng, 7);
        let target = mk(&mut rng, 9);
        Artifact::new(vec![0.2, 0.3, 0.5], source, target, normalized).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        for normalized in [false, true] {
            let a = random_artifact(1, normalized);
            let b = Artifact::from_bytes(&a.to_bytes()).unwrap();
            assert_eq!(a, b, "decoded artifact must equal the original bit-for-bit");
            // PartialEq on f64 is bitwise here only when no NaNs are
            // involved; double-check the raw buffers too.
            for (ma, mb) in a.source.iter().zip(&b.source) {
                assert_eq!(ma.to_le_bytes(), mb.to_le_bytes());
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("galign-serve-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.galn");
        let a = random_artifact(2, true);
        a.write(&path).unwrap();
        let b = Artifact::read(&path).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_artifact_falls_back_to_previous_generation() {
        let dir = std::env::temp_dir().join("galign-serve-artifact-fallback");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.galn");
        let v1 = random_artifact(10, false);
        let v2 = random_artifact(11, true);
        v1.write(&path).unwrap();
        v2.write(&path).unwrap();
        // Simulate a torn write of the current generation.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 16]).unwrap();

        let (loaded, fell_back) = Artifact::read_with_fallback(&path).unwrap();
        assert!(fell_back);
        assert_eq!(loaded, v1);
        // The corrupt store is never left readable as valid.
        assert!(!path.exists());
        assert!(galign_telemetry::fsio::corrupt_path(&path).exists());
    }

    #[test]
    fn fallback_without_previous_generation_reports_both_failures() {
        let dir = std::env::temp_dir().join("galign-serve-artifact-orphan");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("orphan.galn");
        std::fs::write(&path, b"not an artifact").unwrap();
        let err = Artifact::read_with_fallback(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("previous generation"), "{err}");
        assert!(!path.exists(), "corrupt file must be quarantined");
    }

    #[test]
    fn fallback_passes_through_healthy_artifacts() {
        let dir = std::env::temp_dir().join("galign-serve-artifact-healthy");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.galn");
        let a = random_artifact(12, true);
        a.write(&path).unwrap();
        let (loaded, fell_back) = Artifact::read_with_fallback(&path).unwrap();
        assert!(!fell_back);
        assert_eq!(loaded, a);
    }

    #[test]
    fn missing_current_with_prev_recovers_the_crash_window() {
        // Crash between the keep-prev rename and the final rename leaves
        // nothing at `path` and the old generation at `.prev`.
        let dir = std::env::temp_dir().join("galign-serve-artifact-window");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window.galn");
        let v1 = random_artifact(9, false);
        v1.write(&path).unwrap();
        random_artifact(10, true).write(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        let (loaded, fell_back) = Artifact::read_with_fallback(&path).unwrap();
        assert!(fell_back);
        assert_eq!(loaded, v1);
        // A genuinely absent artifact (no .prev either) stays NotFound.
        let gone = dir.join("never-written.galn");
        let err = Artifact::read_with_fallback(&gone).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn binary_is_much_smaller_than_json_equivalent() {
        let a = random_artifact(3, false);
        let binary = a.to_bytes().len();
        // The JSON persistence writes every f64 in decimal (17 significant
        // digits for round-tripping) plus struct punctuation.
        let json_estimate: usize = a
            .source
            .iter()
            .chain(&a.target)
            .map(|m| m.as_slice().len() * 20)
            .sum();
        assert!(
            binary * 2 < json_estimate,
            "binary {binary} B should be far below the ~{json_estimate} B JSON costs"
        );
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let bytes = random_artifact(4, false).to_bytes();
        // Flipping any single byte must fail validation somewhere: magic,
        // version, shape, section checksum or file checksum. Sample a
        // spread of positions (every 97th byte) to keep the test fast.
        for pos in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                Artifact::from_bytes(&bad).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_rejected() {
        let bytes = random_artifact(5, false).to_bytes();
        assert!(Artifact::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(Artifact::from_bytes(&bytes[..10]).is_err());
        assert!(Artifact::from_bytes(&[]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        let err = Artifact::from_bytes(&long).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn future_version_rejected_with_clear_error() {
        let mut bytes = random_artifact(6, false).to_bytes();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let err = Artifact::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn index_less_artifacts_stay_version_1() {
        let bytes = random_artifact(20, false).to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        // And are still readable by a version-1-only reader.
        assert!(Artifact::from_bytes_with_max_version(&bytes, 1).is_ok());
    }

    #[test]
    fn embedded_index_roundtrips_as_version_2() {
        let blob = vec![7u8, 0, 42, 255, 1, 2, 3];
        let a = random_artifact(21, true).with_index(blob.clone());
        let bytes = a.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 2);
        let b = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(b.index.as_deref(), Some(blob.as_slice()));
        assert_eq!(a, b);
    }

    #[test]
    fn old_reader_rejects_indexed_artifact_gracefully() {
        // A version-1-only build must refuse a version-2 artifact with the
        // "newer than this build" message, never misparse it.
        let bytes = random_artifact(22, false)
            .with_index(vec![1, 2, 3])
            .to_bytes();
        let err = Artifact::from_bytes_with_max_version(&bytes, 1).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn corrupt_index_section_is_detected() {
        let a = random_artifact(23, false).with_index(vec![9; 64]);
        let bytes = a.to_bytes();
        // Corrupt a byte inside the index payload (located just before the
        // trailing index checksum + file checksum).
        let mut bad = bytes.clone();
        let pos = bytes.len() - 8 - 8 - 32;
        bad[pos] ^= 0x01;
        assert!(Artifact::from_bytes(&bad).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = random_artifact(7, false).to_bytes();
        bytes[0] = b'X';
        let err = Artifact::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn shape_validation() {
        let m = |r, c| Mat::new(r, c, vec![0.0; r * c]).unwrap();
        // θ length mismatch.
        assert!(Artifact::new(vec![1.0], vec![m(2, 2); 2], vec![m(2, 2); 2], false).is_err());
        // Source/target dim mismatch at one layer.
        assert!(Artifact::new(
            vec![0.5, 0.5],
            vec![m(2, 2), m(2, 3)],
            vec![m(4, 2), m(4, 4)],
            false
        )
        .is_err());
        // One side's layers disagree on node count.
        assert!(Artifact::new(
            vec![0.5, 0.5],
            vec![m(2, 2), m(3, 3)],
            vec![m(4, 2), m(4, 3)],
            false
        )
        .is_err());
        // Empty.
        assert!(Artifact::new(vec![], vec![], vec![], false).is_err());
    }

    #[test]
    fn mat_byte_helpers() {
        let m = Mat::new(2, 3, vec![1.0, -2.5, 3.0, 0.0, f64::MIN_POSITIVE, 1e300]).unwrap();
        let bytes = m.to_le_bytes();
        assert_eq!(bytes.len(), 48);
        let back = Mat::from_le_bytes(2, 3, &bytes).unwrap();
        assert_eq!(m, back);
        assert!(Mat::from_le_bytes(2, 3, &bytes[..40]).is_err());
        assert!(Mat::new(2, 3, vec![0.0; 5]).is_err());
        assert_eq!(m.row(1), &[0.0, f64::MIN_POSITIVE, 1e300]);
    }

    #[test]
    fn normalize_rows_handles_zero_rows() {
        let mut m = Mat::new(2, 2, vec![3.0, 4.0, 0.0, 0.0]).unwrap();
        m.normalize_rows();
        assert!((m.row(0)[0] - 0.6).abs() < 1e-12);
        assert!((m.row(0)[1] - 0.8).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Reference values of FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        // Streaming in pieces equals hashing the concatenation.
        assert_eq!(fnv1a_extend(fnv1a(b"foo"), b"bar"), fnv1a(b"foobar"));
    }

    #[test]
    fn slice_rows_is_bit_exact_and_bounds_checked() {
        let m = Mat::new(4, 2, (0..8).map(|v| v as f64 * 0.5 - 1.0).collect()).unwrap();
        let s = m.slice_rows(1, 3).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), m.row(1));
        assert_eq!(s.row(1), m.row(2));
        assert_eq!(s.to_le_bytes(), m.to_le_bytes()[16..48].to_vec());
        assert!(m.slice_rows(3, 2).is_err());
        assert!(m.slice_rows(0, 5).is_err());
        assert_eq!(m.slice_rows(2, 2).unwrap().rows(), 0);
    }

    #[test]
    fn split_tiles_targets_and_preserves_bits() {
        let a = random_artifact(30, false);
        // 9 target rows into 4 shards: 3+2+2+2.
        let shards = a.split(4, None).unwrap();
        assert_eq!(shards.len(), 4);
        let mut start = 0u64;
        for (i, s) in shards.iter().enumerate() {
            let m = s.manifest.as_ref().unwrap();
            assert_eq!(m.shard_id, i as u32);
            assert_eq!(m.num_shards, 4);
            assert_eq!(m.start, start);
            assert_eq!(m.parent_targets, 9);
            assert_eq!(m.parent_checksum, a.target_checksum());
            assert_eq!(s.target_nodes() as u64, m.end - m.start);
            assert_eq!(s.target_nodes(), if i == 0 { 3 } else { 2 });
            // Full source side and θ ride along bit-for-bit.
            assert_eq!(s.source, a.source);
            assert_eq!(s.theta, a.theta);
            for (l, layer) in s.target.iter().enumerate() {
                for r in 0..layer.rows() {
                    assert_eq!(layer.row(r), a.target[l].row(m.start as usize + r));
                }
            }
            start = m.end;
        }
        assert_eq!(start, 9);
        assert!(a.split(0, None).is_err());
        assert!(a.split(10, None).is_err());
        assert!(a.split(2, Some(&[vec!["x:1".into()]])).is_err());
    }

    #[test]
    fn assemble_roundtrips_and_rejects_corruption() {
        let a = random_artifact(31, true);
        let shards = a.split(3, None).unwrap();
        // Any order reassembles to the exact parent.
        let shuffled = vec![shards[2].clone(), shards[0].clone(), shards[1].clone()];
        let back = Artifact::assemble_shards(&shuffled).unwrap();
        assert_eq!(back, a);
        // A missing shard is rejected.
        assert!(Artifact::assemble_shards(&shards[..2]).is_err());
        // A duplicated shard is rejected.
        let dup = vec![shards[0].clone(), shards[0].clone(), shards[1].clone()];
        assert!(Artifact::assemble_shards(&dup).is_err());
        // A tampered parent checksum is rejected as corrupt.
        let mut forged = shards.clone();
        for s in &mut forged {
            s.manifest.as_mut().unwrap().parent_checksum ^= 1;
        }
        let err = Artifact::assemble_shards(&forged).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        // Tampered target data (consistent manifests) is also caught.
        let mut flipped = shards.clone();
        let bytes = flipped[1].target[0].to_le_bytes();
        let mut data: Vec<f64> = flipped[1].target[0].as_slice().to_vec();
        data[0] += 1.0;
        flipped[1].target[0] = Mat::new(
            flipped[1].target[0].rows(),
            flipped[1].target[0].cols(),
            data,
        )
        .unwrap();
        assert_ne!(bytes, flipped[1].target[0].to_le_bytes());
        assert!(Artifact::assemble_shards(&flipped).is_err());
    }

    #[test]
    fn shard_artifact_roundtrips_as_version_3() {
        let a = random_artifact(32, false);
        let shard = a
            .split(2, Some(&[vec!["h1:1".into()], vec!["h2:2".into()]]))
            .unwrap()[1]
            .clone();
        let bytes = shard.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 3);
        let back = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(back, shard);
        assert_eq!(back.manifest.as_ref().unwrap().replicas, vec!["h2:2"]);
        // With an index embedded the file stays v3 and carries both
        // sections.
        let indexed = shard.clone().with_index(vec![5, 6, 7]);
        let indexed_bytes = indexed.to_bytes();
        assert_eq!(
            u32::from_le_bytes(indexed_bytes[8..12].try_into().unwrap()),
            3
        );
        let back = Artifact::from_bytes(&indexed_bytes).unwrap();
        assert_eq!(back.index.as_deref(), Some(&[5u8, 6, 7][..]));
        assert_eq!(back.manifest, shard.manifest);
        // Old readers reject v3 files with the "newer" message.
        for ceiling in [1, 2] {
            let err = Artifact::from_bytes_with_max_version(&bytes, ceiling).unwrap_err();
            assert!(err.to_string().contains("newer"), "{err}");
        }
        // Single-byte corruption anywhere in a v3 file is still detected.
        for pos in (0..bytes.len()).step_by(89) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(
                Artifact::from_bytes(&bad).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    /// Wider rows than [`random_artifact`] so the per-row panel metadata
    /// (scale/norm/err) cannot mask the quantized size win. Shared with
    /// the server tests.
    pub(crate) fn quantizable_artifact(seed: u64) -> Artifact {
        let mut rng = Xorshift::new(seed);
        let dims = [16usize, 16];
        let mk = |rng: &mut Xorshift, rows: usize| -> Vec<Mat> {
            dims.iter()
                .map(|&d| {
                    Mat::new(rows, d, (0..rows * d).map(|_| rng.f64_signed()).collect()).unwrap()
                })
                .collect()
        };
        let source = mk(&mut rng, 40);
        let target = mk(&mut rng, 48);
        Artifact::new(vec![0.4, 0.6], source, target, false).unwrap()
    }

    #[test]
    fn quantized_sidecar_roundtrips_as_version_4() {
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let a = quantizable_artifact(40).with_quant(mode, true).unwrap();
            assert!(a.rows_normalized, "with_quant must normalize rows");
            let q = a.quant.as_ref().unwrap();
            assert!(!q.primary);
            assert_eq!(q.mode, mode);
            assert_eq!(q.source.len(), a.source_nodes());
            assert_eq!(q.target.len(), a.target_nodes());
            let bytes = a.to_bytes();
            assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 4);
            let flags = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
            assert_eq!(
                flags & FLAG_QUANT_PRIMARY,
                0,
                "sidecar must not set primary"
            );
            let back = Artifact::from_bytes(&bytes).unwrap();
            assert_eq!(back, a, "sidecar v4 must round trip bit-for-bit");
            // Old readers reject v4 files with the "newer" message.
            for ceiling in [1, 2, 3] {
                let err = Artifact::from_bytes_with_max_version(&bytes, ceiling).unwrap_err();
                assert!(err.to_string().contains("newer"), "{err}");
            }
        }
    }

    #[test]
    fn quant_primary_shrinks_and_reconstructs() {
        let plain = quantizable_artifact(41);
        let plain_bytes = plain.to_bytes();
        let primary = plain.clone().with_quant(QuantMode::Int8, false).unwrap();
        let q = primary.quant.as_ref().unwrap();
        assert!(q.primary);
        let bytes = primary.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 4);
        let flags = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        assert_ne!(flags & FLAG_QUANT_PRIMARY, 0);
        // Canonical values are the dequantized values, so the f64 rows are
        // reconstructible bit-for-bit from the panels alone.
        let back = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(back, primary);
        for (ma, mb) in primary.target.iter().zip(&back.target) {
            assert_eq!(ma.to_le_bytes(), mb.to_le_bytes());
        }
        // The acceptance floor: int8-primary at least 3.5x smaller than the
        // f64-only artifact over the same rows.
        assert!(
            plain_bytes.len() * 10 >= bytes.len() * 35,
            "primary {} B not >=3.5x below plain {} B",
            bytes.len(),
            plain_bytes.len()
        );
        // f16 primary also round trips (2 bytes per component).
        let f16 = plain.clone().with_quant(QuantMode::F16, false).unwrap();
        let f16_bytes = f16.to_bytes();
        assert_eq!(Artifact::from_bytes(&f16_bytes).unwrap(), f16);
        assert!(f16_bytes.len() < plain_bytes.len());
    }

    #[test]
    fn quantize_normalizes_rows_drops_stale_index_and_rejects_shards() {
        let a = quantizable_artifact(42).with_index(vec![1, 2, 3]);
        // Normalization changes the rows, so the embedded index is stale
        // and must be dropped.
        let sidecar = a.clone().with_quant(QuantMode::Int8, true).unwrap();
        assert!(sidecar.rows_normalized);
        assert!(sidecar.index.is_none());
        // Re-attaching an index over the (now stable) rows keeps v4.
        let indexed = sidecar.with_index(vec![9, 9]);
        let back = Artifact::from_bytes(&indexed.to_bytes()).unwrap();
        assert_eq!(back.index.as_deref(), Some(&[9u8, 9][..]));
        assert_eq!(back, indexed);
        // Primary mode replaces the rows, so it drops the index too.
        let primary = a
            .clone()
            .with_quant(QuantMode::Int8, true)
            .unwrap()
            .with_index(vec![7])
            .with_quant(QuantMode::Int8, false)
            .unwrap();
        assert!(primary.index.is_none());
        // Shards must not be quantized independently.
        let shard = quantizable_artifact(43).split(2, None).unwrap()[0].clone();
        let err = shard.with_quant(QuantMode::Int8, true).unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
    }

    #[test]
    fn quant_checksums_bind_panels_to_the_f64_rows() {
        let mut a = quantizable_artifact(44)
            .with_quant(QuantMode::Int8, true)
            .unwrap();
        // Tamper with one f64 target value without re-quantizing: the
        // matrix block checksum is rewritten (self-consistent) but the
        // quant section's binding checksum must catch the divergence.
        let mut data: Vec<f64> = a.target[0].as_slice().to_vec();
        data[5] += 0.25;
        a.target[0] = Mat::new(a.target[0].rows(), a.target[0].cols(), data).unwrap();
        let err = Artifact::from_bytes(&a.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn every_corrupted_byte_in_v4_is_detected() {
        for keep_f64 in [true, false] {
            let bytes = quantizable_artifact(45)
                .with_quant(QuantMode::Int8, keep_f64)
                .unwrap()
                .to_bytes();
            for pos in (0..bytes.len()).step_by(89) {
                let mut bad = bytes.clone();
                bad[pos] ^= 0x20;
                assert!(
                    Artifact::from_bytes(&bad).is_err(),
                    "flip at byte {pos} (keep_f64 {keep_f64}) went undetected"
                );
            }
        }
    }

    #[test]
    fn split_and_assemble_carry_the_quant_section() {
        for keep_f64 in [true, false] {
            let parent = quantizable_artifact(46)
                .with_quant(QuantMode::Int8, keep_f64)
                .unwrap();
            let shards = parent.split(3, None).unwrap();
            for shard in &shards {
                let q = shard.quant.as_ref().unwrap();
                let m = shard.manifest.as_ref().unwrap();
                assert_eq!(q.target.len(), shard.target_nodes());
                assert_eq!(q.source.len(), parent.source_nodes());
                assert_eq!(q.primary, !keep_f64);
                // The shard's panel rows dequantize to exactly its rows.
                assert_eq!(q.target_checksum, shard.target_checksum());
                assert_eq!(m.parent_checksum, parent.target_checksum());
                // Shards serialize as v4 and round trip.
                let bytes = shard.to_bytes();
                assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 4);
                assert_eq!(&Artifact::from_bytes(&bytes).unwrap(), shard);
            }
            // Any order reassembles to the exact parent, quant included.
            let shuffled = vec![shards[1].clone(), shards[2].clone(), shards[0].clone()];
            let back = Artifact::assemble_shards(&shuffled).unwrap();
            assert_eq!(back, parent);
            // A shard stripped of its quant section breaks the set.
            let mut stripped = shards.clone();
            stripped[1].quant = None;
            let err = Artifact::assemble_shards(&stripped).unwrap_err();
            assert!(err.to_string().contains("quantization"), "{err}");
        }
    }

    #[test]
    fn manifest_validation_rejects_inconsistencies() {
        let a = random_artifact(33, false);
        let good = ShardManifest {
            shard_id: 0,
            num_shards: 1,
            start: 0,
            end: 9,
            parent_targets: 9,
            parent_checksum: a.target_checksum(),
            replicas: vec![],
        };
        assert!(a.clone().with_manifest(good.clone()).is_ok());
        for bad in [
            ShardManifest {
                shard_id: 1,
                ..good.clone()
            },
            ShardManifest {
                num_shards: 0,
                ..good.clone()
            },
            ShardManifest {
                end: 8,
                ..good.clone()
            },
            ShardManifest {
                start: 5,
                ..good.clone()
            },
            ShardManifest {
                parent_targets: 8,
                ..good.clone()
            },
        ] {
            assert!(a.clone().with_manifest(bad).is_err());
        }
    }
}
