//! Versioned binary artifact format for trained alignment state.
//!
//! A deployment trains GAlign once, exports the θ-weighted multi-order
//! embedding pair as one compact artifact, and serves top-k alignment
//! queries from it forever after. The JSON persistence in
//! `galign::persist` spends ~17 bytes per matrix entry (decimal text plus
//! punctuation); this format spends 8 (little-endian `f64`), cutting
//! artifacts roughly 8x and making loads a bounds-checked `memcpy` instead
//! of a float parse.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic            8 B   b"GALNART1"
//! format version   4 B   u32, 1 or 2
//! flags            4 B   u32, bit 0 = rows already L2-normalized
//! layer count      4 B   u32, layers per side (k+1, incl. attribute layer)
//! reserved         4 B   u32, zero
//! theta section    8·L B f64 layer weights, then 8 B FNV-1a of the bytes
//! source blocks    L ×  [rows u64, cols u64, rows·cols f64, FNV-1a u64]
//! target blocks    L ×  [rows u64, cols u64, rows·cols f64, FNV-1a u64]
//! index section    v2 only: [len u64, len bytes, FNV-1a u64]
//! file checksum    8 B   FNV-1a of every preceding byte
//! ```
//!
//! Version 2 appends an optional serialized ANN index (an opaque
//! `galign-index` blob — structure only, the vectors live in the target
//! blocks above) so `serve` can start in ANN mode without rebuilding the
//! graph. Writers emit version 1 bytes whenever no index is embedded, so
//! index-less artifacts remain readable by version-1 readers; version-1
//! readers reject version-2 artifacts with a clear "newer than this build"
//! error rather than silently dropping the index.
//!
//! Loads validate magic, version (future versions are rejected, never
//! silently reinterpreted), shape consistency between the two sides, every
//! section checksum and the whole-file checksum, so a truncated or
//! bit-flipped artifact fails loudly instead of serving garbage scores.

use std::io;
use std::path::Path;

/// File magic: "GALN ARTifact" plus a format generation digit.
pub const MAGIC: [u8; 8] = *b"GALNART1";

/// Current on-disk format version. Readers reject anything newer. Writers
/// emit version 1 when no ANN index is embedded (see [`Artifact::index`]),
/// version 2 otherwise.
pub const FORMAT_VERSION: u32 = 2;

/// Flag bit: matrix rows are already L2-normalized (cosine-ready).
pub const FLAG_ROWS_NORMALIZED: u32 = 1;

/// FNV-1a 64-bit hash — the format's checksum primitive (fast, std-only,
/// good avalanche for corruption detection; not cryptographic).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A row-major `f64` matrix — the artifact's own minimal matrix type, so
/// the serving crate stays free of the training stack's dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Wraps a row-major buffer.
    ///
    /// # Errors
    /// When `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> io::Result<Self> {
        if data.len()
            != rows
                .checked_mul(cols)
                .ok_or_else(|| invalid("matrix shape overflows"))?
        {
            return Err(invalid(format!(
                "buffer of length {} cannot back a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Mat { rows, cols, data })
    }

    /// Decodes a matrix from little-endian `f64` bytes (the wire encoding
    /// of one artifact block, and of `galign-matrix`'s `Dense` bytes
    /// round-trip).
    ///
    /// # Errors
    /// When the byte length does not equal `rows * cols * 8`.
    pub fn from_le_bytes(rows: usize, cols: usize, bytes: &[u8]) -> io::Result<Self> {
        let want = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| invalid("matrix shape overflows"))?;
        if bytes.len() != want {
            return Err(invalid(format!(
                "{} bytes cannot back a {rows}x{cols} f64 matrix (want {want})",
                bytes.len()
            )));
        }
        let data = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Ok(Mat { rows, cols, data })
    }

    /// Encodes the matrix as little-endian `f64` bytes.
    #[must_use]
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 8);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// When `i >= rows`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The full row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning its row-major buffer (used to hand
    /// the data to `galign-matrix`'s `Dense` without a copy).
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Divides every row by its L2 norm (zero rows are left untouched).
    pub fn normalize_rows(&mut self) {
        for i in 0..self.rows {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in row {
                    *v /= norm;
                }
            }
        }
    }
}

/// A trained alignment artifact: θ layer weights plus the multi-order
/// embedding layers of both networks.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Layer-importance weights θ⁽⁰⁾..θ⁽ᵏ⁾ (the serving default).
    pub theta: Vec<f64>,
    /// Source-network embedding, one matrix per layer.
    pub source: Vec<Mat>,
    /// Target-network embedding, one matrix per layer.
    pub target: Vec<Mat>,
    /// Whether rows were L2-normalized before export (if not, the query
    /// index normalizes at load time).
    pub rows_normalized: bool,
    /// Optional serialized ANN index (an opaque `galign-index` blob built
    /// over the concatenated target layers). `Some` forces format
    /// version 2 on write; `None` keeps version 1 for old readers.
    pub index: Option<Vec<u8>>,
}

impl Artifact {
    /// Builds and shape-validates an artifact.
    ///
    /// # Errors
    /// When the two sides disagree on layer count or per-layer embedding
    /// dimension, a side's layers disagree on node count, θ length does
    /// not match the layer count, or there are no layers at all.
    pub fn new(
        theta: Vec<f64>,
        source: Vec<Mat>,
        target: Vec<Mat>,
        rows_normalized: bool,
    ) -> io::Result<Self> {
        if theta.is_empty() {
            return Err(invalid("artifact needs at least one layer"));
        }
        if source.len() != theta.len() || target.len() != theta.len() {
            return Err(invalid(format!(
                "theta has {} weights but source/target have {}/{} layers",
                theta.len(),
                source.len(),
                target.len()
            )));
        }
        for side in [&source, &target] {
            if side.iter().any(|m| m.rows() != side[0].rows()) {
                return Err(invalid("layers of one side disagree on node count"));
            }
        }
        for (l, (s, t)) in source.iter().zip(&target).enumerate() {
            if s.cols() != t.cols() {
                return Err(invalid(format!(
                    "layer {l}: source dim {} != target dim {}",
                    s.cols(),
                    t.cols()
                )));
            }
        }
        Ok(Artifact {
            theta,
            source,
            target,
            rows_normalized,
            index: None,
        })
    }

    /// Returns the artifact with `index` embedded (written as format
    /// version 2; see [`Artifact::index`]).
    #[must_use]
    pub fn with_index(mut self, index: Vec<u8>) -> Self {
        self.index = Some(index);
        self
    }

    /// Number of embedding layers per side (k+1).
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.theta.len()
    }

    /// Source-network node count.
    #[must_use]
    pub fn source_nodes(&self) -> usize {
        self.source[0].rows()
    }

    /// Target-network node count.
    #[must_use]
    pub fn target_nodes(&self) -> usize {
        self.target[0].rows()
    }

    /// Serializes to the binary format described in the module docs:
    /// version 1 bytes when no index is embedded (so old readers keep
    /// working), version 2 otherwise.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let version: u32 = if self.index.is_some() { 2 } else { 1 };
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        let flags = if self.rows_normalized {
            FLAG_ROWS_NORMALIZED
        } else {
            0
        };
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&(self.theta.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        let theta_start = out.len();
        for t in &self.theta {
            out.extend_from_slice(&t.to_le_bytes());
        }
        let theta_sum = fnv1a(&out[theta_start..]);
        out.extend_from_slice(&theta_sum.to_le_bytes());
        for m in self.source.iter().chain(&self.target) {
            out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
            out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
            let data = m.to_le_bytes();
            out.extend_from_slice(&data);
            out.extend_from_slice(&fnv1a(&data).to_le_bytes());
        }
        if let Some(index) = &self.index {
            out.extend_from_slice(&(index.len() as u64).to_le_bytes());
            out.extend_from_slice(index);
            out.extend_from_slice(&fnv1a(index).to_le_bytes());
        }
        let file_sum = fnv1a(&out);
        out.extend_from_slice(&file_sum.to_le_bytes());
        out
    }

    /// Parses and fully validates an artifact from bytes.
    ///
    /// # Errors
    /// Bad magic, a format version newer than [`FORMAT_VERSION`],
    /// truncation, trailing bytes, checksum mismatches (per section and
    /// whole-file), or shape inconsistencies.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        Artifact::from_bytes_with_max_version(bytes, FORMAT_VERSION)
    }

    /// [`Artifact::from_bytes`] with an explicit version ceiling — lets
    /// tests exercise how an old (version-1-only) reader reacts to a
    /// version-2 artifact without keeping an old binary around.
    ///
    /// # Errors
    /// Same as [`Artifact::from_bytes`], plus rejection of versions above
    /// `max_version`.
    pub fn from_bytes_with_max_version(bytes: &[u8], max_version: u32) -> io::Result<Self> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(invalid("not a galign artifact (bad magic)"));
        }
        let version = r.u32()?;
        if version > max_version {
            return Err(invalid(format!(
                "artifact format version {version} is newer than this build \
                 supports ({max_version}); upgrade galign-serve"
            )));
        }
        if version == 0 {
            return Err(invalid("artifact format version 0 does not exist"));
        }
        let flags = r.u32()?;
        let layers = r.u32()? as usize;
        let _reserved = r.u32()?;
        if layers == 0 {
            return Err(invalid("artifact declares zero layers"));
        }
        let theta_start = r.pos;
        let mut theta = Vec::with_capacity(layers);
        for _ in 0..layers {
            theta.push(r.f64()?);
        }
        let theta_sum = fnv1a(&bytes[theta_start..r.pos]);
        if r.u64()? != theta_sum {
            return Err(invalid(
                "theta section checksum mismatch (corrupt artifact)",
            ));
        }
        let mut sides = Vec::with_capacity(2 * layers);
        for i in 0..2 * layers {
            let rows = usize::try_from(r.u64()?).map_err(|_| invalid("rows overflow"))?;
            let cols = usize::try_from(r.u64()?).map_err(|_| invalid("cols overflow"))?;
            let nbytes = rows
                .checked_mul(cols)
                .and_then(|n| n.checked_mul(8))
                .ok_or_else(|| invalid("matrix shape overflows"))?;
            let data = r.take(nbytes)?;
            let sum = fnv1a(data);
            let mat = Mat::from_le_bytes(rows, cols, data)?;
            if r.u64()? != sum {
                return Err(invalid(format!(
                    "matrix block {i} checksum mismatch (corrupt artifact)"
                )));
            }
            sides.push(mat);
        }
        let index = if version >= 2 {
            let len = usize::try_from(r.u64()?).map_err(|_| invalid("index length overflow"))?;
            let data = r.take(len)?.to_vec();
            if r.u64()? != fnv1a(&data) {
                return Err(invalid(
                    "index section checksum mismatch (corrupt artifact)",
                ));
            }
            Some(data)
        } else {
            None
        };
        let file_sum = fnv1a(&bytes[..r.pos]);
        if r.u64()? != file_sum {
            return Err(invalid("file checksum mismatch (corrupt artifact)"));
        }
        if r.pos != bytes.len() {
            return Err(invalid(format!(
                "{} trailing bytes after artifact",
                bytes.len() - r.pos
            )));
        }
        let target = sides.split_off(layers);
        let mut artifact = Artifact::new(theta, sides, target, flags & FLAG_ROWS_NORMALIZED != 0)?;
        artifact.index = index;
        Ok(artifact)
    }

    /// Writes the artifact to `path` atomically (tmp file → flush →
    /// `sync_all` → rename), keeping any previous artifact generation as
    /// `<name>.prev` for [`Artifact::read_with_fallback`].
    ///
    /// # Errors
    /// IO failures; on error the previous contents of `path` survive.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        galign_telemetry::fsio::atomic_write_keep_prev(path, &self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates an artifact from `path`.
    ///
    /// # Errors
    /// IO failures plus everything [`Artifact::from_bytes`] rejects.
    pub fn read(path: &Path) -> io::Result<Self> {
        Artifact::from_bytes(&std::fs::read(path)?)
    }

    /// Reads an artifact, recovering from corruption: a file that fails
    /// validation is quarantined as `<name>.corrupt` and the previous
    /// generation (`<name>.prev`, kept by [`Artifact::write`]) is loaded
    /// instead. The boolean reports whether the fallback was taken.
    ///
    /// # Errors
    /// OS-level IO failures, or `InvalidData` when both the current and
    /// previous generations are unreadable (the error message carries both
    /// failure reasons).
    pub fn read_with_fallback(path: &Path) -> io::Result<(Self, bool)> {
        let primary = match Artifact::read(path) {
            Ok(a) => return Ok((a, false)),
            Err(e) => e,
        };
        let missing = primary.kind() == io::ErrorKind::NotFound;
        if !missing && primary.kind() != io::ErrorKind::InvalidData {
            return Err(primary);
        }
        let prev = galign_telemetry::fsio::prev_path(path);
        if missing {
            // Only a half-finished update (crash between the keep-prev
            // rename and the final rename) leaves a .prev behind; a
            // genuinely absent artifact stays a NotFound error.
            if !prev.exists() {
                return Err(primary);
            }
        } else {
            galign_telemetry::fsio::quarantine(path)?;
        }
        match Artifact::read(&prev) {
            Ok(a) => {
                galign_telemetry::counter_add("artifact.recovered_from_prev", 1);
                galign_telemetry::info!(
                    "artifact",
                    "{} was {}; serving previous generation {}",
                    path.display(),
                    if missing { "missing" } else { "corrupt" },
                    prev.display()
                );
                Ok((a, true))
            }
            Err(fallback) => Err(invalid(format!(
                "artifact {} unreadable ({primary}); previous \
                 generation {}: {fallback}",
                path.display(),
                prev.display()
            ))),
        }
    }
}

/// Bounds-checked byte cursor over the artifact buffer.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| invalid("artifact truncated"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Xorshift;

    fn random_artifact(seed: u64, normalized: bool) -> Artifact {
        let mut rng = Xorshift::new(seed);
        let dims = [4usize, 3, 5];
        let mk = |rng: &mut Xorshift, rows: usize| -> Vec<Mat> {
            dims.iter()
                .map(|&d| {
                    Mat::new(rows, d, (0..rows * d).map(|_| rng.f64_signed()).collect()).unwrap()
                })
                .collect()
        };
        let source = mk(&mut rng, 7);
        let target = mk(&mut rng, 9);
        Artifact::new(vec![0.2, 0.3, 0.5], source, target, normalized).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        for normalized in [false, true] {
            let a = random_artifact(1, normalized);
            let b = Artifact::from_bytes(&a.to_bytes()).unwrap();
            assert_eq!(a, b, "decoded artifact must equal the original bit-for-bit");
            // PartialEq on f64 is bitwise here only when no NaNs are
            // involved; double-check the raw buffers too.
            for (ma, mb) in a.source.iter().zip(&b.source) {
                assert_eq!(ma.to_le_bytes(), mb.to_le_bytes());
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("galign-serve-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.galn");
        let a = random_artifact(2, true);
        a.write(&path).unwrap();
        let b = Artifact::read(&path).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_artifact_falls_back_to_previous_generation() {
        let dir = std::env::temp_dir().join("galign-serve-artifact-fallback");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.galn");
        let v1 = random_artifact(10, false);
        let v2 = random_artifact(11, true);
        v1.write(&path).unwrap();
        v2.write(&path).unwrap();
        // Simulate a torn write of the current generation.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 16]).unwrap();

        let (loaded, fell_back) = Artifact::read_with_fallback(&path).unwrap();
        assert!(fell_back);
        assert_eq!(loaded, v1);
        // The corrupt store is never left readable as valid.
        assert!(!path.exists());
        assert!(galign_telemetry::fsio::corrupt_path(&path).exists());
    }

    #[test]
    fn fallback_without_previous_generation_reports_both_failures() {
        let dir = std::env::temp_dir().join("galign-serve-artifact-orphan");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("orphan.galn");
        std::fs::write(&path, b"not an artifact").unwrap();
        let err = Artifact::read_with_fallback(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("previous generation"), "{err}");
        assert!(!path.exists(), "corrupt file must be quarantined");
    }

    #[test]
    fn fallback_passes_through_healthy_artifacts() {
        let dir = std::env::temp_dir().join("galign-serve-artifact-healthy");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.galn");
        let a = random_artifact(12, true);
        a.write(&path).unwrap();
        let (loaded, fell_back) = Artifact::read_with_fallback(&path).unwrap();
        assert!(!fell_back);
        assert_eq!(loaded, a);
    }

    #[test]
    fn missing_current_with_prev_recovers_the_crash_window() {
        // Crash between the keep-prev rename and the final rename leaves
        // nothing at `path` and the old generation at `.prev`.
        let dir = std::env::temp_dir().join("galign-serve-artifact-window");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window.galn");
        let v1 = random_artifact(9, false);
        v1.write(&path).unwrap();
        random_artifact(10, true).write(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        let (loaded, fell_back) = Artifact::read_with_fallback(&path).unwrap();
        assert!(fell_back);
        assert_eq!(loaded, v1);
        // A genuinely absent artifact (no .prev either) stays NotFound.
        let gone = dir.join("never-written.galn");
        let err = Artifact::read_with_fallback(&gone).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn binary_is_much_smaller_than_json_equivalent() {
        let a = random_artifact(3, false);
        let binary = a.to_bytes().len();
        // The JSON persistence writes every f64 in decimal (17 significant
        // digits for round-tripping) plus struct punctuation.
        let json_estimate: usize = a
            .source
            .iter()
            .chain(&a.target)
            .map(|m| m.as_slice().len() * 20)
            .sum();
        assert!(
            binary * 2 < json_estimate,
            "binary {binary} B should be far below the ~{json_estimate} B JSON costs"
        );
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let bytes = random_artifact(4, false).to_bytes();
        // Flipping any single byte must fail validation somewhere: magic,
        // version, shape, section checksum or file checksum. Sample a
        // spread of positions (every 97th byte) to keep the test fast.
        for pos in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                Artifact::from_bytes(&bad).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_rejected() {
        let bytes = random_artifact(5, false).to_bytes();
        assert!(Artifact::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(Artifact::from_bytes(&bytes[..10]).is_err());
        assert!(Artifact::from_bytes(&[]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        let err = Artifact::from_bytes(&long).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn future_version_rejected_with_clear_error() {
        let mut bytes = random_artifact(6, false).to_bytes();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let err = Artifact::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn index_less_artifacts_stay_version_1() {
        let bytes = random_artifact(20, false).to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        // And are still readable by a version-1-only reader.
        assert!(Artifact::from_bytes_with_max_version(&bytes, 1).is_ok());
    }

    #[test]
    fn embedded_index_roundtrips_as_version_2() {
        let blob = vec![7u8, 0, 42, 255, 1, 2, 3];
        let a = random_artifact(21, true).with_index(blob.clone());
        let bytes = a.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 2);
        let b = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(b.index.as_deref(), Some(blob.as_slice()));
        assert_eq!(a, b);
    }

    #[test]
    fn old_reader_rejects_indexed_artifact_gracefully() {
        // A version-1-only build must refuse a version-2 artifact with the
        // "newer than this build" message, never misparse it.
        let bytes = random_artifact(22, false)
            .with_index(vec![1, 2, 3])
            .to_bytes();
        let err = Artifact::from_bytes_with_max_version(&bytes, 1).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn corrupt_index_section_is_detected() {
        let a = random_artifact(23, false).with_index(vec![9; 64]);
        let bytes = a.to_bytes();
        // Corrupt a byte inside the index payload (located just before the
        // trailing index checksum + file checksum).
        let mut bad = bytes.clone();
        let pos = bytes.len() - 8 - 8 - 32;
        bad[pos] ^= 0x01;
        assert!(Artifact::from_bytes(&bad).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = random_artifact(7, false).to_bytes();
        bytes[0] = b'X';
        let err = Artifact::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn shape_validation() {
        let m = |r, c| Mat::new(r, c, vec![0.0; r * c]).unwrap();
        // θ length mismatch.
        assert!(Artifact::new(vec![1.0], vec![m(2, 2); 2], vec![m(2, 2); 2], false).is_err());
        // Source/target dim mismatch at one layer.
        assert!(Artifact::new(
            vec![0.5, 0.5],
            vec![m(2, 2), m(2, 3)],
            vec![m(4, 2), m(4, 4)],
            false
        )
        .is_err());
        // One side's layers disagree on node count.
        assert!(Artifact::new(
            vec![0.5, 0.5],
            vec![m(2, 2), m(3, 3)],
            vec![m(4, 2), m(4, 3)],
            false
        )
        .is_err());
        // Empty.
        assert!(Artifact::new(vec![], vec![], vec![], false).is_err());
    }

    #[test]
    fn mat_byte_helpers() {
        let m = Mat::new(2, 3, vec![1.0, -2.5, 3.0, 0.0, f64::MIN_POSITIVE, 1e300]).unwrap();
        let bytes = m.to_le_bytes();
        assert_eq!(bytes.len(), 48);
        let back = Mat::from_le_bytes(2, 3, &bytes).unwrap();
        assert_eq!(m, back);
        assert!(Mat::from_le_bytes(2, 3, &bytes[..40]).is_err());
        assert!(Mat::new(2, 3, vec![0.0; 5]).is_err());
        assert_eq!(m.row(1), &[0.0, f64::MIN_POSITIVE, 1e300]);
    }

    #[test]
    fn normalize_rows_handles_zero_rows() {
        let mut m = Mat::new(2, 2, vec![3.0, 4.0, 0.0, 0.0]).unwrap();
        m.normalize_rows();
        assert!((m.row(0)[0] - 0.6).abs() < 1e-12);
        assert!((m.row(0)[1] - 0.8).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Reference values of FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
